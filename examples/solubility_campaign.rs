//! A hand-driven solubility experiment through the tracing middlebox,
//! ending with both RATracer sinks: CSV export and the embedded
//! document store.
//!
//! This is the §III workflow in miniature: the "lab computer" issues
//! high-level commands; every access is intercepted, relayed in
//! REMOTE mode (except the Quantos, which runs in DIRECT mode while
//! "IT sorts out its cabling" — the hybrid configuration the paper
//! describes), and logged with timestamps, arguments, return values,
//! and response times.
//!
//! ```sh
//! cargo run --example solubility_campaign
//! ```

use std::sync::Arc;

use rad::prelude::*;
use rad_middlebox::Tracer;

fn main() -> Result<(), RadError> {
    // A middlebox with a hybrid mode configuration and a document-store
    // mirror, exactly like Fig. 3's MongoDB sink.
    let store = Arc::new(DocumentStore::new());
    let modes = ModeConfig::all(TraceMode::Remote).with(DeviceKind::Quantos, TraceMode::Direct);
    let middlebox = Middlebox::new(99)
        .with_modes(modes)
        .with_tracer(Tracer::new().with_mirror(Arc::clone(&store)));
    let mut session = rad_workloads::Session::with_middlebox(middlebox, 99);

    // Run one labelled P1 screen and one labelled P3 screen.
    session.begin_run(
        RunId(0),
        ProcedureKind::AutomatedSolubilityN9,
        Label::Benign,
    );
    let end = rad_workloads::procedures::p1_automated_solubility(
        &mut session,
        rad_workloads::P1Variant::Normal,
        "NABH4",
    )?;
    session.end_run();
    println!("P1 run finished: {end:?}");

    session.middlebox_mut().rig_mut().reset();
    session.begin_run(RunId(1), ProcedureKind::CrystalSolubility, Label::Benign);
    let end = rad_workloads::procedures::p3_crystal_solubility(
        &mut session,
        rad_workloads::P3Variant::Normal,
    )?;
    session.end_run();
    println!("P3 run finished: {end:?}");

    let (dataset, _power) = session.finish();

    // Dataset anatomy.
    println!("\ncaptured {} trace objects:", dataset.len());
    for (device, count) in dataset.device_histogram() {
        println!("  {device:<8} {count}");
    }
    let exceptions = dataset
        .traces()
        .iter()
        .filter(|t| t.exception().is_some())
        .count();
    println!("  exceptions logged: {exceptions}");

    // Sink 1: the CSV export (the first lines of it).
    let csv = dataset.to_csv();
    println!("\nCSV export ({} bytes); first three rows:", csv.len());
    for line in csv.lines().take(4) {
        println!("  {line}");
    }
    let parsed = rad_store::csv::traces_from_csv(&csv)?;
    assert_eq!(parsed.len(), dataset.len(), "the export round-trips");

    // Sink 2: the document store, queried like the paper's MongoDB.
    println!("\ndocument store: {} documents", store.len());
    let slow = store.count(
        "traces",
        &Filter::eq("device", serde_json::json!("C9"))
            .and(Filter::gte("response_time_us", 8_000.0)),
    );
    println!("C9 commands slower than 8 ms: {slow}");
    Ok(())
}
