//! A live IDS on the middlebox: train on benign history, then watch a
//! command stream in real time and raise an alarm mid-attack.
//!
//! The scenario is the paper's motivating threat: the lab computer is
//! compromised and starts driving the N9 outside its normal grammar
//! (probing moves toward the Quantos with the door open). The
//! streaming perplexity scorer flags the deviation while the attack
//! is still in progress — before the trace ends — which is the
//! real-time capability §V-B argues for.
//!
//! ```sh
//! cargo run --example ids_live_detection
//! ```

use rad::prelude::*;

fn main() -> Result<(), RadError> {
    // 1. Train on benign history: the supervised runs minus anomalies.
    //    The campaign seed and detector order come from the committed
    //    scenario document — the same file `rad run
    //    examples/scenarios/detect_stream.json` executes headless.
    let text = std::fs::read_to_string("examples/scenarios/detect_stream.json")
        .expect("run from the repo root: examples/scenarios/detect_stream.json");
    let spec = ScenarioSpec::from_json_str(&text)?;
    let order = spec
        .detect
        .as_ref()
        .expect("scenario has a detect stack")
        .perplexity
        .order;
    println!(
        "scenario {}: seed {}, order-{order} detector",
        spec.name, spec.seed
    );
    let campaign = CampaignBuilder::from_spec(spec.to_campaign_spec()).build();
    let sequences = campaign.command().supervised_sequences();
    let benign: Vec<Vec<CommandType>> = sequences
        .iter()
        .filter(|(meta, _)| !meta.label().is_anomalous())
        .map(|(_, seq)| seq.clone())
        .collect();
    println!("training on {} benign runs", benign.len());
    let (train, calibrate) = benign.split_at(benign.len() - 6);
    let detector = PerplexityDetector::new(order).fit(train, calibrate)?;
    println!("alarm threshold: perplexity > {:.2}", detector.threshold());

    // 2. Replay a benign joystick session through the stream scorer:
    //    no alarm.
    let mut session = rad_workloads::Session::new(500);
    rad_workloads::procedures::joystick_session(&mut session, 10)?;
    let (benign_ds, _) = session.finish();
    let mut stream = detector.stream(12);
    let mut alarms = 0;
    for trace in benign_ds.traces() {
        stream.push(trace.command_type());
        if stream.is_alarming() {
            alarms += 1;
        }
    }
    println!(
        "benign replay: {alarms} alarming windows out of {}",
        benign_ds.len()
    );

    // 3. The attack: a compromised script interleaves door toggles,
    //    dosing-pin fiddling, and arm probes — commands that are all
    //    individually legal but in an order no benign procedure
    //    produces.
    let attack: Vec<CommandType> = vec![
        CommandType::InitC9,
        CommandType::Home,
        CommandType::Mvng,
        CommandType::InitQuantos,
        CommandType::FrontDoorPosition,
        CommandType::Arm,
        CommandType::FrontDoorPosition,
        CommandType::UnlockDosingPin,
        CommandType::Arm,
        CommandType::FrontDoorPosition,
        CommandType::UnlockDosingPin,
        CommandType::StartDosing,
        CommandType::Arm,
        CommandType::Arm,
        CommandType::FrontDoorPosition,
    ];
    let mut stream = detector.stream(12);
    let mut first_alarm = None;
    for (i, ct) in attack.iter().enumerate() {
        if let Some(ppl) = stream.push(*ct) {
            let mark = if stream.is_alarming() {
                " <-- ALARM"
            } else {
                ""
            };
            println!(
                "  step {i:>2} {:<24} windowed perplexity {ppl:>10.2}{mark}",
                ct.mnemonic()
            );
            if stream.is_alarming() && first_alarm.is_none() {
                first_alarm = Some(i);
            }
        }
    }
    let caught_at = first_alarm.expect("the attack must trip the detector");
    println!(
        "\nattack flagged at command {caught_at} of {} — mid-stream, not post-hoc",
        attack.len()
    );
    Ok(())
}
