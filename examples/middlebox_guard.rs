//! The middlebox as the last level of defense (§I): a guard policy
//! that would have prevented the crashes RAD recorded, demonstrated by
//! replaying the run-17 crash geometry with and without the guard.
//!
//! ```sh
//! cargo run --example middlebox_guard
//! ```

use rad::prelude::*;
use rad_middlebox::{GuardPolicy, GuardedMiddlebox};

fn stage_run_17(issue: &mut dyn FnMut(Command) -> Result<(), RadError>) -> Result<(), RadError> {
    issue(Command::nullary(CommandType::InitUr3Arm))?;
    issue(Command::nullary(CommandType::InitQuantos))?;
    // The UR3e parks at the Quantos hand-off point...
    issue(Command::new(
        CommandType::MoveToLocation,
        vec![Value::Location {
            x: 750.0,
            y: 230.0,
            z: 150.0,
        }],
    ))?;
    // ...and the workflow opens the front door into it.
    issue(Command::new(
        CommandType::FrontDoorPosition,
        vec![Value::Str("open".into())],
    ))?;
    Ok(())
}

fn main() {
    // Without the guard: the door motor stalls against the arm — the
    // crash that made run 17 anomalous.
    let mut bare = Middlebox::new(17);
    let mut issue = |c: Command| bare.issue(&c).map(|_| ());
    let crash = stage_run_17(&mut issue).expect_err("the unguarded replay crashes");
    println!("without guard: {crash}");
    assert!(crash.to_string().contains("collision"));

    // With the recommended policy: the door command is rejected before
    // it reaches the Quantos; the arm is untouched and an alert fires.
    let mut guarded = GuardedMiddlebox::new(Middlebox::new(17), GuardPolicy::recommended());
    let mut issue = |c: Command| guarded.issue(&c).map(|_| ());
    let rejection = stage_run_17(&mut issue).expect_err("the guard rejects the door command");
    println!("with guard:    {rejection}");
    assert!(rejection.to_string().contains("interlock"));
    assert!(
        !guarded.middlebox().rig().lab().quantos_door_open,
        "door never moved"
    );

    println!("\nalerts raised:");
    for alert in guarded.alerts() {
        println!("  [{}] {} -> {}", alert.at, alert.command, alert.violation);
    }

    // The rejected command is still in the trace — the guard is an IDS
    // with prevention, not a silent firewall.
    let dataset = guarded.into_dataset();
    let rejected = dataset
        .traces()
        .iter()
        .filter(|t| t.exception().is_some_and(|e| e.contains("guard rejected")))
        .count();
    println!("\n{rejected} rejected command(s) recorded in the trace for later analysis");
}
