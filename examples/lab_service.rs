//! The lab as a service (DESIGN.md §13): host a multi-tenant
//! middlebox over a real TCP socket, drive a seeded campaign against
//! it, kill the link mid-run, and resume with zero lost and zero
//! invented work — all in one process.
//!
//! ```sh
//! cargo run --example lab_service
//! ```

use std::sync::Arc;
use std::time::Duration;

use rad::prelude::*;
use rad_middlebox::Lane;

fn main() -> Result<(), RadError> {
    // A lab service on an ephemeral TCP port: two tenants max, each
    // with its own seeded rig and (here, in-memory) sink stack.
    let service = LabService::new(ServerConfig {
        max_sessions: 2,
        seed: 42,
        ..ServerConfig::default()
    });
    let handle = service.serve_tcp("127.0.0.1:0")?;
    let addr = handle.local_addr().expect("tcp listener has an address");
    println!("lab service on {addr}");

    // A 30-command slice of the seed-42 supervised campaign, replayed
    // remotely with jittered retries.
    let script = CampaignScript::supervised(42).truncated(30);
    let total = script.command_count() as u64;
    let policy = RetryPolicy {
        attempt_timeout: Duration::from_secs(5),
        deadline: Duration::from_secs(20),
        ..RetryPolicy::default()
    }
    .with_jitter(42, 500);
    let campaign = RemoteCampaign::new(script, "alice").with_policy(policy);

    // First leg: the client's link dies after a handful of frames —
    // a laptop yanked off the lab network mid-campaign.
    let dying_link = Faulty::new(
        SocketTransport::connect_tcp(&addr.to_string())?,
        Arc::new(FaultPlan::new(1, FaultProfile::disconnect_after(6))),
        Lane::Request,
        FaultStats::new(),
    );
    let first = campaign.drive(dying_link)?;
    println!(
        "first leg: {} of {total} commands, then: {}",
        first.executed,
        first.error.as_ref().expect("the link death surfaces typed"),
    );

    // Second leg: reconnect and resume. The server's Welcome carries
    // the tenant's executed-issue cursor, so the replay skips exactly
    // the prefix that already ran (retrying while the dead session's
    // socket is still being torn down server-side).
    let resumed = loop {
        match campaign.resume_from(SocketTransport::connect_tcp(&addr.to_string())?) {
            Ok(report) => break report,
            Err(RadError::Overloaded(_)) => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => return Err(e),
        }
    };
    println!(
        "resume leg: skipped {}, executed {}, complete: {}",
        resumed.resumed_at, resumed.executed, resumed.completed,
    );
    assert_eq!(resumed.resumed_at + resumed.executed, total);

    // Graceful drain: stop accepting, flush every tenant, account.
    let report = handle.drain()?;
    for tenant in &report.tenants {
        println!(
            "tenant {}: issues={} rows_flushed={} gaps={} peak_queued_rows={}",
            tenant.tenant,
            tenant.issues,
            tenant.rows_flushed,
            tenant.gaps_flushed,
            tenant.peak_queued_rows,
        );
    }
    println!(
        "drained in {:.1} ms ({})",
        report.flush_time.as_secs_f64() * 1e3,
        report.stats,
    );
    Ok(())
}
