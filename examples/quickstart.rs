//! Quickstart: synthesize a RAD-shaped dataset and run the paper's
//! two headline analyses on it.
//!
//! The campaign comes from a committed scenario document — the same
//! file `rad run examples/scenarios/fault_drop.json` executes — so the
//! example and the CLI are pinned to identical data.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rad::prelude::*;

fn main() -> Result<(), RadError> {
    // 1. Synthesize the 25 supervised procedure runs of §IV (P4
    //    joystick runs first, then the P1/P2/P3 solubility screens,
    //    with the three narrated crashes planted at runs 16, 17, 22).
    //    The wiring — seed, scale, fault plan — lives in the scenario
    //    document, not in code.
    let text = std::fs::read_to_string("examples/scenarios/fault_drop.json")
        .expect("run from the repo root: examples/scenarios/fault_drop.json");
    let spec = ScenarioSpec::from_json_str(&text)?;
    println!("scenario {}: seed {}", spec.name, spec.seed);
    let campaign = CampaignBuilder::from_spec(spec.to_campaign_spec()).build();
    let dataset = campaign.command();
    println!(
        "synthesized {} trace objects across {} supervised runs",
        dataset.len(),
        dataset.supervised_runs().len()
    );

    // 2. RQ1 — fingerprint procedures with TF-IDF + cosine similarity.
    let sequences = dataset.supervised_sequences();
    let documents: Vec<Vec<CommandType>> = sequences.iter().map(|(_, s)| s.clone()).collect();
    let tfidf = TfIdf::fit(&documents)?;
    let matrix = tfidf.similarity_matrix();
    let same_type = matrix[13][14]; // two normal P1 runs
    let cross_type = matrix[13][0]; // a P1 run vs a joystick run
    println!("P1-vs-P1 similarity {same_type:.2}, P1-vs-P4 similarity {cross_type:.2}");

    // 3. RQ2 — perplexity anomaly detection under 5-fold CV.
    let labelled: Vec<(Vec<CommandType>, bool)> = sequences
        .iter()
        .map(|(meta, seq)| (seq.clone(), meta.label().is_anomalous()))
        .collect();
    let report = PerplexityDetector::new(3).evaluate(&labelled, 5, 0)?;
    println!(
        "trigram IDS: recall {:.0}%, accuracy {:.0}%, {} false positives",
        report.confusion.recall() * 100.0,
        report.confusion.accuracy() * 100.0,
        report.confusion.false_positives()
    );
    assert_eq!(
        report.confusion.recall(),
        1.0,
        "all three crashes are caught"
    );

    // 4. The power side channel (§VI): the same move at two payloads.
    let arm = Ur3e::new();
    let leg = TrajectorySegment::joint_move(Ur3e::named_pose(1), Ur3e::named_pose(2), 0.8);
    let light = arm.current_profile(std::slice::from_ref(&leg), 0.020, 1);
    let heavy = arm.current_profile(std::slice::from_ref(&leg), 1.000, 1);
    let light_mean = rad_power::signal::mean_abs(&light.joint_current(1));
    let heavy_mean = rad_power::signal::mean_abs(&heavy.joint_current(1));
    println!("mean |shoulder current|: 20 g -> {light_mean:.2} A, 1 kg -> {heavy_mean:.2} A");

    Ok(())
}
