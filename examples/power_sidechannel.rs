//! Inferring command parameters and physical context from the power
//! side channel alone (§VI / RQ3).
//!
//! Without touching the command stream, a power-based observer
//! (a) identifies which trajectory leg the arm executed, (b) estimates
//! the commanded velocity, and (c) estimates the carried payload —
//! the last of which no command-based IDS can see at all.
//!
//! ```sh
//! cargo run --example power_sidechannel
//! ```

use rad::prelude::*;
use rad_power::signal;

fn leg(i: usize, speed: f64) -> TrajectorySegment {
    TrajectorySegment::joint_move(Ur3e::named_pose(i), Ur3e::named_pose(i + 1), speed)
}

fn main() {
    let arm = Ur3e::new();

    // (a) Trajectory identification by nearest-neighbour shape match.
    println!("== trajectory identification ==");
    let references: Vec<Vec<f64>> = (0..5)
        .map(|i| {
            arm.current_profile(&[leg(i, 1.0)], 0.0, 10)
                .joint_current(1)
        })
        .collect();
    let mut correct = 0;
    for truth in 0..5 {
        let observed = arm.current_profile(&[leg(truth, 1.0)], 0.0, 999 + truth as u64);
        let series = observed.joint_current(1);
        let best = (0..5)
            .max_by(|a, b| {
                let ra = signal::shape_correlation(&series, &references[*a]).unwrap_or(-1.0);
                let rb = signal::shape_correlation(&series, &references[*b]).unwrap_or(-1.0);
                ra.partial_cmp(&rb).expect("correlations are finite")
            })
            .expect("five candidates");
        println!(
            "  executed L{truth}-L{} -> classified L{best}-L{}",
            truth + 1,
            best + 1
        );
        if best == truth {
            correct += 1;
        }
    }
    println!("  {correct}/5 legs identified from current alone");

    // (b) Velocity estimation from profile duration: the trajectory is
    // known (identified above), so inverting the trapezoidal timing
    // law T = v/a + d/v recovers the cruise velocity.
    println!("\n== velocity estimation ==");
    let distance = leg(0, 1.0).lead_distance();
    let accel = TrajectorySegment::DEFAULT_ACCELERATION;
    for commanded in [0.4, 0.8, 1.0] {
        let profile = arm.current_profile(&[leg(0, commanded)], 0.0, 30);
        // The profile includes both endpoint ticks; the move itself
        // spans len - 1 inter-tick intervals.
        let observed = (profile.len() - 1) as f64 * rad_power::TICK_SECONDS;
        // v^2 - a T v + a d = 0; the smaller root is the cruise speed.
        let discriminant = (accel * observed).powi(2) - 4.0 * accel * distance;
        let estimated = if discriminant >= 0.0 {
            (accel * observed - discriminant.sqrt()) / 2.0
        } else {
            // Triangular profile: the peak velocity bound.
            (accel * distance).sqrt()
        };
        println!(
            "  commanded {commanded:.2} rad/s -> estimated {estimated:.2} rad/s \
({:.0}% error)",
            ((estimated - commanded) / commanded * 100.0).abs()
        );
    }

    // (c) Payload estimation by interpolating mean shoulder current
    // between two calibration profiles (empty and 1 kg).
    println!("\n== payload estimation ==");
    let calibrate = |kg: f64| -> f64 {
        signal::mean_abs(&arm.current_profile(&[leg(1, 0.8)], kg, 40).joint_current(1))
    };
    let (i_empty, i_full) = (calibrate(0.0), calibrate(1.0));
    for truth_g in [20.0, 500.0, 1000.0] {
        let observed = signal::mean_abs(
            &arm.current_profile(&[leg(1, 0.8)], truth_g / 1000.0, 77)
                .joint_current(1),
        );
        let estimated_g = ((observed - i_empty) / (i_full - i_empty) * 1000.0).clamp(0.0, 2000.0);
        println!("  carried {truth_g:>6.0} g -> estimated {estimated_g:>6.0} g");
    }
    println!("\npayload never appears in any command argument: this channel is");
    println!("invisible to a command-based IDS (the paper's RQ3 argument).");
}
