//! RAD — a Rust reproduction of *Arming IDS Researchers with a Robotic
//! Arm Dataset* (DSN 2022).
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`core`] — shared vocabulary (devices, the 52-command
//!   grammar, trace objects, procedures, simulated time).
//! - [`devices`] — simulators for the five Hein Lab devices.
//! - [`middlebox`] — the RATracer reproduction: device
//!   virtualization, the RPC middlebox (DIRECT/REMOTE/CLOUD modes), the
//!   trace pipeline, and the 25 Hz power monitor.
//! - [`store`] — embedded document store, CSV codec, and the
//!   WAL-backed crash-safe persistence layer.
//! - [`power`] — UR3e dynamics and current-profile synthesis.
//! - [`workloads`] — procedures P1–P6, joystick driver,
//!   anomaly injection, and the three-month campaign synthesizer.
//! - [`analysis`] — n-grams, TF-IDF, perplexity language
//!   models, Jenks natural breaks, cross-validation, and metrics.
//!
//! # Quickstart
//!
//! ```
//! use rad::prelude::*;
//!
//! // Synthesize a miniature labeled dataset and fingerprint procedures.
//! let dataset = CampaignBuilder::new(7).supervised_only().build();
//! let runs = dataset.supervised_runs();
//! assert_eq!(runs.len(), 25);
//! ```

pub use rad_analysis as analysis;
pub use rad_core as core;
pub use rad_devices as devices;
pub use rad_middlebox as middlebox;
pub use rad_power as power;
pub use rad_store as store;
pub use rad_workloads as workloads;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use rad_analysis::{
        jenks_two_class, CommandLm, ConfusionMatrix, CrossValidation, HmmDetector, MinedSpec,
        NgramCounter, ParamTokenizer, PerplexityDetector, Smoothing, TfIdf,
    };
    pub use rad_core::{
        Chunked, Command, CommandCategory, CommandType, CountingSink, DeviceId, DeviceKind,
        Filtered, Label, ProcedureKind, RadError, RunId, RunMetadata, SimClock, SimDuration,
        SimInstant, SliceSource, Tee, TraceBatch, TraceGap, TraceId, TraceMode, TraceObject,
        TraceRow, TraceSink, TraceSinkExt, TraceSource, Value,
    };
    pub use rad_devices::{Device, LabRig};
    pub use rad_middlebox::rpc::{
        Duplex, FrameCodec, RetryPolicy, RpcClient, RpcServer, Transport,
    };
    pub use rad_middlebox::{
        CollectingSink, DrainReport, DurableSink, FaultPlan, FaultProfile, FaultStats, Faulty,
        FaultyDuplex, GuardPolicy, GuardedMiddlebox, LabService, LatencyModel, Middlebox,
        MirrorSink, ModeConfig, RpcCluster, ServerConfig, ServerHandle, ShardPlan, SocketTransport,
        TenantSinkStack, Tracer, WireCodecKind,
    };
    pub use rad_power::{
        CurrentProfile, Elbow, PowerBlock, PowerRow, PowerSample, PowerSink, PowerSinkExt,
        PowerSource, ProfileRequest, TrajectorySegment, Ur3e, Ur3eKinematics,
    };
    pub use rad_store::{
        CommandDataset, CrashInjector, CrashPlan, CrashSite, DocumentStore, DurableOptions,
        DurableStore, Filter, LoadIssue, LoadReport, PowerDataset, RecoveryReport, WalOptions,
    };
    pub use rad_workloads::{
        run_scenario, AttackKind, CampaignBuilder, CampaignScript, DisconnectPolicy, ProcedureRun,
        RemoteCampaign, RemoteSession, RunOptions, ScenarioReport, ScenarioSpec,
    };
}
