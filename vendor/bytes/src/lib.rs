//! Minimal offline stand-in for the `bytes` crate.
//!
//! Provides `Bytes` (immutable, cheaply cloneable) and `BytesMut`
//! (growable with an advancing read cursor) plus the `Buf`/`BufMut`
//! trait subset the middlebox framing layer uses.

use std::fmt;
use std::ops::{Deref, Index};
use std::sync::Arc;

/// Immutable byte buffer, cheap to clone (shared allocation).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Upstream `from_static` borrows for `'static`; the shim's shared
    /// allocation makes a copy equivalent for callers.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer with an advancing read cursor.
///
/// `advance`/`split_to` move a head index instead of shifting data;
/// the backing storage is compacted when fully consumed.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    head: usize,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
            head: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits off the first `at` readable bytes into a new buffer.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let front = self.buf[self.head..self.head + at].to_vec();
        self.head += at;
        self.compact();
        BytesMut {
            buf: front,
            head: 0,
        }
    }

    /// Discards all readable bytes.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }

    /// Freezes the readable bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.buf[self.head..].into(),
        }
    }

    fn compact(&mut self) {
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.head..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut {
            buf: v.to_vec(),
            head: 0,
        }
    }
}

impl Index<usize> for BytesMut {
    type Output = u8;
    fn index(&self, i: usize) -> &u8 {
        &self.buf[self.head + i]
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Read-side cursor operations.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, cnt: usize);
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.head += cnt;
        self.compact();
    }
}

/// Write-side append operations.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framing_shape_round_trips() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32(5);
        b.put_slice(b"hello");
        assert_eq!(b.len(), 9);
        assert_eq!(u32::from_be_bytes([b[0], b[1], b[2], b[3]]), 5);
        b.advance(4);
        let frame = b.split_to(5).freeze();
        assert_eq!(frame.as_ref(), b"hello");
        assert!(b.is_empty());
    }

    #[test]
    fn bytes_clone_is_shared() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(&a[..], &b[..]);
        assert_eq!(a.len(), 3);
    }
}
