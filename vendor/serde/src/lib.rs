//! Minimal offline stand-in for `serde`.
//!
//! Instead of the visitor-based `Serializer`/`Deserializer` pair,
//! values convert to and from a single self-describing [`Content`]
//! tree. `serde_json` (also shimmed) renders `Content` as JSON with
//! the same externally tagged conventions real serde uses for the
//! types this workspace derives: unit enum variants as strings,
//! newtype variants as one-entry maps, struct variants as nested maps,
//! newtype structs as their inner value.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every value serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Field order is preserved — serialization is deterministic.
    Map(Vec<(String, Content)>),
}

impl Content {
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::Int(_) => "int",
            Content::UInt(_) => "uint",
            Content::Float(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization failure with a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Content`] data model.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Conversion out of the [`Content`] data model.
pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// Looks up a struct field, yielding `Null` when absent so `Option`
/// fields deserialize to `None` (mirrors serde's missing-field
/// handling for options).
pub fn content_field<'a>(map: &'a [(String, Content)], name: &str) -> &'a Content {
    static NULL: Content = Content::Null;
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

fn type_error<T>(expected: &str, got: &Content) -> Result<T, DeError> {
    Err(DeError::custom(format!(
        "expected {expected}, got {}",
        got.kind()
    )))
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => type_error("bool", other),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Int(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let wide: i128 = match content {
                    Content::Int(v) => *v as i128,
                    Content::UInt(v) => *v as i128,
                    other => return type_error("integer", other),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let wide: i128 = match content {
                    Content::Int(v) => *v as i128,
                    Content::UInt(v) => *v as i128,
                    other => return type_error("integer", other),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Float(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::Float(v) => Ok(*v as $t),
                    Content::Int(v) => Ok(*v as $t),
                    Content::UInt(v) => Ok(*v as $t),
                    other => type_error("number", other),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => type_error("string", other),
        }
    }
}

impl<T: ?Sized + ToOwned> Serialize for std::borrow::Cow<'_, T>
where
    for<'a> &'a T: Serialize,
{
    fn to_content(&self) -> Content {
        self.as_ref().to_content()
    }
}

impl<T: ?Sized + ToOwned> Deserialize for std::borrow::Cow<'static, T>
where
    T::Owned: Deserialize,
{
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::Owned::from_content(content).map(std::borrow::Cow::Owned)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_error("single-character string", other),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => type_error("sequence", other),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let items = match content {
            Content::Seq(items) => items,
            other => return type_error("sequence", other),
        };
        if items.len() != N {
            return Err(DeError::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let values: Vec<T> = items.iter().map(T::from_content).collect::<Result<_, _>>()?;
        values
            .try_into()
            .map_err(|_| DeError::custom("array length mismatch"))
    }
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_content(&self) -> Content {
        match self {
            Ok(v) => Content::Map(vec![("Ok".to_owned(), v.to_content())]),
            Err(e) => Content::Map(vec![("Err".to_owned(), e.to_content())]),
        }
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let entries = match content {
            Content::Map(entries) if entries.len() == 1 => entries,
            other => return type_error("single-entry map for Result", other),
        };
        let (tag, value) = &entries[0];
        match tag.as_str() {
            "Ok" => T::from_content(value).map(Ok),
            "Err" => E::from_content(value).map(Err),
            other => Err(DeError::custom(format!("unknown Result tag {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($idx:tt $name:ident),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let items = match content {
                    Content::Seq(items) => items,
                    other => return type_error("sequence", other),
                };
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {expected}, got {}", items.len()
                    )));
                }
                Ok(($($name::from_content(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(()),
            other => type_error("null", other),
        }
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_content(&42i64.to_content()).unwrap(), 42);
        assert_eq!(u32::from_content(&7u32.to_content()).unwrap(), 7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert_eq!(f64::from_content(&Content::Int(3)).unwrap(), 3.0);
        assert_eq!(
            String::from_content(&"hi".to_owned().to_content()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_uses_null() {
        let none: Option<u64> = None;
        assert_eq!(none.to_content(), Content::Null);
        assert_eq!(Option::<u64>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(
            Option::<u64>::from_content(&Content::UInt(3)).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn result_is_externally_tagged() {
        let ok: Result<u64, String> = Ok(1);
        let content = ok.to_content();
        assert_eq!(
            content,
            Content::Map(vec![("Ok".to_owned(), Content::UInt(1))])
        );
        assert_eq!(
            Result::<u64, String>::from_content(&content).unwrap(),
            Ok(1)
        );
    }

    #[test]
    fn arrays_round_trip() {
        let a = [1.0f64, 2.0, 3.0];
        let back: [f64; 3] = Deserialize::from_content(&a.to_content()).unwrap();
        assert_eq!(back, a);
        assert!(<[f64; 2]>::from_content(&a.to_content()).is_err());
    }

    #[test]
    fn missing_fields_read_as_null() {
        let map = vec![("a".to_owned(), Content::UInt(1))];
        assert_eq!(content_field(&map, "a"), &Content::UInt(1));
        assert_eq!(content_field(&map, "b"), &Content::Null);
    }
}
