//! Minimal offline stand-in for `rand` 0.8.
//!
//! Implements the trait surface the workspace uses: [`RngCore`],
//! [`Rng::gen_range`]/[`Rng::gen_bool`], [`SeedableRng`] with the
//! SplitMix64-based `seed_from_u64` key expansion, and
//! [`seq::SliceRandom::shuffle`] (Fisher–Yates). Distribution quality
//! is adequate for simulation workloads; no cryptographic claims.

use std::ops::{Range, RangeInclusive};

/// Core random number generation: a stream of `u32`/`u64` words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform f64 in `[0, 1)` using the top 53 bits of a u64.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (end - start) * unit_f64(rng) as $t
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] (sized or not, so `&mut dyn RngCore` works).
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsRef<[u8]> + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64, like rand 0.8.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice utilities driven by an RNG.
    pub trait SliceRandom {
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod rngs {
    //! Placeholder module kept for path compatibility.
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xorshift so low bits vary too
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(99);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn dyn_rng_core_supports_gen_range() {
        let mut rng = Counter(1);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0.0f64..1.0);
        assert!((0.0..1.0).contains(&v));
    }
}
