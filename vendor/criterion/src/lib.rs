//! Minimal offline stand-in for `criterion`.
//!
//! Measures wall-clock time per iteration: a short warm-up, then
//! adaptive batching until the measurement window fills, reporting the
//! median of per-batch means. Prints one line per benchmark in a
//! stable format:
//!
//! ```text
//! bench-name              time: 12_345 ns/iter (n samples)
//! ```
//!
//! The `criterion_group!`/`criterion_main!` macros, `bench_function`,
//! benchmark groups, `iter`, and `iter_batched` match the upstream
//! call shapes used by this workspace.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost; the shim runs every batch
/// with one setup per routine call, so the variants only document
/// intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collected timing for one benchmark.
#[derive(Clone, Debug)]
pub struct Sample {
    pub name: String,
    pub ns_per_iter: f64,
    pub samples: usize,
}

/// The benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    results: Vec<Sample>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(80),
            measurement: Duration::from_millis(400),
            sample_size: 32,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        let sample = bencher.finish(name);
        println!(
            "{:<48} time: {:>12.0} ns/iter ({} samples)",
            sample.name, sample.ns_per_iter, sample.samples
        );
        self.results.push(sample);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_owned(),
        }
    }

    /// All samples measured so far (used by reporting code).
    pub fn samples(&self) -> &[Sample] {
        &self.results
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, name: impl ToString, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name.to_string());
        self.criterion.bench_function(&full, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement = t;
        self
    }

    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs and times the routine.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    result: Option<(f64, usize)>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        // Batch so each sample takes measurement/sample_size.
        let target_batch_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((target_batch_ns / per_iter.max(1.0)).ceil() as u64).max(1);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.result = Some((samples[samples.len() / 2], samples.len()));
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Time only the routine, not the setup.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut routine_ns: u128 = 0;
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            routine_ns += start.elapsed().as_nanos();
            warm_iters += 1;
        }
        let per_iter = (routine_ns as f64 / warm_iters.max(1) as f64).max(1.0);
        let target_batch_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((target_batch_ns / per_iter).ceil() as u64).clamp(1, 10_000);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut elapsed: u128 = 0;
            for _ in 0..batch {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                elapsed += start.elapsed().as_nanos();
            }
            samples.push(elapsed as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.result = Some((samples[samples.len() / 2], samples.len()));
    }

    fn finish(self, name: &str) -> Sample {
        let (ns_per_iter, samples) = self
            .result
            .unwrap_or_else(|| panic!("benchmark {name} never called iter()"));
        Sample {
            name: name.to_owned(),
            ns_per_iter,
            samples,
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(2),
            measurement: Duration::from_millis(10),
            sample_size: 4,
            results: Vec::new(),
        }
    }

    #[test]
    fn iter_produces_a_sample() {
        let mut c = quick();
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert_eq!(c.samples().len(), 1);
        assert!(c.samples()[0].ns_per_iter > 0.0);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = quick();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(4);
            g.bench_function("x", |b| {
                b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
            });
            g.finish();
        }
        assert_eq!(c.samples()[0].name, "g/x");
    }
}
