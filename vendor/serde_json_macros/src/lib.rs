//! The `json!` macro for the vendored `serde_json` shim.
//!
//! A proc macro (rather than `macro_rules!`) because object values are
//! arbitrary multi-token Rust expressions (`trace.id().0`) that a
//! `$val:tt` matcher cannot capture. The macro walks the token stream
//! and emits an expression building a `serde_json::Value`: JSON
//! `{...}`/`[...]` literals recurse, `null`/`true`/`false` map to
//! their values, and anything else is converted through
//! `serde_json::to_value`.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

#[proc_macro]
pub fn json(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    match value_expr(&tokens) {
        Ok(code) => code.parse().unwrap(),
        Err(msg) => format!("compile_error!({msg:?})").parse().unwrap(),
    }
}

fn value_expr(tokens: &[TokenTree]) -> Result<String, String> {
    if tokens.is_empty() {
        return Err("json! needs a value".to_owned());
    }
    if tokens.len() == 1 {
        match &tokens[0] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                return object_expr(g.stream());
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => {
                return array_expr(g.stream());
            }
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "null" => return Ok("::serde_json::Value::Null".to_owned()),
                "true" => return Ok("::serde_json::Value::Bool(true)".to_owned()),
                "false" => return Ok("::serde_json::Value::Bool(false)".to_owned()),
                _ => {}
            },
            _ => {}
        }
    }
    // Arbitrary Rust expression: convert through Serialize.
    let expr: String = tokens.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(" ");
    Ok(format!(
        "::serde_json::to_value(&({expr})).expect(\"json! value failed to serialize\")"
    ))
}

fn array_expr(stream: TokenStream) -> Result<String, String> {
    let mut items = Vec::new();
    for segment in split_commas(stream) {
        items.push(value_expr(&segment)?);
    }
    Ok(format!(
        "::serde_json::Value::Array(vec![{}])",
        items.join(", ")
    ))
}

fn object_expr(stream: TokenStream) -> Result<String, String> {
    let mut inserts = Vec::new();
    for segment in split_commas(stream) {
        let (key_tokens, value_tokens) = split_key_value(&segment)?;
        let key = key_code(&key_tokens)?;
        let value = value_expr(&value_tokens)?;
        inserts.push(format!("__map.insert({key}.to_string(), {value});"));
    }
    Ok(format!(
        "{{ let mut __map = ::serde_json::Map::new(); {} ::serde_json::Value::Object(__map) }}",
        inserts.join(" ")
    ))
}

fn key_code(tokens: &[TokenTree]) -> Result<String, String> {
    if tokens.len() == 1 {
        match &tokens[0] {
            TokenTree::Literal(lit) => return Ok(lit.to_string()),
            TokenTree::Ident(id) => return Ok(format!("{:?}", id.to_string())),
            _ => {}
        }
    }
    Err(format!(
        "json! object keys must be string literals or identifiers, got {tokens:?}"
    ))
}

/// Splits on top-level commas (groups nest automatically; token-stream
/// commas inside `(...)`/`[...]`/`{...}` are invisible here).
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut segments = vec![Vec::new()];
    for token in stream {
        if matches!(&token, TokenTree::Punct(p) if p.as_char() == ',') {
            segments.push(Vec::new());
        } else {
            segments.last_mut().unwrap().push(token);
        }
    }
    segments.retain(|s| !s.is_empty());
    segments
}

/// Splits one `key: value` entry at the first lone `:` (a `::` path
/// separator is two joint puncts and is skipped).
fn split_key_value(segment: &[TokenTree]) -> Result<(Vec<TokenTree>, Vec<TokenTree>), String> {
    let mut i = 0;
    while i < segment.len() {
        if let TokenTree::Punct(p) = &segment[i] {
            if p.as_char() == ':' {
                if p.spacing() == Spacing::Joint
                    && matches!(segment.get(i + 1), Some(TokenTree::Punct(q)) if q.as_char() == ':')
                {
                    i += 2;
                    continue;
                }
                return Ok((segment[..i].to_vec(), segment[i + 1..].to_vec()));
            }
        }
        i += 1;
    }
    Err("json! object entry missing `:`".to_owned())
}
