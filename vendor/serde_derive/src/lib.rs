//! Minimal offline stand-in for `serde_derive`.
//!
//! Parses the item token stream by hand (no `syn`/`quote`) and emits
//! `impl serde::Serialize` / `impl serde::Deserialize` blocks as
//! source strings. Supports exactly the shapes this workspace derives:
//! non-generic structs (unit, tuple, named) and non-generic enums with
//! unit, newtype, tuple, and struct variants. Generic items are
//! rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Item {
    Struct { name: String, shape: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    shape: Fields,
}

enum Fields {
    Unit,
    /// Tuple fields; the count is all we need.
    Tuple(usize),
    /// Named field identifiers, in declaration order.
    Named(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match (&item, mode) {
        (Item::Struct { name, shape }, Mode::Serialize) => gen_struct_ser(name, shape),
        (Item::Struct { name, shape }, Mode::Deserialize) => gen_struct_de(name, shape),
        (Item::Enum { name, variants }, Mode::Serialize) => gen_enum_ser(name, variants),
        (Item::Enum { name, variants }, Mode::Deserialize) => gen_enum_de(name, variants),
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);
    let keyword = expect_ident(&tokens, &mut pos)?;
    let name = expect_ident(&tokens, &mut pos)?;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }
    match keyword.as_str() {
        "struct" => {
            let shape = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unexpected token after struct name: {other:?}")),
            };
            Ok(Item::Struct { name, shape })
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, got {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("expected struct or enum, got `{other}`")),
    }
}

fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *pos += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> Result<String, String> {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            Ok(id.to_string())
        }
        other => Err(format!("expected identifier, got {other:?}")),
    }
}

/// Splits a field-list token stream on top-level commas, tracking both
/// group nesting (automatic via `TokenTree::Group`) and angle-bracket
/// depth (`<`/`>` are plain puncts in token streams).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut segments = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for token in stream {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    segments.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        segments.last_mut().unwrap().push(token);
    }
    segments.retain(|s| !s.is_empty());
    segments
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for segment in split_top_level(stream) {
        let mut pos = 0;
        skip_attributes(&segment, &mut pos);
        skip_visibility(&segment, &mut pos);
        names.push(expect_ident(&segment, &mut pos)?);
    }
    Ok(names)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for segment in split_top_level(stream) {
        let mut pos = 0;
        skip_attributes(&segment, &mut pos);
        let name = expect_ident(&segment, &mut pos)?;
        let shape = match segment.get(pos) {
            None => Fields::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            // Explicit discriminant (`= expr`) on a unit variant.
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => Fields::Unit,
            other => return Err(format!("unexpected token in variant {name}: {other:?}")),
        };
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------- codegen

fn ser_impl(name: &str, body: String) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n\
         }}"
    )
}

fn de_impl(name: &str, body: String) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_content(__content: &::serde::Content) \
              -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

/// `Content::Map(vec![("a", self.a.to_content()), ...])` for accessors.
fn map_expr(entries: &[(String, String)]) -> String {
    let items: Vec<String> = entries
        .iter()
        .map(|(key, access)| {
            format!("({key:?}.to_owned(), ::serde::Serialize::to_content({access}))")
        })
        .collect();
    format!("::serde::Content::Map(vec![{}])", items.join(", "))
}

fn gen_struct_ser(name: &str, shape: &Fields) -> String {
    let body = match shape {
        Fields::Unit => "::serde::Content::Null".to_owned(),
        Fields::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_owned(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Fields::Named(fields) => {
            let entries: Vec<(String, String)> = fields
                .iter()
                .map(|f| (f.clone(), format!("&self.{f}")))
                .collect();
            map_expr(&entries)
        }
    };
    ser_impl(name, body)
}

fn gen_struct_de(name: &str, shape: &Fields) -> String {
    let body = match shape {
        Fields::Unit => format!("match __content {{ ::serde::Content::Null => Ok({name}), other => Err(::serde::DeError::custom(format!(\"expected null for unit struct {name}, got {{other:?}}\"))) }}"),
        Fields::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_content(__content)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __content.as_seq().ok_or_else(|| ::serde::DeError::custom(\"expected sequence for struct {name}\"))?;\n\
                 if __items.len() != {n} {{ return Err(::serde::DeError::custom(\"wrong tuple length for struct {name}\")); }}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Fields::Named(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(::serde::content_field(__map, {f:?}))?"
                    )
                })
                .collect();
            format!(
                "let __map = __content.as_map().ok_or_else(|| ::serde::DeError::custom(\"expected map for struct {name}\"))?;\n\
                 Ok({name} {{ {items} }})",
                items = items.join(", ")
            )
        }
    };
    de_impl(name, body)
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let mut arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        let arm = match &v.shape {
            Fields::Unit => format!(
                "{name}::{vname} => ::serde::Content::Str({vname:?}.to_owned()),"
            ),
            Fields::Tuple(1) => format!(
                "{name}::{vname}(__f0) => ::serde::Content::Map(vec![({vname:?}.to_owned(), ::serde::Serialize::to_content(__f0))]),"
            ),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_content({b})"))
                    .collect();
                format!(
                    "{name}::{vname}({binds}) => ::serde::Content::Map(vec![({vname:?}.to_owned(), ::serde::Content::Seq(vec![{items}]))]),",
                    binds = binds.join(", "),
                    items = items.join(", ")
                )
            }
            Fields::Named(fields) => {
                let entries: Vec<(String, String)> =
                    fields.iter().map(|f| (f.clone(), f.clone())).collect();
                format!(
                    "{name}::{vname} {{ {binds} }} => ::serde::Content::Map(vec![({vname:?}.to_owned(), {map})]),",
                    binds = fields.join(", "),
                    map = map_expr(&entries)
                )
            }
        };
        arms.push(arm);
    }
    ser_impl(name, format!("match self {{\n{}\n}}", arms.join("\n")))
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = Vec::new();
    let mut tagged_arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            Fields::Unit => {
                unit_arms.push(format!("{vname:?} => Ok({name}::{vname}),"));
                // A unit variant may also arrive as `{"Name": null}`.
                tagged_arms.push(format!(
                    "{vname:?} => match __value {{ ::serde::Content::Null => Ok({name}::{vname}), _ => Err(::serde::DeError::custom(\"unit variant {vname} takes no payload\")) }},"
                ));
            }
            Fields::Tuple(1) => tagged_arms.push(format!(
                "{vname:?} => Ok({name}::{vname}(::serde::Deserialize::from_content(__value)?)),"
            )),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_content(&__items[{i}])?"))
                    .collect();
                tagged_arms.push(format!(
                    "{vname:?} => {{\n\
                         let __items = __value.as_seq().ok_or_else(|| ::serde::DeError::custom(\"expected sequence for variant {vname}\"))?;\n\
                         if __items.len() != {n} {{ return Err(::serde::DeError::custom(\"wrong tuple length for variant {vname}\")); }}\n\
                         Ok({name}::{vname}({items}))\n\
                     }}",
                    items = items.join(", ")
                ));
            }
            Fields::Named(fields) => {
                let items: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_content(::serde::content_field(__map, {f:?}))?"
                        )
                    })
                    .collect();
                tagged_arms.push(format!(
                    "{vname:?} => {{\n\
                         let __map = __value.as_map().ok_or_else(|| ::serde::DeError::custom(\"expected map for variant {vname}\"))?;\n\
                         Ok({name}::{vname} {{ {items} }})\n\
                     }}",
                    items = items.join(", ")
                ));
            }
        }
    }
    let body = format!(
        "match __content {{\n\
             ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 other => Err(::serde::DeError::custom(format!(\"unknown variant {{other:?}} of enum {name}\"))),\n\
             }},\n\
             ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __value) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                     {tagged_arms}\n\
                     other => Err(::serde::DeError::custom(format!(\"unknown variant {{other:?}} of enum {name}\"))),\n\
                 }}\n\
             }}\n\
             other => Err(::serde::DeError::custom(format!(\"cannot deserialize enum {name} from {{other:?}}\"))),\n\
         }}",
        unit_arms = unit_arms.join("\n"),
        tagged_arms = tagged_arms.join("\n"),
    );
    de_impl(name, body)
}
