//! Minimal offline stand-in for `proptest`.
//!
//! Provides the strategy combinators and macros this workspace uses:
//! `proptest!`, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! `prop_oneof!`, range/tuple/regex-subset strategies, and the
//! `collection`/`option`/`array`/`num` modules. Failing cases are
//! reported verbatim — there is no shrinking. Case generation is
//! deterministic per test name, so failures reproduce.

pub mod test_runner {
    /// SplitMix64 generator driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Seeds deterministically from a test name.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform usize in `[lo, hi]`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo <= hi);
            lo + (self.next_u64() % (hi as u64 - lo as u64 + 1)) as usize
        }
    }

    /// Per-block configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// The case count to run: `PROPTEST_CASES` overrides the
        /// configured value (matching upstream proptest), so CI can
        /// deepen coverage without touching the tests.
        pub fn effective_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(raw) => raw.trim().parse().unwrap_or(self.cases),
                Err(_) => self.cases,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Control flow for one generated case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; skip the case.
        Reject,
        /// `prop_assert*!` failed; abort the test.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            MapStrategy { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Type-erased strategy (also what `prop_oneof!` arms become).
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: std::rc::Rc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Uniform choice between boxed alternatives.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.usize_in(0, self.arms.len() - 1);
            self.arms[idx].generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct MapStrategy<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for MapStrategy<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (lo as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                    if v >= self.end { self.start } else { v }
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    /// `&str` strategies interpret a regex subset: a sequence of atoms,
    /// each a literal char or `[...]` class, optionally repeated
    /// `{m,n}`. This covers every pattern used in the workspace tests.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for atom in &atoms {
                let reps = rng.usize_in(atom.min, atom.max);
                for _ in 0..reps {
                    let idx = rng.usize_in(0, atom.chars.len() - 1);
                    out.push(atom.chars[idx]);
                }
            }
            out
        }
    }

    struct Atom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse_pattern(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let mut alphabet = Vec::new();
            match chars[i] {
                '[' => {
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        let c = if chars[i] == '\\' {
                            i += 1;
                            unescape(chars[i])
                        } else {
                            chars[i]
                        };
                        // Range `c-d` unless `-` is the trailing char.
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let hi = chars[i + 2];
                            for code in (c as u32)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(code) {
                                    alphabet.push(ch);
                                }
                            }
                            i += 3;
                        } else {
                            alphabet.push(c);
                            i += 1;
                        }
                    }
                    i += 1; // closing `]`
                }
                '\\' => {
                    i += 1;
                    alphabet.push(unescape(chars[i]));
                    i += 1;
                }
                c => {
                    alphabet.push(c);
                    i += 1;
                }
            }
            let (mut min, mut max) = (1, 1);
            if i < chars.len() && chars[i] == '{' {
                let close = chars[i..].iter().position(|&c| c == '}').unwrap() + i;
                let spec: String = chars[i + 1..close].iter().collect();
                if let Some((lo, hi)) = spec.split_once(',') {
                    min = lo.trim().parse().unwrap_or(0);
                    max = hi.trim().parse().unwrap_or(min);
                } else {
                    min = spec.trim().parse().unwrap_or(1);
                    max = min;
                }
                i = close + 1;
            }
            assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");
            atoms.push(Atom {
                chars: alphabet,
                min,
                max,
            });
        }
        atoms
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        type Strategy: Strategy<Value = Self>;

        fn arbitrary() -> Self::Strategy;
    }

    /// Full-range strategy for a primitive.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyPrim<T> {
        _marker: std::marker::PhantomData<T>,
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrim<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = AnyPrim<$t>;

                fn arbitrary() -> Self::Strategy {
                    AnyPrim::default()
                }
            }
        )*};
    }

    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyPrim<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrim<bool>;

        fn arbitrary() -> Self::Strategy {
            AnyPrim::default()
        }
    }
}

/// The canonical strategy for `A`.
pub fn any<A: arbitrary::Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

pub mod num {
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Any `f64`, including infinities, NaNs, and subnormals.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;

            fn generate(&self, rng: &mut TestRng) -> f64 {
                // Mostly reinterpreted random bits (covers the full
                // float landscape), plus occasional special values.
                match rng.next_u64() % 16 {
                    0 => 0.0,
                    1 => -0.0,
                    2 => f64::INFINITY,
                    3 => f64::NEG_INFINITY,
                    4 => f64::NAN,
                    _ => f64::from_bits(rng.next_u64()),
                }
            }
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on generated collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// `Vec` of values from `element`, with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.min, self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `Some` three times out of four, like upstream's default weight.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod array {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `[V; 6]` with every element drawn from `element`.
    pub fn uniform6<S: Strategy>(element: S) -> Uniform6<S> {
        Uniform6 { element }
    }

    pub struct Uniform6<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for Uniform6<S> {
        type Value = [S::Value; 6];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; 6] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }
}

pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left), stringify!($right), __l, __r,
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                            stringify!($left), stringify!($right), format!($($fmt)+), __l, __r,
                        ),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left), stringify!($right), __l,
                        ),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __cases = __config.effective_cases();
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let ($($arg,)+) = ($($strat,)+);
            let __strategies = ($(&$arg,)+);
            let mut __executed: u32 = 0;
            let mut __attempts: u32 = 0;
            while __executed < __cases && __attempts < __cases * 16 {
                __attempts += 1;
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                    let ($($arg,)+) = __strategies;
                    let ($($arg,)+) = (
                        $($crate::strategy::Strategy::generate($arg, &mut __rng),)+
                    );
                    #[allow(unused_mut)]
                    let mut __case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        { $body }
                        ::std::result::Result::Ok(())
                    };
                    __case()
                };
                match __outcome {
                    ::std::result::Result::Ok(()) => __executed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!("proptest `{}` failed: {}", stringify!($name), __msg);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..10, f in -2.0f64..2.0, s in "[a-c]{2,4}") {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn vec_and_tuple_strategies(v in crate::collection::vec(0u8..4, 1..8), t in (0u8..2, 0.0f64..1.0)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&b| b < 4));
            prop_assert!(t.0 < 2 && t.1 < 1.0);
        }

        #[test]
        fn oneof_and_assume(v in prop_oneof![Just(1u8), Just(2u8)], raw in 0u8..10) {
            prop_assume!(raw < 5);
            prop_assert!(v == 1 || v == 2);
            prop_assert_ne!(v, 0);
        }
    }

    #[test]
    fn deterministic_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let s = "[a-z]{0,12}";
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
