//! Minimal offline stand-in for `serde_json`.
//!
//! Implements the `Value`/`Map`/`Number` tree, a recursive-descent
//! JSON parser, a writer with serde_json's float conventions (integral
//! floats keep a trailing `.0`, non-finite floats render as `null`),
//! and the usual entry points (`to_string`, `to_vec`, `from_str`,
//! `from_slice`, `to_value`, `from_value`). Values interconvert with
//! the vendored serde's `Content` data model. Object keys are stored
//! sorted (`BTreeMap`), matching upstream's default feature set.

// Let the `json!` proc macro's `::serde_json` paths resolve inside
// this crate's own tests.
extern crate self as serde_json;

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;

use serde::{Content, Deserialize, Serialize};

pub use serde_json_macros::json;

/// Error produced by (de)serialization or parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// A JSON number: positive integer, negative integer, or float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    pub fn from_f64(v: f64) -> Option<Number> {
        v.is_finite().then_some(Number::Float(v))
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Number::PosInt(v) => Some(*v as f64),
            Number::NegInt(v) => Some(*v as f64),
            Number::Float(v) => Some(*v),
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::PosInt(v) => i64::try_from(*v).ok(),
            Number::NegInt(v) => Some(*v),
            Number::Float(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::PosInt(v) => Some(*v),
            Number::NegInt(_) | Number::Float(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if !v.is_finite() {
                    write!(f, "null")
                } else {
                    let s = format!("{v}");
                    if s.contains('.') || s.contains('e') || s.contains('E') {
                        write!(f, "{s}")
                    } else {
                        write!(f, "{s}.0")
                    }
                }
            }
        }
    }
}

/// A JSON object with sorted keys.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: BTreeMap<K, V>,
}

impl Map<String, Value> {
    pub fn new() -> Self {
        Map {
            entries: BTreeMap::new(),
        }
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.entries.insert(key, value)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries.get_mut(key)
    }

    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.entries.remove(key)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> std::collections::btree_map::Iter<'_, String, Value> {
        self.entries.iter()
    }

    pub fn keys(&self) -> std::collections::btree_map::Keys<'_, String, Value> {
        self.entries.keys()
    }

    pub fn values(&self) -> std::collections::btree_map::Values<'_, String, Value> {
        self.entries.values()
    }
}

impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::collections::btree_map::Iter<'a, String, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::collections::btree_map::IntoIter<String, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Map {
            entries: iter.into_iter().collect(),
        }
    }
}

/// A parsed JSON document.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Object field access; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }
}

static NULL_VALUE: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL_VALUE),
            _ => &NULL_VALUE,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out, None, 0);
        write!(f, "{out}")
    }
}

macro_rules! impl_value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                #[allow(unused_comparisons)]
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v as i64))
                }
            }
        }
    )*};
}

impl_value_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Value {
        Value::Object(v)
    }
}

// ------------------------------------------------- Content conversions

fn content_to_value(content: &Content) -> Value {
    match content {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(*b),
        Content::Int(v) => {
            if *v >= 0 {
                Value::Number(Number::PosInt(*v as u64))
            } else {
                Value::Number(Number::NegInt(*v))
            }
        }
        Content::UInt(v) => Value::Number(Number::PosInt(*v)),
        Content::Float(v) => Value::Number(Number::Float(*v)),
        Content::Str(s) => Value::String(s.clone()),
        Content::Seq(items) => Value::Array(items.iter().map(content_to_value).collect()),
        Content::Map(entries) => Value::Object(
            entries
                .iter()
                .map(|(k, v)| (k.clone(), content_to_value(v)))
                .collect(),
        ),
    }
}

fn value_to_content(value: &Value) -> Content {
    match value {
        Value::Null => Content::Null,
        Value::Bool(b) => Content::Bool(*b),
        Value::Number(Number::PosInt(v)) => Content::UInt(*v),
        Value::Number(Number::NegInt(v)) => Content::Int(*v),
        Value::Number(Number::Float(v)) => Content::Float(*v),
        Value::String(s) => Content::Str(s.clone()),
        Value::Array(items) => Content::Seq(items.iter().map(value_to_content).collect()),
        Value::Object(map) => Content::Map(
            map.iter()
                .map(|(k, v)| (k.clone(), value_to_content(v)))
                .collect(),
        ),
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        value_to_content(self)
    }
}

impl Deserialize for Value {
    fn from_content(content: &Content) -> Result<Self, serde::DeError> {
        Ok(content_to_value(content))
    }
}

// ------------------------------------------------------------- writing

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(value: &Value, out: &mut String, pretty: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(indent) = pretty {
                    out.push('\n');
                    out.push_str(&" ".repeat(indent * (depth + 1)));
                }
                write_value(item, out, pretty, depth + 1);
            }
            if let Some(indent) = pretty {
                out.push('\n');
                out.push_str(&" ".repeat(indent * depth));
            }
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(indent) = pretty {
                    out.push('\n');
                    out.push_str(&" ".repeat(indent * (depth + 1)));
                }
                escape_into(key, out);
                out.push(':');
                if pretty.is_some() {
                    out.push(' ');
                }
                write_value(item, out, pretty, depth + 1);
            }
            if let Some(indent) = pretty {
                out.push('\n');
                out.push_str(&" ".repeat(indent * depth));
            }
            out.push('}');
        }
    }
}

// ------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.error("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.error("bad \\u hex"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u hex"))?;
                            self.pos += 4;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: expect a low surrogate pair.
                                self.eat_literal("\\u")?;
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| self.error("bad surrogate pair"))?;
                                let hex2 = std::str::from_utf8(hex2)
                                    .map_err(|_| self.error("bad surrogate hex"))?;
                                let low = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| self.error("bad surrogate hex"))?;
                                self.pos += 4;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| self.error("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

fn parse_document(input: &str) -> Result<Value, Error> {
    let mut parser = Parser::new(input);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

// -------------------------------------------------------- entry points

pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(content_to_value(&value.to_content()))
}

pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_content(&value_to_content(&value)).map_err(Into::into)
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&content_to_value(&value.to_content()), &mut out, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&content_to_value(&value.to_content()), &mut out, Some(2), 0);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_document(input)?;
    T::from_content(&value_to_content(&value)).map_err(Into::into)
}

pub fn from_slice<T: Deserialize>(input: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(input).map_err(|_| Error::new("input is not utf-8"))?;
    from_str(text)
}

pub mod value {
    pub use super::{Map, Number, Value};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "42", "-7", "1.5", "\"hi\""] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
    }

    #[test]
    fn float_keeps_decimal_point() {
        let v = Value::from(5.0f64);
        assert_eq!(v.to_string(), "5.0");
        let back: Value = from_str("5.0").unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn nested_structure_round_trips() {
        let text = r#"{"a":[1,2.5,{"b":null}],"c":"x\ny"}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["c"].as_str(), Some("x\ny"));
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn json_macro_builds_objects() {
        let count = 3usize;
        let v = json!({
            "device": "C9",
            "latency_ms": 5.0,
            "count": count,
            "tags": ["a", "b"],
            "nested": {"ok": true},
            "missing": Option::<String>::None,
        });
        assert_eq!(v["device"].as_str(), Some("C9"));
        assert_eq!(v["latency_ms"].as_f64(), Some(5.0));
        assert_eq!(v["count"], json!(3));
        assert_eq!(v["tags"][1].as_str(), Some("b"));
        assert_eq!(v["nested"]["ok"].as_bool(), Some(true));
        assert!(v["missing"].is_null());
        assert!(v["absent"].is_null());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str(r#""A😀""#).unwrap();
        assert_eq!(v.as_str(), Some("A😀"));
    }

    #[test]
    fn pretty_printing_indents() {
        let v = json!({"a": 1});
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }
}
