//! Minimal offline stand-in for `rand_chacha`.
//!
//! [`ChaCha8Rng`] runs the genuine ChaCha quarter-round schedule with
//! 8 rounds over a 256-bit key and 64-bit block counter, emitting the
//! keystream as `u32`/`u64` words. Every stream is fully determined by
//! its seed, which is all the workspace relies on (reproducible
//! figures/tables); the word stream is not bit-compatible with
//! upstream `rand_chacha`.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

macro_rules! define_chacha {
    ($name:ident, $rounds:expr) => {
        /// ChaCha keystream generator.
        #[derive(Clone, Debug)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            block: [u32; 16],
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                let mut state = [0u32; 16];
                state[..4].copy_from_slice(&CONSTANTS);
                state[4..12].copy_from_slice(&self.key);
                state[12] = self.counter as u32;
                state[13] = (self.counter >> 32) as u32;
                state[14] = 0;
                state[15] = 0;
                let mut working = state;
                for _ in 0..($rounds / 2) {
                    // column rounds
                    quarter_round(&mut working, 0, 4, 8, 12);
                    quarter_round(&mut working, 1, 5, 9, 13);
                    quarter_round(&mut working, 2, 6, 10, 14);
                    quarter_round(&mut working, 3, 7, 11, 15);
                    // diagonal rounds
                    quarter_round(&mut working, 0, 5, 10, 15);
                    quarter_round(&mut working, 1, 6, 11, 12);
                    quarter_round(&mut working, 2, 7, 8, 13);
                    quarter_round(&mut working, 3, 4, 9, 14);
                }
                for i in 0..16 {
                    self.block[i] = working[i].wrapping_add(state[i]);
                }
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: [u8; 32]) -> Self {
                let mut key = [0u32; 8];
                for (i, chunk) in seed.chunks_exact(4).enumerate() {
                    key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
                }
                let mut rng = $name {
                    key,
                    counter: 0,
                    block: [0; 16],
                    index: 16,
                };
                rng.refill();
                rng
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let word = self.block[self.index];
                self.index += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                (hi << 32) | lo
            }
        }
    };
}

define_chacha!(ChaCha8Rng, 8);
define_chacha!(ChaCha12Rng, 12);
define_chacha!(ChaCha20Rng, 20);

fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn rfc8439_quarter_round_vector() {
        // RFC 8439 §2.1.1 quarter-round test vector.
        let mut s = [0u32; 16];
        s[0] = 0x1111_1111;
        s[1] = 0x0102_0304;
        s[2] = 0x9b8d_6f43;
        s[3] = 0x0123_4567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a_92f4);
        assert_eq!(s[1], 0xcb1c_f8ce);
        assert_eq!(s[2], 0x4581_472e);
        assert_eq!(s[3], 0x5881_c4bb);
    }
}
