//! Minimal offline stand-in for `crossbeam`.
//!
//! `channel` wraps `std::sync::mpsc` (the workspace only needs an
//! spsc unbounded channel with timeouts); `thread` re-exports
//! `std::thread::scope`, which covers the scoped fork-join pattern the
//! analysis pipeline uses. Note the `std` scope signature: no `Result`
//! wrapper and spawn closures take no scope argument.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn channel_round_trip_and_timeout() {
        let (tx, rx) = channel::unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        ));
        drop(tx);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Disconnected)
        ));
    }

    #[test]
    fn scoped_threads_join() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move || c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, 10);
    }
}
