//! Minimal offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives and strips lock poisoning, matching the
//! `parking_lot` API shape the workspace uses: `lock()`, `read()` and
//! `write()` return guards directly instead of `Result`s.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with non-poisoning guards.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Reader-writer lock with non-poisoning guards.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
