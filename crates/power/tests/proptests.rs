//! Property tests on trajectories, dynamics, and signal analysis.

#![allow(clippy::needless_range_loop)] // matrix checks read best indexed

use proptest::prelude::*;
use rad_power::{signal, PowerBlock, PowerSample, TrajectorySegment, Ur3e, Ur3eDynamics, JOINTS};

fn arb_pose() -> impl Strategy<Value = [f64; JOINTS]> {
    proptest::array::uniform6(-3.0f64..3.0)
}

fn arb_sample() -> impl Strategy<Value = PowerSample> {
    (
        0.0f64..1e3,
        arb_pose(),
        proptest::array::uniform6(-5.0f64..5.0),
        proptest::array::uniform6(-2.0f64..2.0),
    )
        .prop_map(|(t, pose, current, qd)| {
            let mut s = PowerSample::quiescent(t, pose);
            s.current_actual = current;
            s.qd_actual = qd;
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every planned move ends exactly at its target with zero
    /// velocity, whatever the endpoints and cruise speed.
    #[test]
    fn trajectories_reach_their_targets(
        start in arb_pose(),
        end in arb_pose(),
        v in 0.05f64..3.0,
    ) {
        let seg = TrajectorySegment::joint_move(start, end, v);
        let last = seg.sample(seg.duration() + 0.001);
        for j in 0..JOINTS {
            prop_assert!((last.q[j] - end[j]).abs() < 1e-9);
            prop_assert_eq!(last.qd[j], 0.0);
        }
    }

    /// Joint velocity never exceeds the commanded cruise velocity.
    #[test]
    fn velocity_respects_the_cruise_limit(
        start in arb_pose(),
        end in arb_pose(),
        v in 0.05f64..3.0,
    ) {
        let seg = TrajectorySegment::joint_move(start, end, v);
        for p in seg.sample_at(0.01) {
            for j in 0..JOINTS {
                prop_assert!(p.qd[j].abs() <= v + 1e-9);
            }
        }
    }

    /// Faster cruise never lengthens a move.
    #[test]
    fn duration_is_monotone_in_velocity(
        start in arb_pose(),
        end in arb_pose(),
        v in 0.05f64..1.0,
    ) {
        let slow = TrajectorySegment::joint_move(start, end, v).duration();
        let fast = TrajectorySegment::joint_move(start, end, v * 2.0).duration();
        prop_assert!(fast <= slow + 1e-9);
    }

    /// Gravity torque vanishes only through posture, never payload:
    /// adding payload never reduces the shoulder's absolute torque
    /// when the arm is extended forward.
    #[test]
    fn payload_never_reduces_extended_shoulder_torque(
        payload in 0.0f64..2.0,
        q1 in -1.4f64..-0.1,
        q2 in 0.1f64..1.4,
    ) {
        let dynamics = Ur3eDynamics::new();
        let q = [0.0, q1, q2, 0.0, 0.0, 0.0];
        prop_assume!((q1 + q2).cos() > 0.0 && q1.cos() > 0.0);
        let empty = dynamics.gravity_torques(&q, 0.0).0[1];
        let loaded = dynamics.gravity_torques(&q, payload).0[1];
        prop_assert!(loaded >= empty - 1e-12);
    }

    /// Pearson correlation is symmetric and bounded.
    #[test]
    fn pearson_is_symmetric_and_bounded(
        a in proptest::collection::vec(-100.0f64..100.0, 3..50),
        b in proptest::collection::vec(-100.0f64..100.0, 3..50),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        if let (Ok(r1), Ok(r2)) = (signal::pearson(a, b), signal::pearson(b, a)) {
            prop_assert!((r1 - r2).abs() < 1e-12);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r1));
        }
    }

    /// A series correlates perfectly with any positive affine image of
    /// itself.
    #[test]
    fn pearson_affine_invariance(
        a in proptest::collection::vec(-100.0f64..100.0, 3..40),
        scale in 0.1f64..10.0,
        shift in -50.0f64..50.0,
    ) {
        let b: Vec<f64> = a.iter().map(|v| v * scale + shift).collect();
        if let Ok(r) = signal::pearson(&a, &b) {
            prop_assert!((r - 1.0).abs() < 1e-6, "r = {r}");
        }
    }

    /// Resampling to the same length is the identity; resampling
    /// preserves endpoints.
    #[test]
    fn resample_identity_and_endpoints(
        series in proptest::collection::vec(-10.0f64..10.0, 2..60),
        target in 2usize..80,
    ) {
        let same = signal::resample(&series, series.len());
        prop_assert_eq!(&same, &series);
        let re = signal::resample(&series, target);
        prop_assert_eq!(re.len(), target);
        prop_assert!((re[0] - series[0]).abs() < 1e-12);
        prop_assert!((re[target - 1] - series[series.len() - 1]).abs() < 1e-12);
    }

    /// Profiles are exactly reproducible per seed, whatever the pose
    /// pair and payload.
    #[test]
    fn profiles_are_deterministic(
        from in 0usize..6,
        to in 0usize..6,
        payload in 0.0f64..1.0,
        seed in 0u64..50,
    ) {
        prop_assume!(from != to);
        let arm = Ur3e::new();
        let seg = TrajectorySegment::joint_move(
            Ur3e::named_pose(from),
            Ur3e::named_pose(to),
            0.9,
        );
        let a = arm.current_profile(std::slice::from_ref(&seg), payload, seed);
        let b = arm.current_profile(std::slice::from_ref(&seg), payload, seed);
        prop_assert_eq!(a, b);
    }

    /// The fused one-pass Pearson agrees with the retired two-pass
    /// kernel on every input: same value within 1e-9, same error cases.
    #[test]
    fn fused_pearson_matches_reference(
        a in proptest::collection::vec(-100.0f64..100.0, 2..60),
        b in proptest::collection::vec(-100.0f64..100.0, 2..60),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        match (signal::pearson(a, b), signal::reference::pearson(a, b)) {
            (Ok(fused), Ok(two_pass)) => prop_assert!(
                (fused - two_pass).abs() < 1e-9,
                "fused {fused} vs reference {two_pass}"
            ),
            (Err(e1), Err(e2)) => prop_assert_eq!(e1, e2),
            (f, r) => prop_assert!(false, "divergent outcomes: {f:?} vs {r:?}"),
        }
    }

    /// The correlation matrix is exactly the pairwise fused kernel —
    /// reusing per-series moments must not change any entry beyond
    /// 1e-9 of the reference.
    #[test]
    fn pearson_matrix_matches_reference_pairs(
        series in proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, 4..30),
            1..6,
        ),
        len in 4usize..30,
    ) {
        let trimmed: Vec<Vec<f64>> = series
            .iter()
            .map(|s| s.iter().copied().cycle().take(len).collect())
            .collect();
        let views: Vec<&[f64]> = trimmed.iter().map(Vec::as_slice).collect();
        if let Ok(matrix) = signal::pearson_matrix(&views) {
            for i in 0..views.len() {
                prop_assert_eq!(matrix[i][i], 1.0);
                for j in 0..views.len() {
                    let r = signal::reference::pearson(views[i], views[j]).unwrap();
                    prop_assert!(
                        (matrix[i][j] - r).abs() < 1e-9,
                        "entry ({i},{j}): {} vs {r}", matrix[i][j]
                    );
                }
            }
        }
    }

    /// The branch-free resampler is the reference resampler, sample
    /// for sample.
    #[test]
    fn branch_free_resample_matches_reference(
        series in proptest::collection::vec(-10.0f64..10.0, 2..60),
        target in 2usize..80,
    ) {
        let fused = signal::resample(&series, target);
        let reference = signal::reference::resample(&series, target);
        prop_assert_eq!(fused, reference);
    }

    /// Scattering samples into lanes and gathering them back is the
    /// identity, bit for bit, including through single-row views.
    #[test]
    fn power_block_round_trips_samples(
        samples in proptest::collection::vec(arb_sample(), 0..40),
    ) {
        let block = PowerBlock::from_samples(&samples);
        prop_assert_eq!(block.len(), samples.len());
        prop_assert_eq!(&block.to_samples(), &samples);
        for (row, sample) in block.iter().zip(&samples) {
            prop_assert_eq!(&row.to_sample(), sample);
        }
    }

    /// A block assembled from arbitrary chunk splits equals the block
    /// built in one shot — chunked hand-off loses or reorders nothing.
    #[test]
    fn power_block_append_is_chunking_invariant(
        samples in proptest::collection::vec(arb_sample(), 1..60),
        cuts in proptest::collection::vec(1usize..8, 1..12),
    ) {
        let whole = PowerBlock::from_samples(&samples);
        let mut chunked = PowerBlock::new();
        let mut start = 0;
        for &width in &cuts {
            if start >= whole.len() {
                break;
            }
            let end = (start + width).min(whole.len());
            chunked.append_range(&whole, start, end);
            start = end;
        }
        if start < whole.len() {
            chunked.append_range(&whole, start, whole.len());
        }
        prop_assert_eq!(chunked, whole);
    }

    /// Streaming Welford over arbitrary chunk splits is bit-identical
    /// to the batch kernel over the whole series — the push loop IS
    /// the batch loop, so no partition may change a single bit.
    #[test]
    fn streaming_moments_are_chunking_invariant(
        series in proptest::collection::vec(-1e3f64..1e3, 0..120),
        cuts in proptest::collection::vec(1usize..9, 1..12),
    ) {
        let batch = signal::moments(&series);
        let mut acc = signal::StreamingMoments::new();
        let mut start = 0;
        for &width in &cuts {
            if start >= series.len() {
                break;
            }
            let end = (start + width).min(series.len());
            acc.extend(&series[start..end]);
            start = end;
        }
        if start < series.len() {
            acc.extend(&series[start..]);
        }
        let streamed = acc.finish();
        prop_assert_eq!(streamed.n, batch.n);
        prop_assert_eq!(streamed.mean.to_bits(), batch.mean.to_bits());
        prop_assert_eq!(streamed.m2.to_bits(), batch.m2.to_bits());
    }

    /// Merging per-chunk Welford states (Chan's formula) agrees with
    /// one sequential pass to fine tolerance, wherever the split falls
    /// — including empty sides, which must be exact.
    #[test]
    fn streaming_moments_merge_matches_sequential(
        series in proptest::collection::vec(-1e3f64..1e3, 0..120),
        split in 0usize..120,
    ) {
        let split = split.min(series.len());
        let mut left = signal::StreamingMoments::new();
        left.extend(&series[..split]);
        let mut right = signal::StreamingMoments::new();
        right.extend(&series[split..]);
        let merged = left.merge(&right).finish();
        let sequential = signal::moments(&series);
        prop_assert_eq!(merged.n, sequential.n);
        if split == 0 || split == series.len() {
            // One side empty: merge must be the identity, bit for bit.
            prop_assert_eq!(merged.mean.to_bits(), sequential.mean.to_bits());
            prop_assert_eq!(merged.m2.to_bits(), sequential.m2.to_bits());
        } else {
            let scale = sequential.m2.abs().max(1.0);
            prop_assert!((merged.mean - sequential.mean).abs() <= 1e-9 * sequential.mean.abs().max(1.0));
            prop_assert!((merged.m2 - sequential.m2).abs() <= 1e-6 * scale);
        }
    }

    /// Merge is associative within tolerance: (a ⊕ b) ⊕ c ≈ a ⊕ (b ⊕ c).
    #[test]
    fn streaming_moments_merge_is_associative(
        a in proptest::collection::vec(-1e3f64..1e3, 0..40),
        b in proptest::collection::vec(-1e3f64..1e3, 0..40),
        c in proptest::collection::vec(-1e3f64..1e3, 0..40),
    ) {
        let acc = |xs: &[f64]| {
            let mut m = signal::StreamingMoments::new();
            m.extend(xs);
            m
        };
        let left = acc(&a).merge(&acc(&b)).merge(&acc(&c)).finish();
        let right = acc(&a).merge(&acc(&b).merge(&acc(&c))).finish();
        prop_assert_eq!(left.n, right.n);
        prop_assert!((left.mean - right.mean).abs() <= 1e-9 * left.mean.abs().max(1.0));
        prop_assert!((left.m2 - right.m2).abs() <= 1e-6 * left.m2.abs().max(1.0));
    }

    /// Streaming peak detection over arbitrary chunk splits is
    /// bit-identical to the batch kernel over the whole series.
    #[test]
    fn streaming_peaks_are_chunking_invariant(
        series in proptest::collection::vec(-10f64..10.0, 0..120),
        cuts in proptest::collection::vec(1usize..9, 1..12),
        prominence in 0.0f64..2.0,
    ) {
        let batch = signal::peak_stats(&series, prominence);
        let mut acc = signal::StreamingPeaks::new(prominence);
        let mut start = 0;
        for &width in &cuts {
            if start >= series.len() {
                break;
            }
            let end = (start + width).min(series.len());
            acc.extend(&series[start..end]);
            start = end;
        }
        if start < series.len() {
            acc.extend(&series[start..]);
        }
        let streamed = acc.finish();
        prop_assert_eq!(streamed.extrema, batch.extrema);
        prop_assert_eq!(streamed.peak_to_peak.to_bits(), batch.peak_to_peak.to_bits());
        prop_assert_eq!(streamed.mean_abs.to_bits(), batch.mean_abs.to_bits());
        prop_assert_eq!(streamed.rms.to_bits(), batch.rms.to_bits());
    }
}
