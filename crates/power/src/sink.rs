//! Composable sinks and sources for columnar power telemetry.
//!
//! The power-plane mirror of `rad_core::sink`: a [`PowerSink`] accepts
//! [`PowerBlock`]s (plus recording-boundary markers), a [`PowerSource`]
//! yields them, and the combinators compose the same way the trace
//! plane's do — [`rad_core::sink::Tee`] is reused directly (this module
//! implements [`PowerSink`] for it), while [`Chunked`], [`Filtered`],
//! and [`CountingPowerSink`] are power-specific because they buffer or
//! inspect f64 lanes rather than trace columns.
//!
//! The monitor drains synthesized recordings through a sink stack in
//! bounded chunks (4096 ticks by default, like the trace plane's
//! 4096-row batches), so a full campaign's power capture never holds
//! more than one chunk in flight between pipeline stages.

use rad_core::sink::{first_error, Tee};
use rad_core::{ProcedureKind, RadError, RunId};

use crate::block::{PowerBlock, PowerRow};

/// Default tick count per chunk used by monitor/export hand-off.
pub const DEFAULT_CHUNK_TICKS: usize = 4096;

/// Identity of one power recording flowing through a sink stack.
///
/// Mirrors the fields of the store's `PowerRecording`; sinks that
/// materialize datasets open a new recording on each
/// [`PowerSink::begin_recording`] call and append subsequent blocks to
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordingMeta {
    /// Procedure the recording belongs to (P1–P7).
    pub procedure: ProcedureKind,
    /// Run the recording belongs to.
    pub run_id: RunId,
    /// Free-form annotation (e.g. `"velocity=100mm/s"`).
    pub description: String,
}

/// A consumer of columnar power telemetry.
pub trait PowerSink {
    /// Accepts one block of ticks, appending to the open recording.
    fn accept(&mut self, block: &PowerBlock) -> Result<(), RadError>;

    /// Marks the start of a new recording. Buffering adapters flush
    /// pending ticks of the previous recording before forwarding, so
    /// recording boundaries never straddle a chunk.
    fn begin_recording(&mut self, meta: &RecordingMeta) -> Result<(), RadError> {
        let _ = meta;
        Ok(())
    }

    /// Pushes buffered ticks downstream.
    fn flush(&mut self) -> Result<(), RadError> {
        Ok(())
    }

    /// Flushes and finalizes the stream.
    fn finish(&mut self) -> Result<(), RadError> {
        self.flush()
    }
}

impl<S: PowerSink + ?Sized> PowerSink for &mut S {
    fn accept(&mut self, block: &PowerBlock) -> Result<(), RadError> {
        (**self).accept(block)
    }
    fn begin_recording(&mut self, meta: &RecordingMeta) -> Result<(), RadError> {
        (**self).begin_recording(meta)
    }
    fn flush(&mut self) -> Result<(), RadError> {
        (**self).flush()
    }
    fn finish(&mut self) -> Result<(), RadError> {
        (**self).finish()
    }
}

impl<S: PowerSink + ?Sized> PowerSink for Box<S> {
    fn accept(&mut self, block: &PowerBlock) -> Result<(), RadError> {
        (**self).accept(block)
    }
    fn begin_recording(&mut self, meta: &RecordingMeta) -> Result<(), RadError> {
        (**self).begin_recording(meta)
    }
    fn flush(&mut self) -> Result<(), RadError> {
        (**self).flush()
    }
    fn finish(&mut self) -> Result<(), RadError> {
        (**self).finish()
    }
}

/// A bare block accumulates everything it is fed (recording markers
/// are ignored).
impl PowerSink for PowerBlock {
    fn accept(&mut self, block: &PowerBlock) -> Result<(), RadError> {
        self.append(block);
        Ok(())
    }
}

/// A producer of columnar power telemetry.
pub trait PowerSource {
    /// The next block, or `None` when the source is exhausted.
    fn next_block(&mut self) -> Result<Option<PowerBlock>, RadError>;

    /// Drives the whole source into `sink`, finishing it.
    fn drain_into<S: PowerSink>(&mut self, sink: &mut S) -> Result<(), RadError>
    where
        Self: Sized,
    {
        while let Some(block) = self.next_block()? {
            sink.accept(&block)?;
        }
        sink.finish()
    }
}

/// Yields a borrowed block in fixed-size tick chunks (the power
/// counterpart of `SliceSource`).
#[derive(Debug)]
pub struct BlockSource<'a> {
    block: &'a PowerBlock,
    chunk: usize,
    cursor: usize,
}

impl<'a> BlockSource<'a> {
    /// Chunks `block` into `chunk`-tick blocks.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn new(block: &'a PowerBlock, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        BlockSource {
            block,
            chunk,
            cursor: 0,
        }
    }
}

impl PowerSource for BlockSource<'_> {
    fn next_block(&mut self) -> Result<Option<PowerBlock>, RadError> {
        if self.cursor >= self.block.len() {
            return Ok(None);
        }
        let end = (self.cursor + self.chunk).min(self.block.len());
        let mut out = PowerBlock::with_capacity(end - self.cursor);
        out.append_range(self.block, self.cursor, end);
        self.cursor = end;
        Ok(Some(out))
    }
}

impl<A: PowerSink, B: PowerSink> PowerSink for Tee<A, B> {
    fn accept(&mut self, block: &PowerBlock) -> Result<(), RadError> {
        let (a, b) = self.branches_mut();
        first_error(a.accept(block), b.accept(block))
    }
    fn begin_recording(&mut self, meta: &RecordingMeta) -> Result<(), RadError> {
        let (a, b) = self.branches_mut();
        first_error(a.begin_recording(meta), b.begin_recording(meta))
    }
    fn flush(&mut self) -> Result<(), RadError> {
        let (a, b) = self.branches_mut();
        first_error(a.flush(), b.flush())
    }
    fn finish(&mut self) -> Result<(), RadError> {
        let (a, b) = self.branches_mut();
        first_error(a.finish(), b.finish())
    }
}

/// Re-chunks the tick stream into blocks of a fixed tick count. See
/// [`PowerSinkExt::chunked`].
///
/// Upstream block boundaries disappear; recording boundaries do not —
/// [`PowerSink::begin_recording`] flushes the partial chunk first, so
/// a downstream dataset can attribute every chunk to one recording.
#[derive(Debug)]
pub struct Chunked<S> {
    inner: S,
    capacity: usize,
    buffer: PowerBlock,
}

impl<S> Chunked<S> {
    /// Ticks pre-allocated per chunk buffer, whatever the flush
    /// threshold — huge thresholds grow on demand instead.
    const MAX_PREALLOC_TICKS: usize = DEFAULT_CHUNK_TICKS;

    /// Buffers into chunks of `capacity` ticks before `inner`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(inner: S, capacity: usize) -> Self {
        assert!(capacity > 0, "chunk capacity must be positive");
        Chunked {
            inner,
            capacity,
            buffer: PowerBlock::with_capacity(capacity.min(Self::MAX_PREALLOC_TICKS)),
        }
    }

    /// Consumes the adapter, returning the inner sink. Buffered ticks
    /// are dropped; call [`PowerSink::flush`] first to keep them.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PowerSink> Chunked<S> {
    fn flush_buffer(&mut self) -> Result<(), RadError> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let result = self.inner.accept(&self.buffer);
        self.buffer.clear();
        result
    }
}

impl<S: PowerSink> PowerSink for Chunked<S> {
    fn accept(&mut self, block: &PowerBlock) -> Result<(), RadError> {
        let mut start = 0;
        while start < block.len() {
            let take = (self.capacity - self.buffer.len()).min(block.len() - start);
            self.buffer.append_range(block, start, start + take);
            start += take;
            if self.buffer.len() >= self.capacity {
                self.flush_buffer()?;
            }
        }
        Ok(())
    }
    fn begin_recording(&mut self, meta: &RecordingMeta) -> Result<(), RadError> {
        self.flush_buffer()?;
        self.inner.begin_recording(meta)
    }
    fn flush(&mut self) -> Result<(), RadError> {
        self.flush_buffer()?;
        self.inner.flush()
    }
    fn finish(&mut self) -> Result<(), RadError> {
        self.flush_buffer()?;
        self.inner.finish()
    }
}

/// Forwards only ticks matching a row predicate. See
/// [`PowerSinkExt::filtered`].
///
/// Used by the monitor's quiescent-storage policy: the paper stores
/// only a fraction of quiescent entries, so the drain stack drops
/// quiescent ticks row-wise before chunking.
#[derive(Debug)]
pub struct Filtered<S, F> {
    inner: S,
    predicate: F,
}

impl<S, F> Filtered<S, F> {
    /// Keeps ticks for which `predicate` returns `true`.
    pub fn new(inner: S, predicate: F) -> Self {
        Filtered { inner, predicate }
    }

    /// Consumes the adapter, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PowerSink, F: FnMut(&PowerRow<'_>) -> bool> PowerSink for Filtered<S, F> {
    fn accept(&mut self, block: &PowerBlock) -> Result<(), RadError> {
        let mut kept = PowerBlock::new();
        for row in block.iter() {
            if (self.predicate)(&row) {
                kept.push_row(&row);
            }
        }
        if kept.is_empty() {
            return Ok(());
        }
        self.inner.accept(&kept)
    }
    fn begin_recording(&mut self, meta: &RecordingMeta) -> Result<(), RadError> {
        self.inner.begin_recording(meta)
    }
    fn flush(&mut self) -> Result<(), RadError> {
        self.inner.flush()
    }
    fn finish(&mut self) -> Result<(), RadError> {
        self.inner.finish()
    }
}

/// Counts what flows through without storing it (bench/test probe).
#[derive(Debug, Default)]
pub struct CountingPowerSink {
    /// Blocks accepted.
    pub blocks: usize,
    /// Total ticks accepted.
    pub ticks: usize,
    /// Recording boundaries observed.
    pub recordings: usize,
    /// Largest single block seen, in ticks — the peak hand-off size.
    pub max_block_ticks: usize,
}

impl CountingPowerSink {
    /// A fresh counter.
    pub fn new() -> Self {
        CountingPowerSink::default()
    }
}

impl PowerSink for CountingPowerSink {
    fn accept(&mut self, block: &PowerBlock) -> Result<(), RadError> {
        self.blocks += 1;
        self.ticks += block.len();
        self.max_block_ticks = self.max_block_ticks.max(block.len());
        Ok(())
    }
    fn begin_recording(&mut self, _meta: &RecordingMeta) -> Result<(), RadError> {
        self.recordings += 1;
        Ok(())
    }
}

/// Combinator constructors for any [`PowerSink`].
pub trait PowerSinkExt: PowerSink + Sized {
    /// Duplicates the stream into `self` and `other` (first error
    /// wins, both branches always delivered).
    fn tee<B: PowerSink>(self, other: B) -> Tee<Self, B> {
        Tee::new(self, other)
    }

    /// Buffers into `capacity`-tick chunks before `self`.
    fn chunked(self, capacity: usize) -> Chunked<Self> {
        Chunked::new(self, capacity)
    }

    /// Keeps only ticks matching `predicate`.
    fn filtered<F: FnMut(&PowerRow<'_>) -> bool>(self, predicate: F) -> Filtered<Self, F> {
        Filtered::new(self, predicate)
    }
}

impl<S: PowerSink + Sized> PowerSinkExt for S {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::PowerSample;
    use crate::JOINTS;

    fn ticks(n: usize, base: f64) -> PowerBlock {
        let samples: Vec<PowerSample> = (0..n)
            .map(|i| {
                let mut s = PowerSample::quiescent(base + i as f64 * 0.040, [0.1; JOINTS]);
                s.current_actual[0] = base + i as f64;
                s
            })
            .collect();
        PowerBlock::from_samples(&samples)
    }

    fn meta(run: u32) -> RecordingMeta {
        RecordingMeta {
            procedure: ProcedureKind::AutomatedSolubilityN9Ur3e,
            run_id: RunId(run),
            description: format!("run {run}"),
        }
    }

    #[test]
    fn block_sink_accumulates() {
        let mut sink = PowerBlock::new();
        sink.accept(&ticks(3, 0.0)).unwrap();
        sink.accept(&ticks(2, 10.0)).unwrap();
        sink.finish().unwrap();
        assert_eq!(sink.len(), 5);
    }

    #[test]
    fn chunked_rechunks_and_respects_recording_boundaries() {
        let mut counter = CountingPowerSink::new();
        {
            let mut stack = Chunked::new(&mut counter, 4);
            stack.begin_recording(&meta(0)).unwrap();
            stack.accept(&ticks(6, 0.0)).unwrap();
            stack.accept(&ticks(3, 6.0)).unwrap();
            stack.begin_recording(&meta(1)).unwrap();
            stack.accept(&ticks(2, 0.0)).unwrap();
            stack.finish().unwrap();
        }
        // Recording 0: 9 ticks → chunks of 4, 4, then the boundary
        // flushes the trailing 1. Recording 1: one chunk of 2.
        assert_eq!(counter.recordings, 2);
        assert_eq!(counter.ticks, 11);
        assert_eq!(counter.blocks, 4);
        assert_eq!(counter.max_block_ticks, 4);
    }

    #[test]
    fn chunking_preserves_content_and_order() {
        let input = ticks(11, 0.0);
        let mut direct = PowerBlock::new();
        direct.accept(&input).unwrap();
        let mut chunked_out = PowerBlock::new();
        {
            let mut stack = Chunked::new(&mut chunked_out, 3);
            stack.accept(&input).unwrap();
            stack.finish().unwrap();
        }
        assert_eq!(chunked_out, direct);
    }

    #[test]
    fn block_source_drains_everything() {
        let input = ticks(10, 0.0);
        let mut out = PowerBlock::new();
        let mut counter = CountingPowerSink::new();
        {
            let mut tee = (&mut out).tee(&mut counter);
            BlockSource::new(&input, 4).drain_into(&mut tee).unwrap();
        }
        assert_eq!(out, input);
        assert_eq!(counter.blocks, 3);
        assert_eq!(counter.max_block_ticks, 4);
    }

    #[test]
    fn filtered_drops_rows() {
        let mut quiet = PowerSample::quiescent(0.0, [0.0; JOINTS]);
        quiet.current_actual[0] = 0.1;
        let mut busy = quiet.clone();
        busy.qd_actual[0] = 0.7;
        let block = PowerBlock::from_samples(&[quiet.clone(), busy.clone(), quiet.clone()]);
        let mut out = PowerBlock::new();
        {
            let mut stack = (&mut out).filtered(|r: &PowerRow<'_>| !r.is_quiescent());
            stack.accept(&block).unwrap();
            stack.finish().unwrap();
        }
        assert_eq!(out.to_samples(), vec![busy]);
    }

    #[test]
    fn tee_delivers_to_both_branches() {
        let mut a = PowerBlock::new();
        let mut b = CountingPowerSink::new();
        {
            let mut tee = (&mut a).tee(&mut b);
            tee.begin_recording(&meta(7)).unwrap();
            tee.accept(&ticks(5, 0.0)).unwrap();
            tee.finish().unwrap();
        }
        assert_eq!(a.len(), 5);
        assert_eq!(b.ticks, 5);
        assert_eq!(b.recordings, 1);
    }
}
