//! Columnar (struct-of-arrays) storage for power telemetry.
//!
//! [`PowerBlock`] is the power-plane counterpart of `rad_core`'s
//! `TraceBatch`: each of the 122 physical properties of a
//! [`PowerSample`] becomes one contiguous `Vec<f64>` lane, tick-major.
//! A correlation over a joint-current series then reads one dense lane
//! instead of gathering a field out of 976-byte rows, and synthesis
//! writes only the ~50 lanes that actually vary during a motion while
//! bulk-filling the constant ones.
//!
//! Lane order is pinned to [`PowerSample::to_row`] (declaration order),
//! so `block.lane(l)[i] == samples[i].to_row()[l]` — the CSV column
//! layout and the lane layout are the same thing. [`PowerRow`] gives a
//! zero-copy row view; [`PowerBlock::materialize`] and
//! [`PowerBlock::from_samples`] round-trip to the row representation.

use crate::sample::PowerSample;
use crate::JOINTS;

/// Base indices of each property group in the lane layout.
///
/// The layout is exactly [`PowerSample::to_row`] order: index `0` is
/// the timestamp, followed by twelve six-joint vectors, five
/// six-element TCP vectors, three three-element vectors, and ten
/// robot-level scalars. Vector groups expose their *base* index; lane
/// `base + j` holds component `j`.
pub mod lane {
    /// Seconds since the start of the recording.
    pub const TIMESTAMP: usize = 0;
    /// Target joint positions (rad), 6 lanes.
    pub const Q_TARGET: usize = 1;
    /// Actual joint positions (rad), 6 lanes.
    pub const Q_ACTUAL: usize = 7;
    /// Target joint velocities (rad/s), 6 lanes.
    pub const QD_TARGET: usize = 13;
    /// Actual joint velocities (rad/s), 6 lanes.
    pub const QD_ACTUAL: usize = 19;
    /// Target joint accelerations (rad/s²), 6 lanes.
    pub const QDD_TARGET: usize = 25;
    /// Actual joint accelerations (rad/s²), 6 lanes.
    pub const QDD_ACTUAL: usize = 31;
    /// Target joint currents (A), 6 lanes.
    pub const CURRENT_TARGET: usize = 37;
    /// Actual joint currents (A), 6 lanes — the §VI analysis signal.
    pub const CURRENT_ACTUAL: usize = 43;
    /// Joint moments (N·m), 6 lanes.
    pub const MOMENT_ACTUAL: usize = 49;
    /// Joint temperatures (°C), 6 lanes.
    pub const JOINT_TEMPERATURE: usize = 55;
    /// Joint bus voltages (V), 6 lanes.
    pub const JOINT_VOLTAGE: usize = 61;
    /// Joint control modes (vendor enum), 6 lanes.
    pub const JOINT_MODE: usize = 67;
    /// Target TCP pose, 6 lanes.
    pub const TCP_POSE_TARGET: usize = 73;
    /// Actual TCP pose, 6 lanes.
    pub const TCP_POSE_ACTUAL: usize = 79;
    /// Target TCP speed, 6 lanes.
    pub const TCP_SPEED_TARGET: usize = 85;
    /// Actual TCP speed, 6 lanes.
    pub const TCP_SPEED_ACTUAL: usize = 91;
    /// Generalized TCP force, 6 lanes.
    pub const TCP_FORCE: usize = 97;
    /// Tool accelerometer (m/s²), 3 lanes.
    pub const TOOL_ACCELEROMETER: usize = 103;
    /// Elbow position (m), 3 lanes.
    pub const ELBOW_POSITION: usize = 106;
    /// Elbow velocity (m/s), 3 lanes.
    pub const ELBOW_VELOCITY: usize = 109;
    /// Main robot supply voltage (V).
    pub const ROBOT_VOLTAGE: usize = 112;
    /// Total robot supply current (A).
    pub const ROBOT_CURRENT: usize = 113;
    /// Configured payload mass (kg).
    pub const PAYLOAD_MASS: usize = 114;
    /// Speed-scaling slider (0–1).
    pub const SPEED_SCALING: usize = 115;
    /// Digital input bits.
    pub const DIGITAL_INPUTS: usize = 116;
    /// Digital output bits.
    pub const DIGITAL_OUTPUTS: usize = 117;
    /// Safety status (vendor enum).
    pub const SAFETY_STATUS: usize = 118;
    /// Runtime state (vendor enum).
    pub const RUNTIME_STATE: usize = 119;
    /// Robot mode (vendor enum).
    pub const ROBOT_MODE: usize = 120;
    /// Tool output voltage (V).
    pub const TOOL_OUTPUT_VOLTAGE: usize = 121;

    /// Named scalar lanes and vector-group bases, for declarative
    /// configuration: `("robot_current", ROBOT_CURRENT)`, snake-case
    /// names matching the constants above.
    pub const NAMES: &[(&str, usize)] = &[
        ("timestamp", TIMESTAMP),
        ("q_target", Q_TARGET),
        ("q_actual", Q_ACTUAL),
        ("qd_target", QD_TARGET),
        ("qd_actual", QD_ACTUAL),
        ("qdd_target", QDD_TARGET),
        ("qdd_actual", QDD_ACTUAL),
        ("current_target", CURRENT_TARGET),
        ("current_actual", CURRENT_ACTUAL),
        ("moment_actual", MOMENT_ACTUAL),
        ("joint_temperature", JOINT_TEMPERATURE),
        ("joint_voltage", JOINT_VOLTAGE),
        ("joint_mode", JOINT_MODE),
        ("tcp_pose_target", TCP_POSE_TARGET),
        ("tcp_pose_actual", TCP_POSE_ACTUAL),
        ("tcp_speed_target", TCP_SPEED_TARGET),
        ("tcp_speed_actual", TCP_SPEED_ACTUAL),
        ("tcp_force", TCP_FORCE),
        ("tool_accelerometer", TOOL_ACCELEROMETER),
        ("elbow_position", ELBOW_POSITION),
        ("elbow_velocity", ELBOW_VELOCITY),
        ("robot_voltage", ROBOT_VOLTAGE),
        ("robot_current", ROBOT_CURRENT),
        ("payload_mass", PAYLOAD_MASS),
        ("speed_scaling", SPEED_SCALING),
        ("digital_inputs", DIGITAL_INPUTS),
        ("digital_outputs", DIGITAL_OUTPUTS),
        ("safety_status", SAFETY_STATUS),
        ("runtime_state", RUNTIME_STATE),
        ("robot_mode", ROBOT_MODE),
        ("tool_output_voltage", TOOL_OUTPUT_VOLTAGE),
    ];

    /// Resolves a snake-case lane name to its index (vector groups
    /// resolve to their base lane). `None` for unknown names.
    pub fn by_name(name: &str) -> Option<usize> {
        NAMES.iter().find(|(n, _)| *n == name).map(|&(_, idx)| idx)
    }
}

/// A columnar block of power-telemetry ticks.
///
/// # Examples
///
/// ```
/// use rad_power::{block::lane, PowerBlock, PowerSample};
///
/// let s = PowerSample::quiescent(0.25, [0.1; 6]);
/// let block = PowerBlock::from_samples(std::slice::from_ref(&s));
/// assert_eq!(block.len(), 1);
/// assert_eq!(block.lane(lane::TIMESTAMP), &[0.25]);
/// assert_eq!(block.materialize(0), s);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerBlock {
    /// One lane per property, all the same length, tick-major.
    lanes: Vec<Vec<f64>>,
}

impl Default for PowerBlock {
    fn default() -> Self {
        PowerBlock::new()
    }
}

impl PowerBlock {
    /// An empty block.
    pub fn new() -> Self {
        PowerBlock {
            lanes: vec![Vec::new(); PowerSample::FIELD_COUNT],
        }
    }

    /// An empty block with `ticks` of capacity pre-reserved per lane.
    pub fn with_capacity(ticks: usize) -> Self {
        PowerBlock {
            lanes: (0..PowerSample::FIELD_COUNT)
                .map(|_| Vec::with_capacity(ticks))
                .collect(),
        }
    }

    /// Number of ticks stored.
    pub fn len(&self) -> usize {
        self.lanes[lane::TIMESTAMP].len()
    }

    /// Whether the block holds no ticks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all ticks, keeping lane capacity.
    pub fn clear(&mut self) {
        for l in &mut self.lanes {
            l.clear();
        }
    }

    /// One property lane as a contiguous slice (zero-copy).
    ///
    /// # Panics
    ///
    /// Panics if `index >= PowerSample::FIELD_COUNT`.
    pub fn lane(&self, index: usize) -> &[f64] {
        &self.lanes[index]
    }

    /// The actual-current lane of one joint — the series analysed in
    /// §VI (Fig. 7a–7d).
    ///
    /// # Panics
    ///
    /// Panics if `joint >= 6`.
    pub fn current_lane(&self, joint: usize) -> &[f64] {
        assert!(joint < JOINTS, "joint index {joint} out of range");
        &self.lanes[lane::CURRENT_ACTUAL + joint]
    }

    /// Mutable lane access for in-crate columnar writers (synthesis
    /// pushes straight into the varying lanes, then bulk-fills the
    /// constant ones).
    pub(crate) fn lanes_mut(&mut self) -> &mut [Vec<f64>] {
        &mut self.lanes
    }

    /// Rebuilds a block from raw lanes — the decode half of a columnar
    /// serializer. Lane order matches [`PowerSample::to_row`] (the
    /// [`lane`] constants).
    ///
    /// # Errors
    ///
    /// Returns [`rad_core::RadError::Store`] unless exactly
    /// [`PowerSample::FIELD_COUNT`] lanes of equal length are given.
    pub fn from_lanes(lanes: Vec<Vec<f64>>) -> Result<Self, rad_core::RadError> {
        if lanes.len() != PowerSample::FIELD_COUNT {
            return Err(rad_core::RadError::Store(format!(
                "power block needs {} lanes, got {}",
                PowerSample::FIELD_COUNT,
                lanes.len()
            )));
        }
        let ticks = lanes[0].len();
        if let Some((i, l)) = lanes.iter().enumerate().find(|(_, l)| l.len() != ticks) {
            return Err(rad_core::RadError::Store(format!(
                "power lane {i} has {} ticks, expected {ticks}",
                l.len()
            )));
        }
        Ok(PowerBlock { lanes })
    }

    /// Appends one row-form sample, scattering its fields into the
    /// lanes.
    pub fn push_sample(&mut self, s: &PowerSample) {
        let mut it = self.lanes.iter_mut();
        let mut push = |v: f64| it.next().expect("lane count").push(v);
        push(s.timestamp);
        for arr in [
            &s.q_target,
            &s.q_actual,
            &s.qd_target,
            &s.qd_actual,
            &s.qdd_target,
            &s.qdd_actual,
            &s.current_target,
            &s.current_actual,
            &s.moment_actual,
            &s.joint_temperature,
            &s.joint_voltage,
            &s.joint_mode,
        ] {
            for &v in arr {
                push(v);
            }
        }
        for arr in [
            &s.tcp_pose_target,
            &s.tcp_pose_actual,
            &s.tcp_speed_target,
            &s.tcp_speed_actual,
            &s.tcp_force,
        ] {
            for &v in arr {
                push(v);
            }
        }
        for arr in [&s.tool_accelerometer, &s.elbow_position, &s.elbow_velocity] {
            for &v in arr {
                push(v);
            }
        }
        for v in [
            s.robot_voltage,
            s.robot_current,
            s.payload_mass,
            s.speed_scaling,
            s.digital_inputs,
            s.digital_outputs,
            s.safety_status,
            s.runtime_state,
            s.robot_mode,
            s.tool_output_voltage,
        ] {
            push(v);
        }
    }

    /// Appends one tick referenced by a [`PowerRow`] view.
    pub fn push_row(&mut self, row: &PowerRow<'_>) {
        for (dst, src) in self.lanes.iter_mut().zip(&row.block.lanes) {
            dst.push(src[row.index]);
        }
    }

    /// Appends all ticks of `other` (lane-wise `memcpy`).
    pub fn append(&mut self, other: &PowerBlock) {
        for (dst, src) in self.lanes.iter_mut().zip(&other.lanes) {
            dst.extend_from_slice(src);
        }
    }

    /// Appends the tick range `start..end` of `other`.
    ///
    /// # Panics
    ///
    /// Panics if `start..end` is out of bounds.
    pub fn append_range(&mut self, other: &PowerBlock, start: usize, end: usize) {
        for (dst, src) in self.lanes.iter_mut().zip(&other.lanes) {
            dst.extend_from_slice(&src[start..end]);
        }
    }

    /// Gathers tick `index` back into the row representation.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn materialize(&self, index: usize) -> PowerSample {
        assert!(index < self.len(), "tick index {index} out of range");
        let mut it = self.lanes.iter();
        let mut next = || it.next().expect("lane count")[index];
        let vec6 = |next: &mut dyn FnMut() -> f64| {
            let mut out = [0.0; 6];
            for v in &mut out {
                *v = next();
            }
            out
        };
        let vec3 = |next: &mut dyn FnMut() -> f64| {
            let mut out = [0.0; 3];
            for v in &mut out {
                *v = next();
            }
            out
        };
        PowerSample {
            timestamp: next(),
            q_target: vec6(&mut next),
            q_actual: vec6(&mut next),
            qd_target: vec6(&mut next),
            qd_actual: vec6(&mut next),
            qdd_target: vec6(&mut next),
            qdd_actual: vec6(&mut next),
            current_target: vec6(&mut next),
            current_actual: vec6(&mut next),
            moment_actual: vec6(&mut next),
            joint_temperature: vec6(&mut next),
            joint_voltage: vec6(&mut next),
            joint_mode: vec6(&mut next),
            tcp_pose_target: vec6(&mut next),
            tcp_pose_actual: vec6(&mut next),
            tcp_speed_target: vec6(&mut next),
            tcp_speed_actual: vec6(&mut next),
            tcp_force: vec6(&mut next),
            tool_accelerometer: vec3(&mut next),
            elbow_position: vec3(&mut next),
            elbow_velocity: vec3(&mut next),
            robot_voltage: next(),
            robot_current: next(),
            payload_mass: next(),
            speed_scaling: next(),
            digital_inputs: next(),
            digital_outputs: next(),
            safety_status: next(),
            runtime_state: next(),
            robot_mode: next(),
            tool_output_voltage: next(),
        }
    }

    /// Builds a block from row-form samples.
    pub fn from_samples(samples: &[PowerSample]) -> Self {
        let mut block = PowerBlock::with_capacity(samples.len());
        for s in samples {
            block.push_sample(s);
        }
        block
    }

    /// Materializes every tick back into row form.
    pub fn to_samples(&self) -> Vec<PowerSample> {
        (0..self.len()).map(|i| self.materialize(i)).collect()
    }

    /// Zero-copy view of tick `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn row(&self, index: usize) -> PowerRow<'_> {
        assert!(index < self.len(), "tick index {index} out of range");
        PowerRow { block: self, index }
    }

    /// Iterates over all ticks as zero-copy views.
    pub fn iter(&self) -> impl Iterator<Item = PowerRow<'_>> {
        (0..self.len()).map(move |index| PowerRow { block: self, index })
    }

    /// Approximate resident size in bytes (lane payloads only).
    pub fn approx_bytes(&self) -> usize {
        self.lanes.len() * self.len() * std::mem::size_of::<f64>()
    }
}

/// Zero-copy view of one tick of a [`PowerBlock`].
#[derive(Debug, Clone, Copy)]
pub struct PowerRow<'a> {
    block: &'a PowerBlock,
    index: usize,
}

impl<'a> PowerRow<'a> {
    /// One scalar property of this tick, by lane index.
    pub fn value(&self, lane: usize) -> f64 {
        self.block.lanes[lane][self.index]
    }

    /// Seconds since the start of the recording.
    pub fn timestamp(&self) -> f64 {
        self.value(lane::TIMESTAMP)
    }

    /// Actual current of one joint (A).
    ///
    /// # Panics
    ///
    /// Panics if `joint >= 6`.
    pub fn current_actual(&self, joint: usize) -> f64 {
        assert!(joint < JOINTS, "joint index {joint} out of range");
        self.value(lane::CURRENT_ACTUAL + joint)
    }

    /// Actual velocity of one joint (rad/s).
    ///
    /// # Panics
    ///
    /// Panics if `joint >= 6`.
    pub fn qd_actual(&self, joint: usize) -> f64 {
        assert!(joint < JOINTS, "joint index {joint} out of range");
        self.value(lane::QD_ACTUAL + joint)
    }

    /// Quiescence predicate, identical to
    /// [`PowerSample::is_quiescent`] but reading lanes in place.
    pub fn is_quiescent(&self) -> bool {
        (0..JOINTS).all(|j| self.qd_actual(j).abs() < 1e-3)
            && (0..JOINTS).all(|j| self.current_actual(j).abs() < 0.5)
    }

    /// Gathers this tick into an owned [`PowerSample`].
    pub fn to_sample(&self) -> PowerSample {
        self.block.materialize(self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn varied_sample(i: usize) -> PowerSample {
        let mut s = PowerSample::quiescent(i as f64 * 0.040, [0.1 * i as f64; JOINTS]);
        for j in 0..JOINTS {
            s.qd_actual[j] = 0.01 * (i + j) as f64;
            s.current_actual[j] = -1.5 + 0.25 * (i * JOINTS + j) as f64;
            s.moment_actual[j] = (i as f64).sin() + j as f64;
        }
        s.payload_mass = 0.5;
        s.tcp_force[3] = 7.25;
        s
    }

    #[test]
    fn lane_layout_matches_to_row() {
        let s = varied_sample(3);
        let block = PowerBlock::from_samples(std::slice::from_ref(&s));
        let row = s.to_row();
        assert_eq!(row.len(), PowerSample::FIELD_COUNT);
        for (l, &v) in row.iter().enumerate() {
            assert_eq!(block.lane(l)[0], v, "lane {l} disagrees with to_row");
        }
        // Spot-check the published base constants against named fields.
        assert_eq!(block.lane(lane::TIMESTAMP)[0], s.timestamp);
        assert_eq!(block.lane(lane::CURRENT_ACTUAL + 2)[0], s.current_actual[2]);
        assert_eq!(block.lane(lane::MOMENT_ACTUAL + 5)[0], s.moment_actual[5]);
        assert_eq!(block.lane(lane::TCP_FORCE + 3)[0], s.tcp_force[3]);
        assert_eq!(block.lane(lane::PAYLOAD_MASS)[0], s.payload_mass);
        assert_eq!(
            block.lane(lane::TOOL_OUTPUT_VOLTAGE)[0],
            s.tool_output_voltage
        );
    }

    #[test]
    fn round_trip_preserves_samples() {
        let samples: Vec<PowerSample> = (0..17).map(varied_sample).collect();
        let block = PowerBlock::from_samples(&samples);
        assert_eq!(block.len(), samples.len());
        assert_eq!(block.to_samples(), samples);
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(&block.materialize(i), s);
            assert_eq!(&block.row(i).to_sample(), s);
        }
    }

    #[test]
    fn row_view_agrees_with_sample_quiescence() {
        let quiet = PowerSample::quiescent(0.0, [0.2; JOINTS]);
        let busy = varied_sample(4);
        let block = PowerBlock::from_samples(&[quiet.clone(), busy.clone()]);
        assert_eq!(block.row(0).is_quiescent(), quiet.is_quiescent());
        assert_eq!(block.row(1).is_quiescent(), busy.is_quiescent());
        assert!(block.row(0).is_quiescent());
        assert!(!block.row(1).is_quiescent());
    }

    #[test]
    fn append_and_range_concatenate() {
        let a: Vec<PowerSample> = (0..5).map(varied_sample).collect();
        let b: Vec<PowerSample> = (5..9).map(varied_sample).collect();
        let mut block = PowerBlock::from_samples(&a);
        let tail = PowerBlock::from_samples(&b);
        block.append(&tail);
        let mut expected = a.clone();
        expected.extend(b.iter().cloned());
        assert_eq!(block.to_samples(), expected);

        let mut mid = PowerBlock::new();
        mid.append_range(&block, 2, 6);
        assert_eq!(mid.to_samples(), expected[2..6].to_vec());
    }

    #[test]
    fn push_row_copies_single_ticks() {
        let samples: Vec<PowerSample> = (0..6).map(varied_sample).collect();
        let block = PowerBlock::from_samples(&samples);
        let mut picked = PowerBlock::new();
        for row in block.iter().filter(|r| !r.is_quiescent()) {
            picked.push_row(&row);
        }
        let expected: Vec<PowerSample> = samples
            .iter()
            .filter(|s| !s.is_quiescent())
            .cloned()
            .collect();
        assert_eq!(picked.to_samples(), expected);
    }

    #[test]
    fn capacity_and_bytes_track_ticks() {
        let samples: Vec<PowerSample> = (0..8).map(varied_sample).collect();
        let mut block = PowerBlock::with_capacity(8);
        for s in &samples {
            block.push_sample(s);
        }
        assert_eq!(block.len(), 8);
        assert_eq!(block.approx_bytes(), 8 * PowerSample::FIELD_COUNT * 8);
        block.clear();
        assert!(block.is_empty());
        assert_eq!(block.approx_bytes(), 0);
    }
}
