//! First-order UR3e joint dynamics: torques and motor currents.
//!
//! The model keeps exactly the terms that generate the phenomena of
//! Fig. 7 and drops the rest:
//!
//! - **Gravity**: a planar two-link (upper arm + forearm) gravity model
//!   loads the shoulder-lift and elbow joints as a function of posture,
//!   plus the payload carried at the tool. This is why each trajectory
//!   has its own current *shape* and why payload shifts the level.
//! - **Inertia**: constant effective inertia per joint (plus payload at
//!   the tool radius) times commanded acceleration. This produces the
//!   accel/decel peaks whose amplitude grows with commanded velocity.
//! - **Friction**: viscous plus Coulomb terms proportional to joint
//!   velocity and its sign.
//!
//! Torque maps to current through per-joint torque constants; wrist
//! joints see mostly friction and their own small gravity load, which
//! matches the paper's observation that all six joints show correlated
//! but scaled profiles.

use crate::trajectory::TrajectoryPoint;
use crate::JOINTS;

/// Standard gravity (m/s²).
const G: f64 = 9.81;

/// Joint torques at one trajectory point, N·m.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JointTorques(pub [f64; JOINTS]);

/// Parameters of the UR3e dynamics model.
///
/// Defaults approximate the published UR3e mass/link data; they are
/// tunable so the ablation benches can switch individual terms off.
#[derive(Debug, Clone, PartialEq)]
pub struct Ur3eDynamics {
    /// Upper-arm length (m).
    pub upper_arm_m: f64,
    /// Forearm length (m).
    pub forearm_m: f64,
    /// Upper-arm mass (kg).
    pub upper_arm_kg: f64,
    /// Forearm mass (kg).
    pub forearm_kg: f64,
    /// Wrist assembly mass (kg), carried at the forearm tip.
    pub wrist_kg: f64,
    /// Effective rotor+link inertia per joint (kg·m²).
    pub inertia: [f64; JOINTS],
    /// Viscous friction coefficients (N·m·s/rad).
    pub viscous: [f64; JOINTS],
    /// Coulomb friction magnitudes (N·m).
    pub coulomb: [f64; JOINTS],
    /// Torque constants (N·m/A) per joint: shoulder joints have larger
    /// gearing than the wrists.
    pub torque_constant: [f64; JOINTS],
    /// Controller idle (electronics) current per joint (A).
    pub idle_current: [f64; JOINTS],
    /// Include the inertial term (ablation switch).
    pub inertial_term: bool,
    /// Include the friction terms (ablation switch).
    pub friction_term: bool,
}

impl Ur3eDynamics {
    /// The default UR3e-flavoured parameter set.
    pub fn new() -> Self {
        Ur3eDynamics {
            upper_arm_m: 0.244,
            forearm_m: 0.213,
            upper_arm_kg: 3.42,
            forearm_kg: 1.26,
            wrist_kg: 1.67,
            inertia: [0.030, 0.026, 0.018, 0.006, 0.006, 0.004],
            viscous: [0.18, 0.16, 0.12, 0.05, 0.05, 0.04],
            coulomb: [0.12, 0.10, 0.08, 0.03, 0.03, 0.02],
            torque_constant: [1.10, 1.10, 0.95, 0.45, 0.45, 0.40],
            idle_current: [0.12, 0.10, 0.08, 0.05, 0.05, 0.04],
            inertial_term: true,
            friction_term: true,
        }
    }

    /// Gravity torque vector at posture `q`, carrying `payload_kg` at
    /// the tool.
    pub fn gravity_torques(&self, q: &[f64; JOINTS], payload_kg: f64) -> JointTorques {
        let q1 = q[1]; // shoulder lift
        let q12 = q[1] + q[2]; // elbow absolute angle
        let l1 = self.upper_arm_m;
        let l2 = self.forearm_m;
        // Centres of mass at mid-link; wrist + payload at the forearm tip.
        let tip_mass = self.wrist_kg + payload_kg;
        let shoulder = G
            * (self.upper_arm_kg * (l1 / 2.0) * q1.cos()
                + self.forearm_kg * (l1 * q1.cos() + (l2 / 2.0) * q12.cos())
                + tip_mass * (l1 * q1.cos() + l2 * q12.cos()));
        let elbow = G * (self.forearm_kg * (l2 / 2.0) * q12.cos() + tip_mass * l2 * q12.cos());
        // Wrist-1 carries the tool pitch: a small posture-dependent load.
        let wrist1 = G * payload_kg * 0.05 * (q12 + q[3]).cos();
        JointTorques([0.0, shoulder, elbow, wrist1, 0.0, 0.0])
    }

    /// Full torque vector at a trajectory point.
    #[allow(clippy::needless_range_loop)] // parallel per-joint arrays
    pub fn torques(&self, point: &TrajectoryPoint, payload_kg: f64) -> JointTorques {
        let mut tau = self.gravity_torques(&point.q, payload_kg).0;
        let tool_radius = self.upper_arm_m + self.forearm_m;
        for i in 0..JOINTS {
            if self.inertial_term {
                let payload_inertia = if i < 3 {
                    payload_kg * tool_radius * tool_radius
                } else {
                    0.0
                };
                tau[i] += (self.inertia[i] + payload_inertia) * point.qdd[i];
            }
            if self.friction_term {
                tau[i] +=
                    self.viscous[i] * point.qd[i] + self.coulomb[i] * signum_dead(point.qd[i]);
            }
        }
        JointTorques(tau)
    }

    /// Motor currents (A) at a trajectory point. Noise-free; callers add
    /// measurement noise.
    pub fn currents(&self, point: &TrajectoryPoint, payload_kg: f64) -> [f64; JOINTS] {
        let tau = self.torques(point, payload_kg);
        self.currents_from_torques(&tau)
    }

    /// Motor currents for an already-computed torque vector — the fused
    /// form used by columnar synthesis, which evaluates [`Self::torques`]
    /// once per tick and derives both the torque and current lanes from
    /// it (bitwise identical to calling [`Self::currents`]).
    pub fn currents_from_torques(&self, tau: &JointTorques) -> [f64; JOINTS] {
        let mut out = [0.0; JOINTS];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = tau.0[i] / self.torque_constant[i] + self.idle_current[i];
        }
        out
    }
}

impl Default for Ur3eDynamics {
    fn default() -> Self {
        Ur3eDynamics::new()
    }
}

/// `signum` with a small dead band so resting joints draw no Coulomb
/// current.
fn signum_dead(v: f64) -> f64 {
    if v > 1e-6 {
        1.0
    } else if v < -1e-6 {
        -1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resting_point(q: [f64; JOINTS]) -> TrajectoryPoint {
        TrajectoryPoint {
            t: 0.0,
            q,
            qd: [0.0; JOINTS],
            qdd: [0.0; JOINTS],
        }
    }

    #[test]
    fn horizontal_arm_maximizes_shoulder_gravity() {
        let dyn_ = Ur3eDynamics::new();
        let horizontal = dyn_.gravity_torques(&[0.0; JOINTS], 0.0).0[1];
        let vertical = dyn_
            .gravity_torques(
                &[0.0, -std::f64::consts::FRAC_PI_2, 0.0, 0.0, 0.0, 0.0],
                0.0,
            )
            .0[1];
        assert!(horizontal.abs() > vertical.abs() * 5.0);
    }

    #[test]
    fn payload_increases_shoulder_and_elbow_torque() {
        let dyn_ = Ur3eDynamics::new();
        let q = [0.0, -0.6, 0.8, -1.0, 0.0, 0.0];
        let empty = dyn_.gravity_torques(&q, 0.0).0;
        let loaded = dyn_.gravity_torques(&q, 1.0).0;
        assert!(loaded[1].abs() > empty[1].abs());
        assert!(loaded[2].abs() > empty[2].abs());
    }

    #[test]
    fn resting_current_is_gravity_plus_idle() {
        let dyn_ = Ur3eDynamics::new();
        let p = resting_point([0.0, -1.2, 0.9, -1.0, -1.5, 0.0]);
        let i = dyn_.currents(&p, 0.0);
        // Base and wrist-2/3 carry no gravity at rest: idle only.
        assert!((i[0] - dyn_.idle_current[0]).abs() < 1e-9);
        assert!((i[4] - dyn_.idle_current[4]).abs() < 1e-9);
        // Shoulder carries the arm.
        assert!(i[1].abs() > 0.5);
    }

    #[test]
    fn acceleration_adds_inertial_current() {
        let dyn_ = Ur3eDynamics::new();
        let q = [0.0, -1.2, 0.9, -1.0, -1.5, 0.0];
        let rest = dyn_.currents(&resting_point(q), 0.0);
        let mut accel = resting_point(q);
        accel.qdd[0] = 2.0;
        let moving = dyn_.currents(&accel, 0.0);
        assert!(moving[0] > rest[0]);
    }

    #[test]
    fn friction_current_flips_with_direction() {
        let dyn_ = Ur3eDynamics::new();
        let q = [0.0; JOINTS];
        let mut fwd = resting_point(q);
        fwd.qd[0] = 1.0;
        let mut back = resting_point(q);
        back.qd[0] = -1.0;
        let i_fwd = dyn_.currents(&fwd, 0.0)[0];
        let i_back = dyn_.currents(&back, 0.0)[0];
        let idle = dyn_.idle_current[0];
        assert!(i_fwd > idle);
        assert!(i_back < idle);
        assert!(
            (i_fwd - idle + (i_back - idle)).abs() < 1e-9,
            "symmetric about idle"
        );
    }

    #[test]
    fn ablation_switches_remove_terms() {
        let mut dyn_ = Ur3eDynamics::new();
        let q = [0.0; JOINTS];
        let mut p = resting_point(q);
        p.qd[0] = 1.0;
        p.qdd[0] = 1.0;
        let full = dyn_.currents(&p, 0.0)[0];
        dyn_.inertial_term = false;
        let no_inertia = dyn_.currents(&p, 0.0)[0];
        dyn_.friction_term = false;
        let neither = dyn_.currents(&p, 0.0)[0];
        assert!(full > no_inertia);
        assert!(no_inertia > neither);
        assert!((neither - dyn_.idle_current[0]).abs() < 1e-9);
    }

    #[test]
    fn dead_band_suppresses_coulomb_at_rest() {
        assert_eq!(signum_dead(0.0), 0.0);
        assert_eq!(signum_dead(1e-9), 0.0);
        assert_eq!(signum_dead(0.1), 1.0);
        assert_eq!(signum_dead(-0.1), -1.0);
    }
}
