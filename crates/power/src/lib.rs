//! UR3e power-telemetry simulation.
//!
//! RAD's power dataset comes from the UR3e's real-time monitoring API:
//! 122 physical properties sampled every 40 ms (25 Hz). This crate is
//! the substitute for that hardware: a first-order dynamics model of
//! the six-joint arm that turns trajectories into joint-current
//! profiles with the properties §VI demonstrates —
//!
//! - each trajectory has a *unique, repeatable* current signature
//!   (Fig. 7a/7b),
//! - amplitude grows with commanded velocity while duration shrinks
//!   (Fig. 7c),
//! - heavier payloads draw more current (Fig. 7d).
//!
//! # Examples
//!
//! ```
//! use rad_power::{TrajectorySegment, Ur3e};
//!
//! let arm = Ur3e::new();
//! let home = [0.0, -1.2, 1.0, -1.4, -1.5, 0.0];
//! let target = [0.8, -0.9, 0.7, -1.2, -1.5, 0.3];
//! let segment = TrajectorySegment::joint_move(home, target, 1.0);
//! let profile = arm.current_profile(&[segment], 0.0, 42);
//! assert!(profile.len() > 10, "a ~1 rad move spans many 40 ms ticks");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arm;
pub mod block;
pub mod dynamics;
pub mod kinematics;
pub mod sample;
pub mod signal;
pub mod sink;
pub mod trajectory;

pub use arm::{CurrentProfile, ProfileRequest, Ur3e};
pub use block::{PowerBlock, PowerRow};
pub use dynamics::{JointTorques, Ur3eDynamics};
pub use kinematics::{Elbow, Ur3eKinematics};
pub use sample::PowerSample;
pub use signal::{Moments, PeakStats, StreamingMoments, StreamingPeaks};
pub use sink::{
    BlockSource, Chunked, CountingPowerSink, Filtered, PowerSink, PowerSinkExt, PowerSource,
    RecordingMeta, DEFAULT_CHUNK_TICKS,
};
pub use trajectory::{TrajectoryPoint, TrajectorySegment};

/// The monitoring period of the UR3e real-time API: 40 ms (25 Hz).
pub const TICK_SECONDS: f64 = 0.040;

/// Number of joints on the UR3e.
pub const JOINTS: usize = 6;
