//! Planar-chain kinematics for the UR3e: forward and inverse.
//!
//! The deck-level model used across the workspace treats the UR3e as a
//! base-pan joint plus a two-link planar chain (upper arm + forearm);
//! the wrist joints orient the tool without moving it. This module
//! provides that model's forward map and its closed-form inverse, so
//! Cartesian commands (`move_to_location`) can be converted into joint
//! trajectories and power-profiled exactly like `move_joints`.

use crate::JOINTS;

/// Kinematic parameters of the simulated UR3e.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ur3eKinematics {
    /// Base position on the deck, millimetres.
    pub base: [f64; 3],
    /// Shoulder height above the base plane, millimetres.
    pub shoulder_height: f64,
    /// Upper-arm length, millimetres.
    pub upper_arm: f64,
    /// Forearm length, millimetres.
    pub forearm: f64,
}

/// Elbow configuration selected by the inverse solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Elbow {
    /// Elbow above the shoulder-wrist chord.
    Up,
    /// Elbow below the chord.
    Down,
}

impl Default for Ur3eKinematics {
    fn default() -> Self {
        // Matches the deck model in `rad-devices` (UR3e base at
        // x = 900 mm; UR3e link lengths).
        Ur3eKinematics {
            base: [900.0, 0.0, 0.0],
            shoulder_height: 152.0,
            upper_arm: 244.0,
            forearm: 213.0,
        }
    }
}

impl Ur3eKinematics {
    /// Tool position (mm) for a joint vector; wrist joints ignored.
    pub fn forward(&self, q: &[f64; JOINTS]) -> [f64; 3] {
        let (q0, q1, q2) = (q[0], q[1], q[2]);
        let reach = self.upper_arm * q1.cos() + self.forearm * (q1 + q2).cos();
        let height =
            self.shoulder_height - self.upper_arm * q1.sin() - self.forearm * (q1 + q2).sin();
        [
            self.base[0] + reach * q0.cos(),
            self.base[1] + reach * q0.sin(),
            self.base[2] + height,
        ]
    }

    /// Whether a Cartesian target is inside the reachable annulus.
    pub fn reachable(&self, target: [f64; 3]) -> bool {
        self.ik_planar(target).is_some()
    }

    /// Closed-form inverse kinematics: a joint vector whose
    /// [`Ur3eKinematics::forward`] image is `target`, with the chosen
    /// elbow configuration. Wrist joints are set to the home values.
    /// Returns `None` for unreachable targets.
    pub fn inverse(&self, target: [f64; 3], elbow: Elbow) -> Option<[f64; JOINTS]> {
        let (q0, a1, a2) = self.ik_planar(target)?;
        let (q1, q2) = match elbow {
            Elbow::Up => (a1, a2),
            Elbow::Down => {
                // Mirror solution: flip the elbow angle and re-aim the
                // shoulder.
                let (r, u) = self.planar_target(target);
                let a2m = -a2;
                let a1m = f64::atan2(u, r)
                    - f64::atan2(
                        self.forearm * a2m.sin(),
                        self.upper_arm + self.forearm * a2m.cos(),
                    );
                (a1m, a2m)
            }
        };
        // Convert from the planar (lift-positive-up) frame to the
        // joint convention where negative shoulder lifts the arm.
        Some([q0, -q1, -q2, -1.57, -1.57, 0.0])
    }

    /// Planar coordinates of a target: in-plane radius and height
    /// relative to the shoulder.
    fn planar_target(&self, target: [f64; 3]) -> (f64, f64) {
        let dx = target[0] - self.base[0];
        let dy = target[1] - self.base[1];
        let r = (dx * dx + dy * dy).sqrt();
        let u = target[2] - self.base[2] - self.shoulder_height;
        (r, u)
    }

    /// Solves the planar two-link problem in the lift-positive-up
    /// frame: returns `(q0, a1, a2)` with elbow-up convention.
    fn ik_planar(&self, target: [f64; 3]) -> Option<(f64, f64, f64)> {
        let dx = target[0] - self.base[0];
        let dy = target[1] - self.base[1];
        let q0 = f64::atan2(dy, dx);
        let (r, u) = self.planar_target(target);
        let (l1, l2) = (self.upper_arm, self.forearm);
        let d = (r * r + u * u - l1 * l1 - l2 * l2) / (2.0 * l1 * l2);
        if !(-1.0..=1.0).contains(&d) {
            return None;
        }
        let a2 = d.acos(); // elbow-up branch
        let a1 = f64::atan2(u, r) - f64::atan2(l2 * a2.sin(), l1 + l2 * a2.cos());
        Some((q0, a1, a2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kin() -> Ur3eKinematics {
        Ur3eKinematics::default()
    }

    fn dist(a: [f64; 3], b: [f64; 3]) -> f64 {
        ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
    }

    #[test]
    fn forward_of_straight_up_pose() {
        let k = kin();
        let q = [0.0, -std::f64::consts::FRAC_PI_2, 0.0, 0.0, 0.0, 0.0];
        let tool = k.forward(&q);
        assert!((tool[0] - 900.0).abs() < 1e-9);
        assert!((tool[2] - (152.0 + 244.0 + 213.0)).abs() < 1e-9);
    }

    #[test]
    fn inverse_round_trips_through_forward() {
        let k = kin();
        for target in [
            [1100.0, 50.0, 300.0],
            [950.0, -120.0, 200.0],
            [800.0, 200.0, 400.0],
            [1050.0, 0.0, 152.0],
        ] {
            for elbow in [Elbow::Up, Elbow::Down] {
                let q = k
                    .inverse(target, elbow)
                    .unwrap_or_else(|| panic!("{target:?}"));
                let image = k.forward(&q);
                assert!(
                    dist(image, target) < 1e-6,
                    "{target:?} {elbow:?} -> {image:?}"
                );
            }
        }
    }

    #[test]
    fn elbow_branches_differ_but_agree_on_the_tool() {
        let k = kin();
        let target = [1000.0, 100.0, 250.0];
        let up = k.inverse(target, Elbow::Up).unwrap();
        let down = k.inverse(target, Elbow::Down).unwrap();
        assert!((up[2] - down[2]).abs() > 1e-3, "distinct elbow angles");
        assert!(dist(k.forward(&up), k.forward(&down)) < 1e-6);
    }

    #[test]
    fn unreachable_targets_return_none() {
        let k = kin();
        // Farther than the fully-stretched arm.
        assert!(k.inverse([2000.0, 0.0, 200.0], Elbow::Up).is_none());
        // Inside the annulus hole (closer than |l1 - l2| from the
        // shoulder).
        assert!(k.inverse([900.0, 0.0, 152.0 + 10.0], Elbow::Up).is_none());
        assert!(!k.reachable([9999.0, 0.0, 0.0]));
    }

    #[test]
    fn inverse_matches_forward_of_named_poses() {
        // Every named deck pose must invert back to a pose with the
        // same tool position (not necessarily the same joints: the
        // named poses vary the wrist).
        let k = kin();
        for i in 0..6 {
            let pose = crate::Ur3e::named_pose(i);
            let tool = k.forward(&pose);
            let q = k
                .inverse(tool, Elbow::Up)
                .or_else(|| k.inverse(tool, Elbow::Down))
                .unwrap_or_else(|| panic!("pose L{i} tool {tool:?} not invertible"));
            assert!(dist(k.forward(&q), tool) < 1e-6, "pose L{i}");
        }
    }
}
