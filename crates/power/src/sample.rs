//! The 122-property telemetry record of the UR3e real-time API.
//!
//! §IV: "The power dataset contains 122 physical properties that are
//! collected every 40 ms, using the UR3e's real-time monitoring API."
//! [`PowerSample`] reproduces that record shape: per-joint kinematic,
//! electrical, and thermal state plus tool-centre-point (TCP) and
//! robot-level scalars. [`PowerSample::FIELD_COUNT`] is pinned to 122
//! by a unit test.

use serde::{Deserialize, Serialize};

use crate::JOINTS;

/// One 40 ms telemetry tick from the (simulated) UR3e RTDE interface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Seconds since the start of the recording.
    pub timestamp: f64,
    /// Target joint positions (rad).
    pub q_target: [f64; JOINTS],
    /// Actual joint positions (rad).
    pub q_actual: [f64; JOINTS],
    /// Target joint velocities (rad/s).
    pub qd_target: [f64; JOINTS],
    /// Actual joint velocities (rad/s).
    pub qd_actual: [f64; JOINTS],
    /// Target joint accelerations (rad/s²).
    pub qdd_target: [f64; JOINTS],
    /// Actual joint accelerations (rad/s²), estimated by the controller.
    pub qdd_actual: [f64; JOINTS],
    /// Target joint currents (A).
    pub current_target: [f64; JOINTS],
    /// Actual joint currents (A) — the signal analysed in §VI.
    pub current_actual: [f64; JOINTS],
    /// Joint moments (torques), N·m.
    pub moment_actual: [f64; JOINTS],
    /// Joint temperatures (°C).
    pub joint_temperature: [f64; JOINTS],
    /// Joint bus voltages (V).
    pub joint_voltage: [f64; JOINTS],
    /// Joint control modes (vendor enum, 255 = normal).
    pub joint_mode: [f64; JOINTS],
    /// Target TCP pose (x, y, z, rx, ry, rz) in metres/radians.
    pub tcp_pose_target: [f64; 6],
    /// Actual TCP pose.
    pub tcp_pose_actual: [f64; 6],
    /// Target TCP speed (m/s, rad/s).
    pub tcp_speed_target: [f64; 6],
    /// Actual TCP speed.
    pub tcp_speed_actual: [f64; 6],
    /// Generalized TCP force (N, N·m).
    pub tcp_force: [f64; 6],
    /// Tool accelerometer reading (m/s²).
    pub tool_accelerometer: [f64; 3],
    /// Elbow position in the base frame (m).
    pub elbow_position: [f64; 3],
    /// Elbow velocity in the base frame (m/s).
    pub elbow_velocity: [f64; 3],
    /// Main robot supply voltage (V).
    pub robot_voltage: f64,
    /// Total robot supply current (A).
    pub robot_current: f64,
    /// Configured payload mass (kg).
    pub payload_mass: f64,
    /// Speed-scaling slider (0–1).
    pub speed_scaling: f64,
    /// Digital input bits.
    pub digital_inputs: f64,
    /// Digital output bits.
    pub digital_outputs: f64,
    /// Safety status (vendor enum).
    pub safety_status: f64,
    /// Runtime state (vendor enum).
    pub runtime_state: f64,
    /// Robot mode (vendor enum).
    pub robot_mode: f64,
    /// Tool output voltage (V).
    pub tool_output_voltage: f64,
}

impl PowerSample {
    /// Number of scalar physical properties carried by each record.
    ///
    /// Matches the paper's "122 physical properties": 1 timestamp +
    /// 12 six-joint vectors (72) + 5 six-element TCP vectors (30) +
    /// 3 three-element vectors (9) + 10 scalars = 122. The unit test
    /// derives the count from the struct itself.
    pub const FIELD_COUNT: usize = 122;

    /// A quiescent sample at `timestamp` with the arm parked at `q`.
    pub fn quiescent(timestamp: f64, q: [f64; JOINTS]) -> Self {
        PowerSample {
            timestamp,
            q_target: q,
            q_actual: q,
            qd_target: [0.0; JOINTS],
            qd_actual: [0.0; JOINTS],
            qdd_target: [0.0; JOINTS],
            qdd_actual: [0.0; JOINTS],
            current_target: [0.0; JOINTS],
            current_actual: [0.0; JOINTS],
            moment_actual: [0.0; JOINTS],
            joint_temperature: [28.0; JOINTS],
            joint_voltage: [48.0; JOINTS],
            joint_mode: [255.0; JOINTS],
            tcp_pose_target: [0.0; 6],
            tcp_pose_actual: [0.0; 6],
            tcp_speed_target: [0.0; 6],
            tcp_speed_actual: [0.0; 6],
            tcp_force: [0.0; 6],
            tool_accelerometer: [0.0, 0.0, -9.81],
            elbow_position: [0.0; 3],
            elbow_velocity: [0.0; 3],
            robot_voltage: 48.0,
            robot_current: 0.5,
            payload_mass: 0.0,
            speed_scaling: 1.0,
            digital_inputs: 0.0,
            digital_outputs: 0.0,
            safety_status: 1.0,
            runtime_state: 1.0,
            robot_mode: 7.0,
            tool_output_voltage: 0.0,
        }
    }

    /// Flattens the record into its 122 scalar properties, in
    /// declaration order. This is the row format of the CSV export.
    pub fn to_row(&self) -> Vec<f64> {
        let mut row = Vec::with_capacity(Self::FIELD_COUNT);
        row.push(self.timestamp);
        for arr in [
            &self.q_target,
            &self.q_actual,
            &self.qd_target,
            &self.qd_actual,
            &self.qdd_target,
            &self.qdd_actual,
            &self.current_target,
            &self.current_actual,
            &self.moment_actual,
            &self.joint_temperature,
            &self.joint_voltage,
            &self.joint_mode,
        ] {
            row.extend_from_slice(&arr[..]);
        }
        for arr in [
            &self.tcp_pose_target,
            &self.tcp_pose_actual,
            &self.tcp_speed_target,
            &self.tcp_speed_actual,
            &self.tcp_force,
        ] {
            row.extend_from_slice(&arr[..]);
        }
        for arr in [
            &self.tool_accelerometer,
            &self.elbow_position,
            &self.elbow_velocity,
        ] {
            row.extend_from_slice(&arr[..]);
        }
        row.extend_from_slice(&[
            self.robot_voltage,
            self.robot_current,
            self.payload_mass,
            self.speed_scaling,
            self.digital_inputs,
            self.digital_outputs,
            self.safety_status,
            self.runtime_state,
            self.robot_mode,
            self.tool_output_voltage,
        ]);
        row
    }

    /// Column names matching [`PowerSample::to_row`].
    pub fn column_names() -> Vec<String> {
        let mut names = vec!["timestamp".to_owned()];
        let joint_vectors = [
            "q_target",
            "q_actual",
            "qd_target",
            "qd_actual",
            "qdd_target",
            "qdd_actual",
            "current_target",
            "current_actual",
            "moment_actual",
            "joint_temperature",
            "joint_voltage",
            "joint_mode",
        ];
        for v in joint_vectors {
            for j in 0..JOINTS {
                names.push(format!("{v}_{j}"));
            }
        }
        for v in [
            "tcp_pose_target",
            "tcp_pose_actual",
            "tcp_speed_target",
            "tcp_speed_actual",
            "tcp_force",
        ] {
            for j in 0..6 {
                names.push(format!("{v}_{j}"));
            }
        }
        for v in ["tool_accelerometer", "elbow_position", "elbow_velocity"] {
            for j in 0..3 {
                names.push(format!("{v}_{j}"));
            }
        }
        for v in [
            "robot_voltage",
            "robot_current",
            "payload_mass",
            "speed_scaling",
            "digital_inputs",
            "digital_outputs",
            "safety_status",
            "runtime_state",
            "robot_mode",
            "tool_output_voltage",
        ] {
            names.push(v.to_owned());
        }
        names
    }

    /// Whether this tick belongs to a quiescent period (no joint moving,
    /// negligible current above idle). §IV: RAD stores only a fraction
    /// of quiescent entries.
    pub fn is_quiescent(&self) -> bool {
        self.qd_actual.iter().all(|v| v.abs() < 1e-3)
            && self.current_actual.iter().all(|c| c.abs() < 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_carries_exactly_122_properties() {
        let s = PowerSample::quiescent(0.0, [0.0; JOINTS]);
        assert_eq!(s.to_row().len(), PowerSample::FIELD_COUNT);
        assert_eq!(PowerSample::column_names().len(), PowerSample::FIELD_COUNT);
        assert_eq!(PowerSample::FIELD_COUNT, 122);
    }

    #[test]
    fn column_names_are_unique() {
        let names = PowerSample::column_names();
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn quiescent_sample_is_quiescent() {
        let s = PowerSample::quiescent(1.0, [0.3; JOINTS]);
        assert!(s.is_quiescent());
    }

    #[test]
    fn moving_sample_is_not_quiescent() {
        let mut s = PowerSample::quiescent(1.0, [0.3; JOINTS]);
        s.qd_actual[2] = 0.5;
        assert!(!s.is_quiescent());
    }

    #[test]
    fn serde_round_trip() {
        let s = PowerSample::quiescent(2.5, [0.1; JOINTS]);
        let json = serde_json::to_string(&s).unwrap();
        let back: PowerSample = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn row_starts_with_timestamp() {
        let s = PowerSample::quiescent(3.25, [0.0; JOINTS]);
        assert_eq!(s.to_row()[0], 3.25);
    }
}
