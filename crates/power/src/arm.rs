//! The assembled UR3e power model: trajectories → telemetry.
//!
//! [`Ur3e`] drives the trapezoidal [`TrajectorySegment`] planner through
//! the [`Ur3eDynamics`] torque/current model and emits 25 Hz telemetry
//! — the simulated counterpart of RATracer's power monitor (Fig. 3,
//! bottom). Synthesis is columnar: each tick writes only the ~50
//! [`PowerBlock`] lanes that vary during a motion (kinematics,
//! torques, currents, noise), evaluates the dynamics once per tick
//! (deriving both the torque and current lanes from the same torque
//! vector), and bulk-fills the constant lanes afterwards. The
//! row-oriented loop is kept as [`Ur3e::current_profile_rows`] — the
//! bench baseline and golden oracle; the columnar path is bitwise
//! identical to it.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::block::{lane, PowerBlock};
use crate::dynamics::Ur3eDynamics;
use crate::sample::PowerSample;
use crate::trajectory::TrajectorySegment;
use crate::{JOINTS, TICK_SECONDS};

/// Measurement noise applied to actual currents (A, uniform half-width).
const CURRENT_NOISE_A: f64 = 0.03;
/// Joint-position encoder noise (rad, uniform half-width).
const POSITION_NOISE_RAD: f64 = 2e-4;

/// Minimum synthesis ticks per worker before
/// [`Ur3e::current_profiles_par`] fans out. Columnar synthesis runs at
/// roughly 100–200 ns/tick, so 8192 ticks is ~1–2 ms of work per
/// thread — an order of magnitude above scoped-thread spawn/join cost.
const MIN_SYNTH_TICKS_PER_THREAD: usize = 8192;

/// The simulated UR3e power plant.
///
/// # Examples
///
/// ```
/// use rad_power::{Ur3e, TrajectorySegment};
///
/// let arm = Ur3e::new();
/// let seg = TrajectorySegment::joint_move(
///     Ur3e::named_pose(0),
///     Ur3e::named_pose(1),
///     0.8,
/// );
/// let profile = arm.current_profile(&[seg], 0.5, 1);
/// // Same seed, same trajectory: bitwise-identical telemetry.
/// let again = arm.current_profile(&[TrajectorySegment::joint_move(
///     Ur3e::named_pose(0),
///     Ur3e::named_pose(1),
///     0.8,
/// )], 0.5, 1);
/// assert_eq!(profile.joint_current(1), again.joint_current(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ur3e {
    dynamics: Ur3eDynamics,
}

impl Ur3e {
    /// A UR3e with the default dynamics parameters.
    pub fn new() -> Self {
        Ur3e {
            dynamics: Ur3eDynamics::new(),
        }
    }

    /// A UR3e with custom dynamics (used by the ablation benches).
    pub fn with_dynamics(dynamics: Ur3eDynamics) -> Self {
        Ur3e { dynamics }
    }

    /// The dynamics parameters in use.
    pub fn dynamics(&self) -> &Ur3eDynamics {
        &self.dynamics
    }

    /// The six named deck poses L0–L5 used by the P2 solubility
    /// procedure (Fig. 7a moves the arm L0→L1→…→L5). Each pose is a
    /// distinct joint vector, so each leg has a distinct current
    /// signature.
    ///
    /// # Panics
    ///
    /// Panics if `index > 5`.
    pub fn named_pose(index: usize) -> [f64; JOINTS] {
        const POSES: [[f64; JOINTS]; 6] = [
            // L0: home above the storage rack
            [0.00, -1.30, 1.10, -1.37, -1.57, 0.00],
            // L1: deep reach down into the rack, elbow folded
            [0.15, -0.55, 1.85, -2.07, -1.57, 0.15],
            // L2: high lift toward the Quantos, elbow extended
            [1.10, -1.60, 0.60, -1.37, -1.57, 1.10],
            // L3: into the Quantos doorway
            [1.35, -0.70, 1.15, -2.00, -1.57, 1.35],
            // L4: tucked clear of the door
            [0.90, -2.00, 2.10, -0.92, -1.57, 0.90],
            // L5: back toward home, arm outstretched
            [0.40, -1.10, 0.45, -1.37, -1.57, 0.40],
        ];
        POSES[index]
    }

    /// Ticks a profile for `segments` will contain (matches
    /// `sample_at`'s `ceil + 1` per segment).
    fn profile_ticks(segments: &[TrajectorySegment]) -> usize {
        segments
            .iter()
            .map(|s| (s.duration() / TICK_SECONDS).ceil() as usize + 1)
            .sum()
    }

    /// Simulates the telemetry stream for a sequence of moves executed
    /// back-to-back while carrying `payload_kg`, with measurement noise
    /// derived from `seed`.
    ///
    /// Columnar synthesis: per tick, the dynamics are evaluated once
    /// and scattered into the varying lanes; the ~70 lanes that
    /// `PowerSample::quiescent` holds constant during a motion are
    /// bulk-filled afterwards. Bitwise identical to
    /// [`Ur3e::current_profile_rows`].
    pub fn current_profile(
        &self,
        segments: &[TrajectorySegment],
        payload_kg: f64,
        seed: u64,
    ) -> CurrentProfile {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut block = PowerBlock::with_capacity(Self::profile_ticks(segments));
        let mut t_offset = 0.0;
        for segment in segments {
            let points = segment.sample_at(TICK_SECONDS);
            // Tick-major pass for everything RNG- or dynamics-ordered:
            // the dynamics are evaluated once per tick (the row loop
            // evaluates them twice), and the noise draws interleave
            // q/current per joint exactly like the row-oriented
            // reference loop — the RNG stream must stay aligned for
            // bit-identity. Torque, ideal-current, and noise values
            // go straight into their final lanes (25 write streams);
            // the purely kinematic lanes are filled lane-major below,
            // where each is one sequential extend over the points.
            let lanes = block.lanes_mut();
            for point in &points {
                let tau = self.dynamics.torques(point, payload_kg);
                let ideal = self.dynamics.currents_from_torques(&tau);
                lanes[lane::TIMESTAMP].push(t_offset + point.t);
                for j in 0..JOINTS {
                    lanes[lane::CURRENT_TARGET + j].push(ideal[j]);
                    lanes[lane::MOMENT_ACTUAL + j].push(tau.0[j]);
                }
                for j in 0..JOINTS {
                    lanes[lane::Q_ACTUAL + j]
                        .push(point.q[j] + rng.gen_range(-POSITION_NOISE_RAD..POSITION_NOISE_RAD));
                    lanes[lane::CURRENT_ACTUAL + j]
                        .push(ideal[j] + rng.gen_range(-CURRENT_NOISE_A..CURRENT_NOISE_A));
                }
            }
            for j in 0..JOINTS {
                lanes[lane::Q_TARGET + j].extend(points.iter().map(|p| p.q[j]));
                lanes[lane::QD_TARGET + j].extend(points.iter().map(|p| p.qd[j]));
                lanes[lane::QD_ACTUAL + j].extend(points.iter().map(|p| p.qd[j]));
                lanes[lane::QDD_TARGET + j].extend(points.iter().map(|p| p.qdd[j]));
                lanes[lane::QDD_ACTUAL + j].extend(points.iter().map(|p| p.qdd[j]));
            }
            t_offset += segment.duration();
        }
        fill_constant_motion_lanes(&mut block, payload_kg);
        CurrentProfile { block }
    }

    /// The original row-oriented synthesis loop, kept verbatim as the
    /// bench baseline and the golden oracle for the columnar
    /// [`Ur3e::current_profile`] (which must match it bitwise).
    #[allow(clippy::needless_range_loop)] // parallel per-joint arrays
    pub fn current_profile_rows(
        &self,
        segments: &[TrajectorySegment],
        payload_kg: f64,
        seed: u64,
    ) -> Vec<PowerSample> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut samples = Vec::new();
        let mut t_offset = 0.0;
        for segment in segments {
            let points = segment.sample_at(TICK_SECONDS);
            for point in &points {
                let ideal = self.dynamics.currents(point, payload_kg);
                let torques = self.dynamics.torques(point, payload_kg).0;
                let mut sample = PowerSample::quiescent(t_offset + point.t, point.q);
                sample.q_target = point.q;
                sample.qd_target = point.qd;
                sample.qd_actual = point.qd;
                sample.qdd_target = point.qdd;
                sample.qdd_actual = point.qdd;
                sample.current_target = ideal;
                sample.moment_actual = torques;
                sample.payload_mass = payload_kg;
                for j in 0..JOINTS {
                    sample.q_actual[j] =
                        point.q[j] + rng.gen_range(-POSITION_NOISE_RAD..POSITION_NOISE_RAD);
                    sample.current_actual[j] =
                        ideal[j] + rng.gen_range(-CURRENT_NOISE_A..CURRENT_NOISE_A);
                }
                samples.push(sample);
            }
            t_offset += segment.duration();
        }
        samples
    }

    /// Simulates `ticks` of quiescent telemetry with the arm parked at
    /// `pose` (used to model the paper's quiescent-period storage
    /// policy).
    pub fn quiescent_profile(
        &self,
        pose: [f64; JOINTS],
        ticks: usize,
        seed: u64,
    ) -> CurrentProfile {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut block = PowerBlock::with_capacity(ticks);
        {
            let lanes = block.lanes_mut();
            for i in 0..ticks {
                lanes[lane::TIMESTAMP].push(i as f64 * TICK_SECONDS);
                for j in 0..JOINTS {
                    lanes[lane::CURRENT_ACTUAL + j].push(
                        self.dynamics.idle_current[j]
                            + rng.gen_range(-CURRENT_NOISE_A..CURRENT_NOISE_A),
                    );
                }
            }
            for j in 0..JOINTS {
                lanes[lane::Q_TARGET + j].resize(ticks, pose[j]);
                lanes[lane::Q_ACTUAL + j].resize(ticks, pose[j]);
                lanes[lane::QD_TARGET + j].resize(ticks, 0.0);
                lanes[lane::QD_ACTUAL + j].resize(ticks, 0.0);
                lanes[lane::QDD_TARGET + j].resize(ticks, 0.0);
                lanes[lane::QDD_ACTUAL + j].resize(ticks, 0.0);
                lanes[lane::CURRENT_TARGET + j].resize(ticks, 0.0);
                lanes[lane::MOMENT_ACTUAL + j].resize(ticks, 0.0);
            }
        }
        fill_constant_motion_lanes(&mut block, 0.0);
        CurrentProfile { block }
    }

    /// The original row-oriented quiescent loop, kept as the golden
    /// oracle for the columnar [`Ur3e::quiescent_profile`].
    pub fn quiescent_profile_rows(
        &self,
        pose: [f64; JOINTS],
        ticks: usize,
        seed: u64,
    ) -> Vec<PowerSample> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..ticks)
            .map(|i| {
                let mut s = PowerSample::quiescent(i as f64 * TICK_SECONDS, pose);
                for j in 0..JOINTS {
                    s.current_actual[j] = self.dynamics.idle_current[j]
                        + rng.gen_range(-CURRENT_NOISE_A..CURRENT_NOISE_A);
                }
                s
            })
            .collect()
    }

    /// Synthesizes many independent profiles, fanning out over scoped
    /// threads when the per-worker tick count clears the measured
    /// break-even threshold (sequential otherwise — see
    /// `rad_core::par`).
    ///
    /// Each request carries its own noise seed, so every profile is a
    /// pure function of its request; workers take contiguous request
    /// chunks and results are joined in request order, making the
    /// output bit-identical to the sequential loop regardless of
    /// scheduling.
    pub fn current_profiles_par(&self, requests: &[ProfileRequest]) -> Vec<CurrentProfile> {
        let total_ticks: usize = requests
            .iter()
            .map(|r| Self::profile_ticks(&r.segments))
            .sum();
        if !rad_core::par::should_fan_out(requests.len(), total_ticks, MIN_SYNTH_TICKS_PER_THREAD) {
            return requests
                .iter()
                .map(|r| self.current_profile(&r.segments, r.payload_kg, r.seed))
                .collect();
        }
        let workers = rad_core::par::max_workers().min(requests.len());
        let chunk = requests.len().div_ceil(workers);
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = requests
                .chunks(chunk)
                .map(|reqs| {
                    s.spawn(move || {
                        reqs.iter()
                            .map(|r| self.current_profile(&r.segments, r.payload_kg, r.seed))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("synthesis worker panicked"))
                .collect()
        })
    }
}

/// One synthesis request for [`Ur3e::current_profiles_par`].
#[derive(Debug, Clone)]
pub struct ProfileRequest {
    /// Moves executed back-to-back.
    pub segments: Vec<TrajectorySegment>,
    /// Payload carried at the tool (kg).
    pub payload_kg: f64,
    /// Noise seed for this profile.
    pub seed: u64,
}

/// Bulk-fills the lanes that [`PowerSample::quiescent`] holds constant
/// during a motion, out to the block's tick count. Values mirror the
/// `quiescent` constructor (the row path's starting point), so the
/// columnar result stays bitwise identical to the row path.
fn fill_constant_motion_lanes(block: &mut PowerBlock, payload_kg: f64) {
    let ticks = block.len();
    let lanes = block.lanes_mut();
    let mut fill = |l: usize, v: f64| lanes[l].resize(ticks, v);
    for j in 0..JOINTS {
        fill(lane::JOINT_TEMPERATURE + j, 28.0);
        fill(lane::JOINT_VOLTAGE + j, 48.0);
        fill(lane::JOINT_MODE + j, 255.0);
    }
    // All five TCP vectors and both elbow vectors are zero.
    for l in lane::TCP_POSE_TARGET..lane::TOOL_ACCELEROMETER {
        fill(l, 0.0);
    }
    fill(lane::TOOL_ACCELEROMETER, 0.0);
    fill(lane::TOOL_ACCELEROMETER + 1, 0.0);
    fill(lane::TOOL_ACCELEROMETER + 2, -9.81);
    for l in lane::ELBOW_POSITION..lane::ROBOT_VOLTAGE {
        fill(l, 0.0);
    }
    fill(lane::ROBOT_VOLTAGE, 48.0);
    fill(lane::ROBOT_CURRENT, 0.5);
    fill(lane::PAYLOAD_MASS, payload_kg);
    fill(lane::SPEED_SCALING, 1.0);
    fill(lane::DIGITAL_INPUTS, 0.0);
    fill(lane::DIGITAL_OUTPUTS, 0.0);
    fill(lane::SAFETY_STATUS, 1.0);
    fill(lane::RUNTIME_STATE, 1.0);
    fill(lane::ROBOT_MODE, 7.0);
    fill(lane::TOOL_OUTPUT_VOLTAGE, 0.0);
}

/// A recorded 25 Hz telemetry stream, stored columnar.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CurrentProfile {
    block: PowerBlock,
}

impl CurrentProfile {
    /// Wraps an existing row-form sample stream.
    pub fn from_samples(samples: Vec<PowerSample>) -> Self {
        CurrentProfile {
            block: PowerBlock::from_samples(&samples),
        }
    }

    /// Wraps an existing columnar block.
    pub fn from_block(block: PowerBlock) -> Self {
        CurrentProfile { block }
    }

    /// The underlying columnar block.
    pub fn block(&self) -> &PowerBlock {
        &self.block
    }

    /// Consumes the profile, returning its block.
    pub fn into_block(self) -> PowerBlock {
        self.block
    }

    /// Appends raw ticks without timestamp shifting (sink-built
    /// datasets accumulate chunks of one recording this way; contrast
    /// [`CurrentProfile::extend`]).
    pub fn append_block(&mut self, block: &PowerBlock) {
        self.block.append(block);
    }

    /// Materializes every tick into row form.
    pub fn to_samples(&self) -> Vec<PowerSample> {
        self.block.to_samples()
    }

    /// Consumes the profile, materializing its samples.
    pub fn into_samples(self) -> Vec<PowerSample> {
        self.block.to_samples()
    }

    /// Number of 40 ms ticks recorded.
    pub fn len(&self) -> usize {
        self.block.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.block.is_empty()
    }

    /// Total recorded duration in seconds.
    pub fn duration(&self) -> f64 {
        self.block.len() as f64 * TICK_SECONDS
    }

    /// The actual-current lane of one joint, zero-copy.
    ///
    /// # Panics
    ///
    /// Panics if `joint >= 6`.
    pub fn current_lane(&self, joint: usize) -> &[f64] {
        self.block.current_lane(joint)
    }

    /// The actual-current time series of one joint (owned; see
    /// [`CurrentProfile::current_lane`] for the zero-copy form).
    ///
    /// # Panics
    ///
    /// Panics if `joint >= 6`.
    pub fn joint_current(&self, joint: usize) -> Vec<f64> {
        self.block.current_lane(joint).to_vec()
    }

    /// Appends another profile, shifting its timestamps to follow this
    /// one.
    pub fn extend(&mut self, other: &CurrentProfile) {
        let offset = self.duration();
        let start = self.block.len();
        self.block.append(&other.block);
        for t in &mut self.block.lanes_mut()[lane::TIMESTAMP][start..] {
            *t += offset;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal;

    fn leg(from: usize, to: usize, v: f64) -> TrajectorySegment {
        TrajectorySegment::joint_move(Ur3e::named_pose(from), Ur3e::named_pose(to), v)
    }

    #[test]
    fn profile_ticks_match_duration() {
        let arm = Ur3e::new();
        let seg = leg(0, 1, 1.0);
        let expected_ticks = (seg.duration() / TICK_SECONDS).ceil() as usize + 1;
        let profile = arm.current_profile(&[seg], 0.0, 0);
        assert_eq!(profile.len(), expected_ticks);
    }

    #[test]
    fn columnar_synthesis_matches_row_oracle_bitwise() {
        let arm = Ur3e::new();
        for (payload, seed) in [(0.0, 0), (0.5, 7), (1.0, 42)] {
            let segments = [leg(0, 1, 1.0), leg(1, 2, 0.6)];
            let columnar = arm.current_profile(&segments, payload, seed);
            let rows = arm.current_profile_rows(&segments, payload, seed);
            assert_eq!(columnar.block(), &PowerBlock::from_samples(&rows));
        }
    }

    #[test]
    fn columnar_quiescent_matches_row_oracle_bitwise() {
        let arm = Ur3e::new();
        let columnar = arm.quiescent_profile(Ur3e::named_pose(3), 57, 11);
        let rows = arm.quiescent_profile_rows(Ur3e::named_pose(3), 57, 11);
        assert_eq!(columnar.block(), &PowerBlock::from_samples(&rows));
    }

    #[test]
    fn parallel_synthesis_is_bit_identical_to_sequential() {
        let arm = Ur3e::new();
        let requests: Vec<ProfileRequest> = (0..6)
            .map(|i| ProfileRequest {
                segments: vec![leg(i % 5, i % 5 + 1, 0.8)],
                payload_kg: 0.1 * i as f64,
                seed: 1000 + i as u64,
            })
            .collect();
        let sequential: Vec<CurrentProfile> = requests
            .iter()
            .map(|r| arm.current_profile(&r.segments, r.payload_kg, r.seed))
            .collect();
        let parallel = arm.current_profiles_par(&requests);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn same_seed_is_reproducible_different_seed_is_not() {
        let arm = Ur3e::new();
        let a = arm
            .current_profile(&[leg(0, 1, 1.0)], 0.0, 5)
            .joint_current(1);
        let b = arm
            .current_profile(&[leg(0, 1, 1.0)], 0.0, 5)
            .joint_current(1);
        let c = arm
            .current_profile(&[leg(0, 1, 1.0)], 0.0, 6)
            .joint_current(1);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn legs_are_identifiable_by_their_signatures() {
        // Fig. 7a: each L_i -> L_{i+1} move has its own current shape,
        // identical across iterations. The operational claim is that a
        // rerun of a leg matches itself better than it matches any
        // other leg.
        let arm = Ur3e::new();
        let reference: Vec<Vec<f64>> = (0..5)
            .map(|i| {
                arm.current_profile(&[leg(i, i + 1, 1.0)], 0.0, 9)
                    .joint_current(1)
            })
            .collect();
        let rerun: Vec<Vec<f64>> = (0..5)
            .map(|i| {
                arm.current_profile(&[leg(i, i + 1, 1.0)], 0.0, 77)
                    .joint_current(1)
            })
            .collect();
        for (i, run) in rerun.iter().enumerate() {
            let own = signal::shape_correlation(run, &reference[i]).unwrap();
            for (j, other) in reference.iter().enumerate() {
                if i != j {
                    let cross = signal::shape_correlation(run, other).unwrap();
                    assert!(
                        own > cross,
                        "leg {i}: self-correlation {own} not above cross-correlation {cross} with leg {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn same_leg_is_repeatable_across_noise_seeds() {
        // Fig. 7b: the same trajectory correlates > 0.97 across runs.
        let arm = Ur3e::new();
        let a = arm
            .current_profile(&[leg(2, 3, 1.0)], 0.0, 1)
            .joint_current(1);
        let b = arm
            .current_profile(&[leg(2, 3, 1.0)], 0.0, 2)
            .joint_current(1);
        let r = signal::pearson(&a, &b).unwrap();
        assert!(r > 0.97, "repeatability correlation {r}");
    }

    #[test]
    fn heavier_payload_draws_more_current() {
        // Fig. 7d.
        let arm = Ur3e::new();
        let light = arm
            .current_profile(&[leg(0, 2, 0.8)], 0.020, 3)
            .joint_current(1);
        let heavy = arm
            .current_profile(&[leg(0, 2, 0.8)], 1.000, 3)
            .joint_current(1);
        assert!(signal::mean_abs(&heavy) > signal::mean_abs(&light));
    }

    #[test]
    fn faster_moves_are_shorter_with_larger_swings() {
        // Fig. 7c: amplitude grows with velocity, duration shrinks; the
        // base joint (no gravity) shows the friction/inertia scaling.
        let arm = Ur3e::new();
        let slow = arm.current_profile(&[leg(0, 2, 0.4)], 0.0, 4);
        let fast = arm.current_profile(&[leg(0, 2, 1.0)], 0.0, 4);
        assert!(fast.len() < slow.len());
        let slow_amp = signal::peak_to_peak(&slow.joint_current(0));
        let fast_amp = signal::peak_to_peak(&fast.joint_current(0));
        assert!(fast_amp > slow_amp, "fast {fast_amp} vs slow {slow_amp}");
    }

    #[test]
    fn quiescent_profile_is_quiescent() {
        let arm = Ur3e::new();
        let p = arm.quiescent_profile(Ur3e::named_pose(0), 100, 0);
        assert_eq!(p.len(), 100);
        assert!(p.block().iter().all(|r| r.is_quiescent()));
    }

    #[test]
    fn extend_shifts_timestamps() {
        let arm = Ur3e::new();
        let mut a = arm.quiescent_profile(Ur3e::named_pose(0), 10, 0);
        let b = arm.quiescent_profile(Ur3e::named_pose(0), 10, 1);
        a.extend(&b);
        assert_eq!(a.len(), 20);
        let ts = a.block().lane(lane::TIMESTAMP);
        for w in ts.windows(2) {
            assert!(w[1] > w[0], "timestamps strictly increase");
        }
    }

    #[test]
    fn multi_segment_profile_concatenates() {
        let arm = Ur3e::new();
        let two = arm.current_profile(&[leg(0, 1, 1.0), leg(1, 2, 1.0)], 0.0, 7);
        let one = arm.current_profile(&[leg(0, 1, 1.0)], 0.0, 7);
        assert!(two.len() > one.len());
        assert!(two.duration() > one.duration());
    }
}
