//! The assembled UR3e power model: trajectories → telemetry.
//!
//! [`Ur3e`] drives the trapezoidal [`TrajectorySegment`] planner through
//! the [`Ur3eDynamics`] torque/current model and emits 25 Hz
//! [`PowerSample`] streams — the simulated counterpart of RATracer's
//! power monitor (Fig. 3, bottom).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::dynamics::Ur3eDynamics;
use crate::sample::PowerSample;
use crate::trajectory::TrajectorySegment;
use crate::{JOINTS, TICK_SECONDS};

/// Measurement noise applied to actual currents (A, uniform half-width).
const CURRENT_NOISE_A: f64 = 0.03;
/// Joint-position encoder noise (rad, uniform half-width).
const POSITION_NOISE_RAD: f64 = 2e-4;

/// The simulated UR3e power plant.
///
/// # Examples
///
/// ```
/// use rad_power::{Ur3e, TrajectorySegment};
///
/// let arm = Ur3e::new();
/// let seg = TrajectorySegment::joint_move(
///     Ur3e::named_pose(0),
///     Ur3e::named_pose(1),
///     0.8,
/// );
/// let profile = arm.current_profile(&[seg], 0.5, 1);
/// // Same seed, same trajectory: bitwise-identical telemetry.
/// let again = arm.current_profile(&[TrajectorySegment::joint_move(
///     Ur3e::named_pose(0),
///     Ur3e::named_pose(1),
///     0.8,
/// )], 0.5, 1);
/// assert_eq!(profile.joint_current(1), again.joint_current(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ur3e {
    dynamics: Ur3eDynamics,
}

impl Ur3e {
    /// A UR3e with the default dynamics parameters.
    pub fn new() -> Self {
        Ur3e {
            dynamics: Ur3eDynamics::new(),
        }
    }

    /// A UR3e with custom dynamics (used by the ablation benches).
    pub fn with_dynamics(dynamics: Ur3eDynamics) -> Self {
        Ur3e { dynamics }
    }

    /// The dynamics parameters in use.
    pub fn dynamics(&self) -> &Ur3eDynamics {
        &self.dynamics
    }

    /// The six named deck poses L0–L5 used by the P2 solubility
    /// procedure (Fig. 7a moves the arm L0→L1→…→L5). Each pose is a
    /// distinct joint vector, so each leg has a distinct current
    /// signature.
    ///
    /// # Panics
    ///
    /// Panics if `index > 5`.
    pub fn named_pose(index: usize) -> [f64; JOINTS] {
        const POSES: [[f64; JOINTS]; 6] = [
            // L0: home above the storage rack
            [0.00, -1.30, 1.10, -1.37, -1.57, 0.00],
            // L1: deep reach down into the rack, elbow folded
            [0.15, -0.55, 1.85, -2.07, -1.57, 0.15],
            // L2: high lift toward the Quantos, elbow extended
            [1.10, -1.60, 0.60, -1.37, -1.57, 1.10],
            // L3: into the Quantos doorway
            [1.35, -0.70, 1.15, -2.00, -1.57, 1.35],
            // L4: tucked clear of the door
            [0.90, -2.00, 2.10, -0.92, -1.57, 0.90],
            // L5: back toward home, arm outstretched
            [0.40, -1.10, 0.45, -1.37, -1.57, 0.40],
        ];
        POSES[index]
    }

    /// Simulates the telemetry stream for a sequence of moves executed
    /// back-to-back while carrying `payload_kg`, with measurement noise
    /// derived from `seed`.
    #[allow(clippy::needless_range_loop)] // parallel per-joint arrays
    pub fn current_profile(
        &self,
        segments: &[TrajectorySegment],
        payload_kg: f64,
        seed: u64,
    ) -> CurrentProfile {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut samples = Vec::new();
        let mut t_offset = 0.0;
        for segment in segments {
            let points = segment.sample_at(TICK_SECONDS);
            for point in &points {
                let ideal = self.dynamics.currents(point, payload_kg);
                let torques = self.dynamics.torques(point, payload_kg).0;
                let mut sample = PowerSample::quiescent(t_offset + point.t, point.q);
                sample.q_target = point.q;
                sample.qd_target = point.qd;
                sample.qd_actual = point.qd;
                sample.qdd_target = point.qdd;
                sample.qdd_actual = point.qdd;
                sample.current_target = ideal;
                sample.moment_actual = torques;
                sample.payload_mass = payload_kg;
                for j in 0..JOINTS {
                    sample.q_actual[j] =
                        point.q[j] + rng.gen_range(-POSITION_NOISE_RAD..POSITION_NOISE_RAD);
                    sample.current_actual[j] =
                        ideal[j] + rng.gen_range(-CURRENT_NOISE_A..CURRENT_NOISE_A);
                }
                samples.push(sample);
            }
            t_offset += segment.duration();
        }
        CurrentProfile { samples }
    }

    /// Simulates `ticks` of quiescent telemetry with the arm parked at
    /// `pose` (used to model the paper's quiescent-period storage
    /// policy).
    pub fn quiescent_profile(
        &self,
        pose: [f64; JOINTS],
        ticks: usize,
        seed: u64,
    ) -> CurrentProfile {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let samples = (0..ticks)
            .map(|i| {
                let mut s = PowerSample::quiescent(i as f64 * TICK_SECONDS, pose);
                for j in 0..JOINTS {
                    s.current_actual[j] = self.dynamics.idle_current[j]
                        + rng.gen_range(-CURRENT_NOISE_A..CURRENT_NOISE_A);
                }
                s
            })
            .collect();
        CurrentProfile { samples }
    }
}

/// A recorded 25 Hz telemetry stream.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CurrentProfile {
    samples: Vec<PowerSample>,
}

impl CurrentProfile {
    /// Wraps an existing sample stream.
    pub fn from_samples(samples: Vec<PowerSample>) -> Self {
        CurrentProfile { samples }
    }

    /// The underlying samples.
    pub fn samples(&self) -> &[PowerSample] {
        &self.samples
    }

    /// Consumes the profile, returning its samples.
    pub fn into_samples(self) -> Vec<PowerSample> {
        self.samples
    }

    /// Number of 40 ms ticks recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total recorded duration in seconds.
    pub fn duration(&self) -> f64 {
        self.samples.len() as f64 * TICK_SECONDS
    }

    /// The actual-current time series of one joint.
    ///
    /// # Panics
    ///
    /// Panics if `joint >= 6`.
    pub fn joint_current(&self, joint: usize) -> Vec<f64> {
        assert!(joint < JOINTS, "joint index {joint} out of range");
        self.samples
            .iter()
            .map(|s| s.current_actual[joint])
            .collect()
    }

    /// Appends another profile, shifting its timestamps to follow this
    /// one.
    pub fn extend(&mut self, other: &CurrentProfile) {
        let offset = self.duration();
        for s in other.samples() {
            let mut s = s.clone();
            s.timestamp += offset;
            self.samples.push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal;

    fn leg(from: usize, to: usize, v: f64) -> TrajectorySegment {
        TrajectorySegment::joint_move(Ur3e::named_pose(from), Ur3e::named_pose(to), v)
    }

    #[test]
    fn profile_ticks_match_duration() {
        let arm = Ur3e::new();
        let seg = leg(0, 1, 1.0);
        let expected_ticks = (seg.duration() / TICK_SECONDS).ceil() as usize + 1;
        let profile = arm.current_profile(&[seg], 0.0, 0);
        assert_eq!(profile.len(), expected_ticks);
    }

    #[test]
    fn same_seed_is_reproducible_different_seed_is_not() {
        let arm = Ur3e::new();
        let a = arm
            .current_profile(&[leg(0, 1, 1.0)], 0.0, 5)
            .joint_current(1);
        let b = arm
            .current_profile(&[leg(0, 1, 1.0)], 0.0, 5)
            .joint_current(1);
        let c = arm
            .current_profile(&[leg(0, 1, 1.0)], 0.0, 6)
            .joint_current(1);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn legs_are_identifiable_by_their_signatures() {
        // Fig. 7a: each L_i -> L_{i+1} move has its own current shape,
        // identical across iterations. The operational claim is that a
        // rerun of a leg matches itself better than it matches any
        // other leg.
        let arm = Ur3e::new();
        let reference: Vec<Vec<f64>> = (0..5)
            .map(|i| {
                arm.current_profile(&[leg(i, i + 1, 1.0)], 0.0, 9)
                    .joint_current(1)
            })
            .collect();
        let rerun: Vec<Vec<f64>> = (0..5)
            .map(|i| {
                arm.current_profile(&[leg(i, i + 1, 1.0)], 0.0, 77)
                    .joint_current(1)
            })
            .collect();
        for (i, run) in rerun.iter().enumerate() {
            let own = signal::shape_correlation(run, &reference[i]).unwrap();
            for (j, other) in reference.iter().enumerate() {
                if i != j {
                    let cross = signal::shape_correlation(run, other).unwrap();
                    assert!(
                        own > cross,
                        "leg {i}: self-correlation {own} not above cross-correlation {cross} with leg {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn same_leg_is_repeatable_across_noise_seeds() {
        // Fig. 7b: the same trajectory correlates > 0.97 across runs.
        let arm = Ur3e::new();
        let a = arm
            .current_profile(&[leg(2, 3, 1.0)], 0.0, 1)
            .joint_current(1);
        let b = arm
            .current_profile(&[leg(2, 3, 1.0)], 0.0, 2)
            .joint_current(1);
        let r = signal::pearson(&a, &b).unwrap();
        assert!(r > 0.97, "repeatability correlation {r}");
    }

    #[test]
    fn heavier_payload_draws_more_current() {
        // Fig. 7d.
        let arm = Ur3e::new();
        let light = arm
            .current_profile(&[leg(0, 2, 0.8)], 0.020, 3)
            .joint_current(1);
        let heavy = arm
            .current_profile(&[leg(0, 2, 0.8)], 1.000, 3)
            .joint_current(1);
        assert!(signal::mean_abs(&heavy) > signal::mean_abs(&light));
    }

    #[test]
    fn faster_moves_are_shorter_with_larger_swings() {
        // Fig. 7c: amplitude grows with velocity, duration shrinks; the
        // base joint (no gravity) shows the friction/inertia scaling.
        let arm = Ur3e::new();
        let slow = arm.current_profile(&[leg(0, 2, 0.4)], 0.0, 4);
        let fast = arm.current_profile(&[leg(0, 2, 1.0)], 0.0, 4);
        assert!(fast.len() < slow.len());
        let slow_amp = signal::peak_to_peak(&slow.joint_current(0));
        let fast_amp = signal::peak_to_peak(&fast.joint_current(0));
        assert!(fast_amp > slow_amp, "fast {fast_amp} vs slow {slow_amp}");
    }

    #[test]
    fn quiescent_profile_is_quiescent() {
        let arm = Ur3e::new();
        let p = arm.quiescent_profile(Ur3e::named_pose(0), 100, 0);
        assert_eq!(p.len(), 100);
        assert!(p.samples().iter().all(PowerSample::is_quiescent));
    }

    #[test]
    fn extend_shifts_timestamps() {
        let arm = Ur3e::new();
        let mut a = arm.quiescent_profile(Ur3e::named_pose(0), 10, 0);
        let b = arm.quiescent_profile(Ur3e::named_pose(0), 10, 1);
        a.extend(&b);
        assert_eq!(a.len(), 20);
        let ts: Vec<f64> = a.samples().iter().map(|s| s.timestamp).collect();
        for w in ts.windows(2) {
            assert!(w[1] > w[0], "timestamps strictly increase");
        }
    }

    #[test]
    fn multi_segment_profile_concatenates() {
        let arm = Ur3e::new();
        let two = arm.current_profile(&[leg(0, 1, 1.0), leg(1, 2, 1.0)], 0.0, 7);
        let one = arm.current_profile(&[leg(0, 1, 1.0)], 0.0, 7);
        assert!(two.len() > one.len());
        assert!(two.duration() > one.duration());
    }
}
