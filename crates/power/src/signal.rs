//! Signal-analysis utilities for current profiles.
//!
//! §VI compares current traces by shape: Pearson correlation between
//! runs with different solids (> 0.97), peak counts and amplitudes
//! across velocities, and level shifts across payloads. These are the
//! primitives behind those comparisons.

/// Pearson correlation coefficient between two equal-length series.
///
/// # Errors
///
/// Returns an error message when the series differ in length, are
/// shorter than two points, or have zero variance.
///
/// # Examples
///
/// ```
/// use rad_power::signal::pearson;
///
/// let a = [1.0, 2.0, 3.0, 4.0];
/// let b = [2.0, 4.0, 6.0, 8.0];
/// assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(a: &[f64], b: &[f64]) -> Result<f64, String> {
    if a.len() != b.len() {
        return Err(format!("length mismatch: {} vs {}", a.len(), b.len()));
    }
    if a.len() < 2 {
        return Err("need at least two points".to_owned());
    }
    let n = a.len() as f64;
    let mean_a = a.iter().sum::<f64>() / n;
    let mean_b = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (x, y) in a.iter().zip(b) {
        let dx = x - mean_a;
        let dy = y - mean_b;
        cov += dx * dy;
        var_a += dx * dx;
        var_b += dy * dy;
    }
    if var_a == 0.0 || var_b == 0.0 {
        return Err("zero variance".to_owned());
    }
    Ok(cov / (var_a.sqrt() * var_b.sqrt()))
}

/// Linearly resamples `series` to `target_len` points (used to compare
/// traces of different velocities, which have different durations —
/// the "stretched" curve of Fig. 7c).
///
/// # Panics
///
/// Panics if `series` is empty or `target_len` is zero.
pub fn resample(series: &[f64], target_len: usize) -> Vec<f64> {
    assert!(!series.is_empty(), "cannot resample an empty series");
    assert!(target_len > 0, "target length must be positive");
    if series.len() == 1 {
        return vec![series[0]; target_len];
    }
    if target_len == 1 {
        return vec![series[0]];
    }
    (0..target_len)
        .map(|i| {
            let pos = i as f64 * (series.len() - 1) as f64 / (target_len - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = (lo + 1).min(series.len() - 1);
            let frac = pos - lo as f64;
            series[lo] * (1.0 - frac) + series[hi] * frac
        })
        .collect()
}

/// Counts local extrema (peaks and troughs) whose prominence exceeds
/// `min_prominence`. Fig. 7c observes that traces at different
/// velocities share the same number of peaks.
pub fn extrema_count(series: &[f64], min_prominence: f64) -> usize {
    if series.len() < 3 {
        return 0;
    }
    // Collect local extrema as derivative sign changes, then keep only
    // those that move at least `min_prominence` away from the previous
    // kept extremum — small ripples collapse onto their carrier.
    let mut count = 0;
    let mut last_kept = series[0];
    for i in 1..series.len() - 1 {
        let rising = series[i] - series[i - 1];
        let falling = series[i + 1] - series[i];
        if rising * falling < 0.0 && (series[i] - last_kept).abs() > min_prominence {
            count += 1;
            last_kept = series[i];
        }
    }
    count
}

/// Peak-to-peak amplitude of a series. Zero for series shorter than two
/// points.
pub fn peak_to_peak(series: &[f64]) -> f64 {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in series {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if hi >= lo {
        hi - lo
    } else {
        0.0
    }
}

/// Mean of the absolute values — the "how much current overall" summary
/// used for the payload comparison (Fig. 7d).
pub fn mean_abs(series: &[f64]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    series.iter().map(|v| v.abs()).sum::<f64>() / series.len() as f64
}

/// Root-mean-square of a series.
pub fn rms(series: &[f64]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    (series.iter().map(|v| v * v).sum::<f64>() / series.len() as f64).sqrt()
}

/// Pearson correlation after resampling both series to the length of
/// the shorter one — the shape comparison used for the velocity sweep.
///
/// # Errors
///
/// Propagates [`pearson`]'s errors.
pub fn shape_correlation(a: &[f64], b: &[f64]) -> Result<f64, String> {
    if a.is_empty() || b.is_empty() {
        return Err("empty series".to_owned());
    }
    let len = a.len().min(b.len());
    let ra = resample(a, len);
    let rb = resample(b, len);
    pearson(&ra, &rb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_of_anticorrelated_series_is_minus_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 2.0, 1.0];
        assert!((pearson(&a, &b).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_rejects_degenerate_inputs() {
        assert!(pearson(&[1.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn resample_preserves_endpoints() {
        let s = [0.0, 1.0, 4.0, 9.0];
        let r = resample(&s, 7);
        assert_eq!(r.len(), 7);
        assert_eq!(r[0], 0.0);
        assert_eq!(*r.last().unwrap(), 9.0);
    }

    #[test]
    fn resample_identity_when_lengths_match() {
        let s = [1.0, 5.0, 2.0];
        assert_eq!(resample(&s, 3), s.to_vec());
    }

    #[test]
    fn stretched_series_correlates_with_original() {
        // A sine sampled at two different rates has identical shape.
        let fine: Vec<f64> = (0..200).map(|i| (i as f64 * 0.05).sin()).collect();
        let coarse: Vec<f64> = (0..50).map(|i| (i as f64 * 0.2).sin()).collect();
        let r = shape_correlation(&fine, &coarse).unwrap();
        assert!(r > 0.99, "shape correlation {r}");
    }

    #[test]
    fn extrema_count_finds_sine_peaks() {
        // Two full periods: 2 peaks + 2 troughs.
        let s: Vec<f64> = (0..400)
            .map(|i| (i as f64 / 400.0 * 4.0 * std::f64::consts::PI).sin())
            .collect();
        assert_eq!(extrema_count(&s, 0.001), 4);
    }

    #[test]
    fn extrema_count_ignores_small_ripples() {
        let s: Vec<f64> = (0..100)
            .map(|i| {
                let t = i as f64 / 100.0;
                t + 0.001 * (t * 300.0).sin() // tiny ripple on a ramp
            })
            .collect();
        assert_eq!(extrema_count(&s, 0.05), 0);
    }

    #[test]
    fn amplitude_helpers() {
        let s = [-2.0, 0.0, 3.0];
        assert_eq!(peak_to_peak(&s), 5.0);
        assert!((mean_abs(&s) - 5.0 / 3.0).abs() < 1e-12);
        assert!((rms(&s) - (13.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(peak_to_peak(&[]), 0.0);
        assert_eq!(mean_abs(&[]), 0.0);
        assert_eq!(rms(&[]), 0.0);
    }
}
