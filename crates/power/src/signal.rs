//! Signal-analysis kernels for current profiles.
//!
//! §VI compares current traces by shape: Pearson correlation between
//! runs with different solids (> 0.97), peak counts and amplitudes
//! across velocities, and level shifts across payloads. These are the
//! primitives behind those comparisons.
//!
//! The top-level kernels are the vectorized single-pass forms used by
//! the columnar power plane: [`pearson`] fuses mean/variance/covariance
//! into one Welford pass, [`pearson_matrix`] computes all-pairs run
//! correlations while reusing each run's moments instead of recomputing
//! them per pair, [`resample`] runs branch-free over a lane, and
//! [`peak_stats`] extracts peak count, amplitude, level (mean-abs), and
//! RMS in a single pass with no per-sample allocation. The original
//! two-pass/scalar implementations live verbatim in [`mod@reference`] as
//! the proptest oracle and bench baseline.

/// Running first and second moments of one series, computed in a
/// single Welford pass by [`moments`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moments {
    /// Number of points.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sum of squared deviations from the mean (`n·variance`).
    pub m2: f64,
}

/// Streaming Welford accumulator: feed samples (or whole chunks) as
/// they arrive and read the moments at any point.
///
/// Pushing a series sample-by-sample — in any chunking — performs
/// exactly the update sequence of the batch [`moments`] kernel, so
/// [`StreamingMoments::finish`] is **bit-identical** to `moments` of
/// the concatenated stream. State is three words regardless of stream
/// length; that is the memory bound the streaming detection plane
/// advertises.
///
/// [`StreamingMoments::merge`] combines two independently-accumulated
/// halves (Chan's parallel formula); the merged result is numerically
/// equal but not bitwise equal to sequential accumulation, so the
/// conformance suites pin `push` chains exactly and `merge` within
/// tolerance.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamingMoments {
    n: usize,
    mean: f64,
    m2: f64,
}

impl StreamingMoments {
    /// An empty accumulator.
    pub fn new() -> Self {
        StreamingMoments::default()
    }

    /// Feeds one sample — the exact loop body of [`moments`].
    #[inline]
    pub fn push(&mut self, x: f64) {
        let delta = x - self.mean;
        self.mean += delta / (self.n + 1) as f64;
        self.m2 += delta * (x - self.mean);
        self.n += 1;
    }

    /// Feeds a chunk of samples in order.
    pub fn extend(&mut self, chunk: &[f64]) {
        for &x in chunk {
            self.push(x);
        }
    }

    /// Samples accumulated so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether no sample has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The moments of everything pushed so far.
    pub fn finish(&self) -> Moments {
        Moments {
            n: self.n,
            mean: self.mean,
            m2: self.m2,
        }
    }

    /// Combines two accumulators built over disjoint halves of a
    /// stream (Chan et al.'s parallel update). Associative and exact
    /// against empty halves; numerically (not bitwise) equal to
    /// sequential accumulation otherwise.
    pub fn merge(&self, other: &StreamingMoments) -> StreamingMoments {
        if self.n == 0 {
            return *other;
        }
        if other.n == 0 {
            return *self;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let nb_over_n = other.n as f64 / n as f64;
        StreamingMoments {
            n,
            mean: self.mean + delta * nb_over_n,
            m2: self.m2 + other.m2 + delta * delta * self.n as f64 * nb_over_n,
        }
    }
}

/// Streaming peak/level kernel: the chunk-by-chunk form of
/// [`peak_stats`].
///
/// Classifying a sample as a local extremum needs its successor, so
/// the accumulator holds a two-sample reorder buffer and classifies
/// each sample when the next one arrives — the final sample of a
/// stream is never an interior point, exactly as in the batch kernel.
/// All accumulations happen in arrival order, so
/// [`StreamingPeaks::finish`] is **bit-identical** to `peak_stats` of
/// the concatenated stream at any chunking.
#[derive(Debug, Clone, Copy)]
pub struct StreamingPeaks {
    min_prominence: f64,
    n: usize,
    lo: f64,
    hi: f64,
    sum_abs: f64,
    sum_sq: f64,
    extrema: usize,
    last_kept: f64,
    prev: Option<f64>,
    cur: Option<f64>,
}

impl StreamingPeaks {
    /// An empty accumulator with the given prominence filter.
    pub fn new(min_prominence: f64) -> Self {
        StreamingPeaks {
            min_prominence,
            n: 0,
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
            sum_abs: 0.0,
            sum_sq: 0.0,
            extrema: 0,
            last_kept: 0.0,
            prev: None,
            cur: None,
        }
    }

    /// Feeds one sample.
    #[inline]
    pub fn push(&mut self, x: f64) {
        if self.n == 0 {
            self.last_kept = x;
        }
        self.n += 1;
        self.lo = self.lo.min(x);
        self.hi = self.hi.max(x);
        self.sum_abs += x.abs();
        self.sum_sq += x * x;
        if let (Some(p), Some(c)) = (self.prev, self.cur) {
            // `c` is now an interior sample: its successor `x` just
            // arrived. Same classification as the batch kernel.
            let rising = c - p;
            let falling = x - c;
            if rising * falling < 0.0 && (c - self.last_kept).abs() > self.min_prominence {
                self.extrema += 1;
                self.last_kept = c;
            }
        }
        self.prev = self.cur;
        self.cur = Some(x);
    }

    /// Feeds a chunk of samples in order.
    pub fn extend(&mut self, chunk: &[f64]) {
        for &x in chunk {
            self.push(x);
        }
    }

    /// Samples accumulated so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether no sample has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The peak statistics of everything pushed so far.
    pub fn finish(&self) -> PeakStats {
        let n = self.n as f64;
        PeakStats {
            extrema: self.extrema,
            peak_to_peak: if self.hi >= self.lo {
                self.hi - self.lo
            } else {
                0.0
            },
            mean_abs: if self.n == 0 { 0.0 } else { self.sum_abs / n },
            rms: if self.n == 0 {
                0.0
            } else {
                (self.sum_sq / n).sqrt()
            },
        }
    }
}

/// One-pass Welford moments of a series.
pub fn moments(series: &[f64]) -> Moments {
    let mut mean = 0.0;
    let mut m2 = 0.0;
    for (i, &x) in series.iter().enumerate() {
        let delta = x - mean;
        mean += delta / (i + 1) as f64;
        m2 += delta * (x - mean);
    }
    Moments {
        n: series.len(),
        mean,
        m2,
    }
}

/// Pearson correlation coefficient between two equal-length series,
/// fused into one Welford mean/variance/covariance pass (the
/// [`reference::pearson`] oracle makes three passes).
///
/// # Errors
///
/// Returns an error message when the series differ in length, are
/// shorter than two points, or have zero variance.
///
/// # Examples
///
/// ```
/// use rad_power::signal::pearson;
///
/// let a = [1.0, 2.0, 3.0, 4.0];
/// let b = [2.0, 4.0, 6.0, 8.0];
/// assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(a: &[f64], b: &[f64]) -> Result<f64, String> {
    if a.len() != b.len() {
        return Err(format!("length mismatch: {} vs {}", a.len(), b.len()));
    }
    if a.len() < 2 {
        return Err("need at least two points".to_owned());
    }
    let mut mean_a = 0.0;
    let mut mean_b = 0.0;
    let mut m2a = 0.0;
    let mut m2b = 0.0;
    let mut cab = 0.0;
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        let k = (i + 1) as f64;
        let dx = x - mean_a;
        let dy = y - mean_b;
        mean_a += dx / k;
        mean_b += dy / k;
        let dy2 = y - mean_b;
        m2a += dx * (x - mean_a);
        m2b += dy * dy2;
        cab += dx * dy2;
    }
    // A constant series keeps its running mean exactly equal to the
    // constant, so m2 accumulates exact zeros and the degenerate case
    // is detected exactly, like the two-pass reference.
    if m2a == 0.0 || m2b == 0.0 {
        return Err("zero variance".to_owned());
    }
    Ok(cab / (m2a.sqrt() * m2b.sqrt()))
}

/// All-pairs Pearson correlation matrix over equal-length series.
///
/// Per-series moments are computed once and reused for every pair, so
/// `k` runs cost `k` moment passes plus `k(k-1)/2` covariance passes —
/// versus `3·k(k-1)/2` passes when calling [`pearson`] per pair. The
/// diagonal is exactly `1.0`.
///
/// # Errors
///
/// Returns an error message when series lengths differ, any series is
/// shorter than two points, or any series has zero variance.
pub fn pearson_matrix(series: &[&[f64]]) -> Result<Vec<Vec<f64>>, String> {
    let Some(first) = series.first() else {
        return Ok(Vec::new());
    };
    for s in series {
        if s.len() != first.len() {
            return Err(format!("length mismatch: {} vs {}", first.len(), s.len()));
        }
    }
    if first.len() < 2 {
        return Err("need at least two points".to_owned());
    }
    let moments: Vec<Moments> = series.iter().map(|s| moments(s)).collect();
    if moments.iter().any(|m| m.m2 == 0.0) {
        return Err("zero variance".to_owned());
    }
    let k = series.len();
    let mut out = vec![vec![1.0; k]; k];
    for i in 0..k {
        for j in i + 1..k {
            let (ma, mb) = (moments[i].mean, moments[j].mean);
            let mut cov = 0.0;
            for (&x, &y) in series[i].iter().zip(series[j]) {
                cov += (x - ma) * (y - mb);
            }
            let r = cov / (moments[i].m2.sqrt() * moments[j].m2.sqrt());
            out[i][j] = r;
            out[j][i] = r;
        }
    }
    Ok(out)
}

/// Linearly resamples `series` to `target_len` points (used to compare
/// traces of different velocities, which have different durations —
/// the "stretched" curve of Fig. 7c).
///
/// The inner loop is branch-free: the bracketing index is clamped
/// arithmetically instead of testing the endpoint per point. Results
/// are value-identical to [`reference::resample`].
///
/// # Panics
///
/// Panics if `series` is empty or `target_len` is zero.
pub fn resample(series: &[f64], target_len: usize) -> Vec<f64> {
    let mut out = Vec::new();
    resample_into(series, target_len, &mut out);
    out
}

/// [`resample`] into a caller-provided buffer, clearing it first — the
/// allocation-free form used when sweeping many lanes to a common
/// length.
///
/// # Panics
///
/// Panics if `series` is empty or `target_len` is zero.
pub fn resample_into(series: &[f64], target_len: usize, out: &mut Vec<f64>) {
    assert!(!series.is_empty(), "cannot resample an empty series");
    assert!(target_len > 0, "target length must be positive");
    out.clear();
    out.reserve(target_len);
    if series.len() == 1 {
        out.resize(target_len, series[0]);
        return;
    }
    if target_len == 1 {
        out.push(series[0]);
        return;
    }
    let n = series.len();
    for i in 0..target_len {
        // Multiply-then-divide keeps the endpoint position exact
        // (integer products are exact in f64 at these sizes), so the
        // clamp below only ever fires at the final point.
        let pos = i as f64 * (n - 1) as f64 / (target_len - 1) as f64;
        let lo = (pos as usize).min(n - 2);
        let frac = pos - lo as f64;
        out.push(series[lo] * (1.0 - frac) + series[lo + 1] * frac);
    }
}

/// Fused single-pass peak/level statistics of one series, as returned
/// by [`peak_stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakStats {
    /// Prominence-filtered local extrema count
    /// (= [`reference::extrema_count`]).
    pub extrema: usize,
    /// Peak-to-peak amplitude (= [`reference::peak_to_peak`]).
    pub peak_to_peak: f64,
    /// Mean absolute value — the payload "level" of Fig. 7d
    /// (= [`reference::mean_abs`]).
    pub mean_abs: f64,
    /// Root-mean-square (= [`reference::rms`]).
    pub rms: f64,
}

/// Extracts peak count, amplitude, level, and RMS from a lane in one
/// pass with no per-sample allocation. Each field matches its
/// standalone reference kernel exactly (same accumulation order).
pub fn peak_stats(series: &[f64], min_prominence: f64) -> PeakStats {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let mut sum_abs = 0.0;
    let mut sum_sq = 0.0;
    let mut extrema = 0;
    let mut last_kept = series.first().copied().unwrap_or(0.0);
    for (i, &v) in series.iter().enumerate() {
        lo = lo.min(v);
        hi = hi.max(v);
        sum_abs += v.abs();
        sum_sq += v * v;
        if i >= 1 && i + 1 < series.len() {
            let rising = v - series[i - 1];
            let falling = series[i + 1] - v;
            if rising * falling < 0.0 && (v - last_kept).abs() > min_prominence {
                extrema += 1;
                last_kept = v;
            }
        }
    }
    let n = series.len() as f64;
    PeakStats {
        extrema,
        peak_to_peak: if hi >= lo { hi - lo } else { 0.0 },
        mean_abs: if series.is_empty() { 0.0 } else { sum_abs / n },
        rms: if series.is_empty() {
            0.0
        } else {
            (sum_sq / n).sqrt()
        },
    }
}

/// Counts local extrema (peaks and troughs) whose prominence exceeds
/// `min_prominence`. Fig. 7c observes that traces at different
/// velocities share the same number of peaks.
pub fn extrema_count(series: &[f64], min_prominence: f64) -> usize {
    reference::extrema_count(series, min_prominence)
}

/// Peak-to-peak amplitude of a series. Zero for series shorter than two
/// points.
pub fn peak_to_peak(series: &[f64]) -> f64 {
    reference::peak_to_peak(series)
}

/// Mean of the absolute values — the "how much current overall" summary
/// used for the payload comparison (Fig. 7d).
pub fn mean_abs(series: &[f64]) -> f64 {
    reference::mean_abs(series)
}

/// Root-mean-square of a series.
pub fn rms(series: &[f64]) -> f64 {
    reference::rms(series)
}

/// Pearson correlation after resampling both series to the length of
/// the shorter one — the shape comparison used for the velocity sweep.
///
/// # Errors
///
/// Propagates [`pearson`]'s errors.
pub fn shape_correlation(a: &[f64], b: &[f64]) -> Result<f64, String> {
    if a.is_empty() || b.is_empty() {
        return Err("empty series".to_owned());
    }
    let len = a.len().min(b.len());
    let ra = resample(a, len);
    let rb = resample(b, len);
    pearson(&ra, &rb)
}

/// The original two-pass/scalar kernels, kept verbatim as the proptest
/// oracle and row-path bench baseline for the fused top-level kernels.
pub mod reference {
    /// Two-pass Pearson correlation (mean pass, then
    /// covariance/variance pass) — the pre-columnar implementation.
    ///
    /// # Errors
    ///
    /// Returns an error message when the series differ in length, are
    /// shorter than two points, or have zero variance.
    pub fn pearson(a: &[f64], b: &[f64]) -> Result<f64, String> {
        if a.len() != b.len() {
            return Err(format!("length mismatch: {} vs {}", a.len(), b.len()));
        }
        if a.len() < 2 {
            return Err("need at least two points".to_owned());
        }
        let n = a.len() as f64;
        let mean_a = a.iter().sum::<f64>() / n;
        let mean_b = b.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut var_a = 0.0;
        let mut var_b = 0.0;
        for (x, y) in a.iter().zip(b) {
            let dx = x - mean_a;
            let dy = y - mean_b;
            cov += dx * dy;
            var_a += dx * dx;
            var_b += dy * dy;
        }
        if var_a == 0.0 || var_b == 0.0 {
            return Err("zero variance".to_owned());
        }
        Ok(cov / (var_a.sqrt() * var_b.sqrt()))
    }

    /// Linear resampling with a per-point endpoint branch — the
    /// pre-columnar implementation.
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty or `target_len` is zero.
    pub fn resample(series: &[f64], target_len: usize) -> Vec<f64> {
        assert!(!series.is_empty(), "cannot resample an empty series");
        assert!(target_len > 0, "target length must be positive");
        if series.len() == 1 {
            return vec![series[0]; target_len];
        }
        if target_len == 1 {
            return vec![series[0]];
        }
        (0..target_len)
            .map(|i| {
                let pos = i as f64 * (series.len() - 1) as f64 / (target_len - 1) as f64;
                let lo = pos.floor() as usize;
                let hi = (lo + 1).min(series.len() - 1);
                let frac = pos - lo as f64;
                series[lo] * (1.0 - frac) + series[hi] * frac
            })
            .collect()
    }

    /// Prominence-filtered extrema count — the standalone scalar
    /// kernel.
    pub fn extrema_count(series: &[f64], min_prominence: f64) -> usize {
        if series.len() < 3 {
            return 0;
        }
        // Collect local extrema as derivative sign changes, then keep
        // only those that move at least `min_prominence` away from the
        // previous kept extremum — small ripples collapse onto their
        // carrier.
        let mut count = 0;
        let mut last_kept = series[0];
        for i in 1..series.len() - 1 {
            let rising = series[i] - series[i - 1];
            let falling = series[i + 1] - series[i];
            if rising * falling < 0.0 && (series[i] - last_kept).abs() > min_prominence {
                count += 1;
                last_kept = series[i];
            }
        }
        count
    }

    /// Peak-to-peak amplitude — the standalone scalar kernel.
    pub fn peak_to_peak(series: &[f64]) -> f64 {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in series {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if hi >= lo {
            hi - lo
        } else {
            0.0
        }
    }

    /// Mean absolute value — the standalone scalar kernel.
    pub fn mean_abs(series: &[f64]) -> f64 {
        if series.is_empty() {
            return 0.0;
        }
        series.iter().map(|v| v.abs()).sum::<f64>() / series.len() as f64
    }

    /// Root-mean-square — the standalone scalar kernel.
    pub fn rms(series: &[f64]) -> f64 {
        if series.is_empty() {
            return 0.0;
        }
        (series.iter().map(|v| v * v).sum::<f64>() / series.len() as f64).sqrt()
    }

    /// Shape correlation via the reference [`pearson`] and
    /// [`resample`].
    ///
    /// # Errors
    ///
    /// Propagates [`pearson`]'s errors.
    pub fn shape_correlation(a: &[f64], b: &[f64]) -> Result<f64, String> {
        if a.is_empty() || b.is_empty() {
            return Err("empty series".to_owned());
        }
        let len = a.len().min(b.len());
        let ra = resample(a, len);
        let rb = resample(b, len);
        pearson(&ra, &rb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_of_anticorrelated_series_is_minus_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 2.0, 1.0];
        assert!((pearson(&a, &b).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_rejects_degenerate_inputs() {
        assert!(pearson(&[1.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn fused_pearson_matches_reference() {
        let a: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 0.037).sin() * 2.5 + 0.4)
            .collect();
        let b: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 0.037 + 0.3).cos() - 1.2)
            .collect();
        let fused = pearson(&a, &b).unwrap();
        let two_pass = reference::pearson(&a, &b).unwrap();
        assert!((fused - two_pass).abs() < 1e-12, "{fused} vs {two_pass}");
    }

    #[test]
    fn pearson_matrix_matches_pairwise() {
        let runs: Vec<Vec<f64>> = (0..4)
            .map(|r| {
                (0..300)
                    .map(|i| (i as f64 * 0.05 + r as f64 * 0.4).sin() + 0.01 * r as f64)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = runs.iter().map(Vec::as_slice).collect();
        let matrix = pearson_matrix(&refs).unwrap();
        for i in 0..runs.len() {
            assert_eq!(matrix[i][i], 1.0);
            for j in 0..runs.len() {
                if i != j {
                    let direct = pearson(&runs[i], &runs[j]).unwrap();
                    assert!(
                        (matrix[i][j] - direct).abs() < 1e-12,
                        "({i},{j}): {} vs {direct}",
                        matrix[i][j]
                    );
                    assert_eq!(matrix[i][j], matrix[j][i]);
                }
            }
        }
    }

    #[test]
    fn pearson_matrix_rejects_degenerate_inputs() {
        assert_eq!(pearson_matrix(&[]).unwrap(), Vec::<Vec<f64>>::new());
        assert!(pearson_matrix(&[&[1.0, 2.0], &[1.0][..]]).is_err());
        assert!(pearson_matrix(&[&[1.0][..]]).is_err());
        assert!(pearson_matrix(&[&[1.0, 2.0][..], &[3.0, 3.0][..]]).is_err());
    }

    #[test]
    fn resample_preserves_endpoints() {
        let s = [0.0, 1.0, 4.0, 9.0];
        let r = resample(&s, 7);
        assert_eq!(r.len(), 7);
        assert_eq!(r[0], 0.0);
        assert_eq!(*r.last().unwrap(), 9.0);
    }

    #[test]
    fn resample_identity_when_lengths_match() {
        let s = [1.0, 5.0, 2.0];
        assert_eq!(resample(&s, 3), s.to_vec());
    }

    #[test]
    fn resample_matches_reference_exactly() {
        let s: Vec<f64> = (0..97).map(|i| (i as f64 * 0.21).sin() * 3.0).collect();
        for target in [1, 2, 17, 97, 256] {
            assert_eq!(resample(&s, target), reference::resample(&s, target));
        }
        let mut buf = Vec::new();
        resample_into(&s, 33, &mut buf);
        assert_eq!(buf, reference::resample(&s, 33));
        // Buffer reuse clears previous contents.
        resample_into(&s, 8, &mut buf);
        assert_eq!(buf, reference::resample(&s, 8));
    }

    #[test]
    fn stretched_series_correlates_with_original() {
        // A sine sampled at two different rates has identical shape.
        let fine: Vec<f64> = (0..200).map(|i| (i as f64 * 0.05).sin()).collect();
        let coarse: Vec<f64> = (0..50).map(|i| (i as f64 * 0.2).sin()).collect();
        let r = shape_correlation(&fine, &coarse).unwrap();
        assert!(r > 0.99, "shape correlation {r}");
    }

    #[test]
    fn extrema_count_finds_sine_peaks() {
        // Two full periods: 2 peaks + 2 troughs.
        let s: Vec<f64> = (0..400)
            .map(|i| (i as f64 / 400.0 * 4.0 * std::f64::consts::PI).sin())
            .collect();
        assert_eq!(extrema_count(&s, 0.001), 4);
    }

    #[test]
    fn extrema_count_ignores_small_ripples() {
        let s: Vec<f64> = (0..100)
            .map(|i| {
                let t = i as f64 / 100.0;
                t + 0.001 * (t * 300.0).sin() // tiny ripple on a ramp
            })
            .collect();
        assert_eq!(extrema_count(&s, 0.05), 0);
    }

    #[test]
    fn amplitude_helpers() {
        let s = [-2.0, 0.0, 3.0];
        assert_eq!(peak_to_peak(&s), 5.0);
        assert!((mean_abs(&s) - 5.0 / 3.0).abs() < 1e-12);
        assert!((rms(&s) - (13.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(peak_to_peak(&[]), 0.0);
        assert_eq!(mean_abs(&[]), 0.0);
        assert_eq!(rms(&[]), 0.0);
    }

    #[test]
    fn peak_stats_matches_standalone_kernels() {
        let s: Vec<f64> = (0..400)
            .map(|i| (i as f64 / 400.0 * 4.0 * std::f64::consts::PI).sin() * 1.7 - 0.2)
            .collect();
        let stats = peak_stats(&s, 0.001);
        assert_eq!(stats.extrema, reference::extrema_count(&s, 0.001));
        assert_eq!(stats.peak_to_peak, reference::peak_to_peak(&s));
        assert_eq!(stats.mean_abs, reference::mean_abs(&s));
        assert_eq!(stats.rms, reference::rms(&s));
        let empty = peak_stats(&[], 0.1);
        assert_eq!(empty.extrema, 0);
        assert_eq!(empty.peak_to_peak, 0.0);
        assert_eq!(empty.mean_abs, 0.0);
        assert_eq!(empty.rms, 0.0);
    }

    #[test]
    fn moments_match_naive_mean_and_variance() {
        let s: Vec<f64> = (0..250).map(|i| (i as f64 * 0.11).cos() * 4.0).collect();
        let m = moments(&s);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let m2 = s.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>();
        assert_eq!(m.n, s.len());
        assert!((m.mean - mean).abs() < 1e-12);
        assert!((m.m2 - m2).abs() < 1e-9 * m2.max(1.0));
    }

    fn wiggly(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.173).sin() * 2.1 + (i as f64 * 0.019).cos() - 0.4)
            .collect()
    }

    #[test]
    fn streaming_moments_are_bit_identical_to_batch_at_any_chunking() {
        let s = wiggly(1003);
        let batch = moments(&s);
        for chunk in [1usize, 7, 256, s.len()] {
            let mut acc = StreamingMoments::new();
            for c in s.chunks(chunk) {
                acc.extend(c);
            }
            assert_eq!(acc.finish(), batch, "chunk size {chunk}");
        }
        assert_eq!(StreamingMoments::new().finish(), moments(&[]));
    }

    #[test]
    fn streaming_moments_merge_is_close_and_handles_empty() {
        let s = wiggly(512);
        let (a, b) = s.split_at(197);
        let mut ma = StreamingMoments::new();
        ma.extend(a);
        let mut mb = StreamingMoments::new();
        mb.extend(b);
        let merged = ma.merge(&mb).finish();
        let seq = moments(&s);
        assert_eq!(merged.n, seq.n);
        assert!((merged.mean - seq.mean).abs() < 1e-12);
        assert!((merged.m2 - seq.m2).abs() < 1e-9 * seq.m2.max(1.0));
        // Empty sides are exact identities.
        let empty = StreamingMoments::new();
        assert_eq!(empty.merge(&ma), ma);
        assert_eq!(ma.merge(&empty), ma);
    }

    #[test]
    fn streaming_peaks_are_bit_identical_to_batch_at_any_chunking() {
        let s = wiggly(997);
        for prominence in [0.0, 0.001, 0.5] {
            let batch = peak_stats(&s, prominence);
            for chunk in [1usize, 7, 256, s.len()] {
                let mut acc = StreamingPeaks::new(prominence);
                for c in s.chunks(chunk) {
                    acc.extend(c);
                }
                let got = acc.finish();
                assert_eq!(
                    got.extrema, batch.extrema,
                    "chunk {chunk} prom {prominence}"
                );
                assert_eq!(got.peak_to_peak, batch.peak_to_peak);
                assert_eq!(got.mean_abs, batch.mean_abs);
                assert_eq!(got.rms, batch.rms);
            }
        }
    }

    #[test]
    fn streaming_peaks_edge_cases_match_batch() {
        for s in [vec![], vec![3.5], vec![1.0, 2.0]] {
            let batch = peak_stats(&s, 0.1);
            let mut acc = StreamingPeaks::new(0.1);
            acc.extend(&s);
            let got = acc.finish();
            assert_eq!(got.extrema, batch.extrema, "len {}", s.len());
            assert_eq!(got.peak_to_peak, batch.peak_to_peak);
            assert_eq!(got.mean_abs, batch.mean_abs);
            assert_eq!(got.rms, batch.rms);
        }
    }
}
