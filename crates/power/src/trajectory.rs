//! Trapezoidal joint-space trajectory generation.
//!
//! UR controllers execute `movej` with a trapezoidal velocity profile:
//! constant acceleration to the cruise velocity, cruise, constant
//! deceleration. For short moves the profile degenerates to a triangle.
//! All six joints are synchronized to the *lead joint* (largest angular
//! distance); the others scale proportionally so every joint starts and
//! stops together, which is what the real controller does.

use crate::JOINTS;

/// One planned joint-space move.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectorySegment {
    start: [f64; JOINTS],
    end: [f64; JOINTS],
    cruise_velocity: f64,
    acceleration: f64,
}

impl TrajectorySegment {
    /// Default joint acceleration (rad/s²), matching the UR default of
    /// 1.4 for `movej`.
    pub const DEFAULT_ACCELERATION: f64 = 1.4;

    /// Plans a synchronized joint move from `start` to `end` with the
    /// lead joint cruising at `cruise_velocity` (rad/s) and the default
    /// acceleration.
    ///
    /// # Panics
    ///
    /// Panics if `cruise_velocity` is not strictly positive and finite.
    pub fn joint_move(start: [f64; JOINTS], end: [f64; JOINTS], cruise_velocity: f64) -> Self {
        Self::joint_move_with_acceleration(start, end, cruise_velocity, Self::DEFAULT_ACCELERATION)
    }

    /// Plans a synchronized joint move with an explicit acceleration
    /// limit (rad/s²).
    ///
    /// # Panics
    ///
    /// Panics if `cruise_velocity` or `acceleration` is not strictly
    /// positive and finite.
    pub fn joint_move_with_acceleration(
        start: [f64; JOINTS],
        end: [f64; JOINTS],
        cruise_velocity: f64,
        acceleration: f64,
    ) -> Self {
        assert!(
            cruise_velocity.is_finite() && cruise_velocity > 0.0,
            "cruise velocity must be positive and finite"
        );
        assert!(
            acceleration.is_finite() && acceleration > 0.0,
            "acceleration must be positive and finite"
        );
        TrajectorySegment {
            start,
            end,
            cruise_velocity,
            acceleration,
        }
    }

    /// Start joint vector.
    pub fn start(&self) -> [f64; JOINTS] {
        self.start
    }

    /// End joint vector.
    pub fn end(&self) -> [f64; JOINTS] {
        self.end
    }

    /// Lead-joint cruise velocity (rad/s).
    pub fn cruise_velocity(&self) -> f64 {
        self.cruise_velocity
    }

    /// Angular distance of the lead joint (radians).
    pub fn lead_distance(&self) -> f64 {
        self.start
            .iter()
            .zip(&self.end)
            .map(|(a, b)| (b - a).abs())
            .fold(0.0, f64::max)
    }

    /// Total move duration in seconds (trapezoidal or triangular).
    pub fn duration(&self) -> f64 {
        let d = self.lead_distance();
        if d == 0.0 {
            return 0.0;
        }
        let v = self.cruise_velocity;
        let a = self.acceleration;
        let d_ramp = v * v / a; // distance covered by accel + decel at full cruise
        if d >= d_ramp {
            // Trapezoid: two ramps of v/a seconds plus cruise.
            2.0 * v / a + (d - d_ramp) / v
        } else {
            // Triangle: peak velocity sqrt(a d).
            2.0 * (d / a).sqrt()
        }
    }

    /// Lead-joint progress (position along `[0, lead_distance]`),
    /// velocity and acceleration at time `t` seconds into the move.
    fn lead_state(&self, t: f64) -> (f64, f64, f64) {
        let d = self.lead_distance();
        if d == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        let a = self.acceleration;
        let v = self.cruise_velocity.min((a * d).sqrt());
        let t_ramp = v / a;
        let t_total = self.duration();
        if t <= 0.0 {
            (0.0, 0.0, 0.0)
        } else if t < t_ramp {
            (0.5 * a * t * t, a * t, a)
        } else if t < t_total - t_ramp {
            let p_ramp = 0.5 * a * t_ramp * t_ramp;
            (p_ramp + v * (t - t_ramp), v, 0.0)
        } else if t < t_total {
            let remaining = t_total - t;
            (d - 0.5 * a * remaining * remaining, a * remaining, -a)
        } else {
            (d, 0.0, 0.0)
        }
    }

    /// Samples the full joint state at time `t` seconds into the move.
    #[allow(clippy::needless_range_loop)] // parallel per-joint arrays
    pub fn sample(&self, t: f64) -> TrajectoryPoint {
        let d = self.lead_distance();
        let (lead_pos, lead_vel, lead_acc) = self.lead_state(t);
        let fraction = if d == 0.0 { 1.0 } else { lead_pos / d };
        let mut q = [0.0; JOINTS];
        let mut qd = [0.0; JOINTS];
        let mut qdd = [0.0; JOINTS];
        for i in 0..JOINTS {
            let delta = self.end[i] - self.start[i];
            let scale = if d == 0.0 { 0.0 } else { delta / d };
            q[i] = self.start[i] + delta * fraction;
            qd[i] = lead_vel * scale;
            qdd[i] = lead_acc * scale;
        }
        TrajectoryPoint { t, q, qd, qdd }
    }

    /// Samples the whole move at fixed `dt` intervals, inclusive of the
    /// final resting state.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive and finite.
    pub fn sample_at(&self, dt: f64) -> Vec<TrajectoryPoint> {
        assert!(
            dt.is_finite() && dt > 0.0,
            "sample period must be positive and finite"
        );
        let total = self.duration();
        let steps = (total / dt).ceil() as usize;
        (0..=steps).map(|i| self.sample(i as f64 * dt)).collect()
    }
}

/// Joint positions, velocities, and accelerations at one instant of a
/// planned move.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// Seconds since the start of the segment.
    pub t: f64,
    /// Joint positions (rad).
    pub q: [f64; JOINTS],
    /// Joint velocities (rad/s).
    pub qd: [f64; JOINTS],
    /// Joint accelerations (rad/s²).
    pub qdd: [f64; JOINTS],
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple(distance: f64, v: f64) -> TrajectorySegment {
        let start = [0.0; JOINTS];
        let mut end = [0.0; JOINTS];
        end[0] = distance;
        TrajectorySegment::joint_move(start, end, v)
    }

    #[test]
    fn long_move_is_trapezoidal() {
        // 2 rad at 1 rad/s, a = 1.4: ramps take 1/1.4 s each and cover
        // 1/1.4 rad total, leaving cruise time.
        let seg = simple(2.0, 1.0);
        let expected = 2.0 / 1.4 + (2.0 - 1.0 / 1.4) / 1.0;
        assert!((seg.duration() - expected).abs() < 1e-9);
    }

    #[test]
    fn short_move_is_triangular() {
        let seg = simple(0.1, 2.0);
        let expected = 2.0 * (0.1f64 / 1.4).sqrt();
        assert!((seg.duration() - expected).abs() < 1e-9);
    }

    #[test]
    fn faster_cruise_shortens_the_move() {
        let slow = simple(2.0, 0.5).duration();
        let fast = simple(2.0, 1.5).duration();
        assert!(fast < slow);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn endpoints_are_exact() {
        let start = [0.1, -1.0, 0.5, 0.0, 0.3, -0.2];
        let end = [0.9, -0.2, 1.0, -0.5, 0.3, 0.4];
        let seg = TrajectorySegment::joint_move(start, end, 1.0);
        let first = seg.sample(0.0);
        let last = seg.sample(seg.duration() + 1.0);
        assert_eq!(first.q, start);
        for i in 0..JOINTS {
            assert!((last.q[i] - end[i]).abs() < 1e-9);
            assert_eq!(last.qd[i], 0.0);
        }
    }

    #[test]
    fn velocity_peaks_at_cruise() {
        let seg = simple(2.0, 1.0);
        let peak = seg
            .sample_at(0.01)
            .iter()
            .map(|p| p.qd[0].abs())
            .fold(0.0, f64::max);
        assert!((peak - 1.0).abs() < 0.02);
    }

    #[test]
    fn joints_stay_synchronized() {
        let start = [0.0; JOINTS];
        let mut end = [0.0; JOINTS];
        end[0] = 1.0; // lead
        end[3] = 0.5; // follower at half scale
        let seg = TrajectorySegment::joint_move(start, end, 1.0);
        for p in seg.sample_at(0.05) {
            assert!((p.q[3] - p.q[0] * 0.5).abs() < 1e-9);
            assert!((p.qd[3] - p.qd[0] * 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn negative_direction_moves_have_negative_velocity() {
        let start = [1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let end = [0.0; JOINTS];
        let seg = TrajectorySegment::joint_move(start, end, 1.0);
        let mid = seg.sample(seg.duration() / 2.0);
        assert!(mid.qd[0] < 0.0);
    }

    #[test]
    fn zero_length_move_has_zero_duration() {
        let seg = simple(0.0, 1.0);
        assert_eq!(seg.duration(), 0.0);
        let p = seg.sample(0.5);
        assert_eq!(p.q, [0.0; JOINTS]);
    }

    #[test]
    fn sample_at_covers_duration_inclusively() {
        let seg = simple(1.0, 1.0);
        let pts = seg.sample_at(0.04);
        assert!(pts.last().unwrap().t >= seg.duration());
        assert_eq!(pts.first().unwrap().t, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_velocity_is_rejected() {
        let _ = simple(1.0, 0.0);
    }
}
