//! Property tests on the RPC framing layer: any payload stream,
//! chunked any way, reassembles losslessly.

use bytes::{BufMut, BytesMut};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rad_middlebox::rpc::FrameCodec;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary payloads survive framing + arbitrary re-chunking.
    #[test]
    fn frames_reassemble_under_any_chunking(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200),
            1..10,
        ),
        chunk in 1usize..37,
    ) {
        let mut stream = BytesMut::new();
        for p in &payloads {
            stream.put_slice(&FrameCodec::encode(p));
        }
        let mut codec = FrameCodec::new();
        let mut decoded: Vec<Vec<u8>> = Vec::new();
        for piece in stream.chunks(chunk) {
            codec.push(piece);
            while let Some(frame) = codec.next_frame().unwrap() {
                decoded.push(frame.to_vec());
            }
        }
        prop_assert_eq!(decoded, payloads);
    }

    /// A truncated stream never yields a phantom frame.
    #[test]
    fn truncation_yields_nothing_not_garbage(
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        keep_fraction in 0.0f64..1.0,
    ) {
        let framed = FrameCodec::encode(&payload);
        let keep = ((framed.len() as f64) * keep_fraction) as usize;
        prop_assume!(keep < framed.len());
        let mut codec = FrameCodec::new();
        codec.push(&framed[..keep]);
        prop_assert_eq!(codec.next_frame().unwrap(), None);
    }

    /// Arbitrary garbage never panics the codec: every call yields a
    /// frame, `None`, or a typed [`rad_core::RadError`].
    #[test]
    fn garbage_bytes_never_panic(
        noise in proptest::collection::vec(any::<u8>(), 0..400),
        chunk in 1usize..23,
    ) {
        let mut codec = FrameCodec::new();
        for piece in noise.chunks(chunk) {
            codec.push(piece);
            loop {
                match codec.next_frame() {
                    Ok(Some(frame)) => prop_assert!(frame.len() <= rad_middlebox::rpc::MAX_FRAME_BYTES),
                    Ok(None) => break,
                    Err(rad_core::RadError::Rpc(_))
                    | Err(rad_core::RadError::FrameTooLarge { .. }) => break,
                    Err(other) => return Err(TestCaseError::fail(format!("untyped error: {other}"))),
                }
            }
        }
    }

    /// A corrupted length prefix poisons the codec instead of hanging:
    /// the error is sticky until `reset`, after which fresh frames
    /// decode again.
    #[test]
    fn oversized_prefix_poisons_until_reset(
        excess in 1u32..u32::MAX / 2,
        payload in proptest::collection::vec(any::<u8>(), 0..50),
    ) {
        let bad_len = rad_middlebox::rpc::MAX_FRAME_BYTES as u32 + excess;
        let mut codec = FrameCodec::new();
        codec.push(&bad_len.to_be_bytes());
        prop_assert!(codec.next_frame().is_err(), "oversized prefix must error, not wait");
        prop_assert!(codec.next_frame().is_err(), "the poison is sticky");
        codec.reset();
        codec.push(&FrameCodec::encode(&payload));
        let recovered = codec.next_frame().unwrap().expect("frame after reset");
        prop_assert_eq!(recovered.as_ref(), payload.as_slice());
    }

    /// Concatenated frames in one chunk all come out, in order — the
    /// property idempotent replay of buffered responses relies on.
    #[test]
    fn concatenated_frames_decode_in_order(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..120),
            1..8,
        ),
    ) {
        let mut stream = BytesMut::new();
        for p in &payloads {
            stream.put_slice(&FrameCodec::encode(p));
        }
        let mut codec = FrameCodec::new();
        codec.push(&stream);
        let mut decoded = Vec::new();
        while let Some(frame) = codec.next_frame().unwrap() {
            decoded.push(frame.to_vec());
        }
        prop_assert_eq!(decoded, payloads);
    }

    /// Flipping one byte of a framed stream either still decodes
    /// (payload corruption) or surfaces a typed error / short read —
    /// never a panic or an infinite loop.
    #[test]
    fn single_byte_corruption_is_contained(
        payload in proptest::collection::vec(any::<u8>(), 1..150),
        pos_fraction in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut framed = FrameCodec::encode(&payload).to_vec();
        let pos = ((framed.len() - 1) as f64 * pos_fraction) as usize;
        framed[pos] ^= flip;
        let mut codec = FrameCodec::new();
        codec.push(&framed);
        // Bounded loop: the codec must make progress or stop.
        for _ in 0..4 {
            match codec.next_frame() {
                Ok(Some(_)) | Ok(None) => break,
                Err(rad_core::RadError::Rpc(_))
                | Err(rad_core::RadError::FrameTooLarge { .. }) => { codec.reset(); }
                Err(other) => return Err(TestCaseError::fail(format!("untyped error: {other}"))),
            }
        }
    }

    /// Fault schedules are a pure function of (seed, lane, index):
    /// regenerating any window of the schedule reproduces it exactly.
    #[test]
    fn fault_schedules_are_deterministic(seed in any::<u64>(), len in 1u64..200) {
        use rad_middlebox::{FaultPlan, FaultProfile, Lane};
        let profile = FaultProfile {
            drop_prob: 0.1,
            duplicate_prob: 0.05,
            corrupt_prob: 0.05,
            reorder_prob: 0.05,
            delay_prob: 0.05,
            delay_chunks: 2,
            disconnect_after: Some(150),
        };
        let a = FaultPlan::new(seed, profile.clone());
        let b = FaultPlan::new(seed, profile);
        for lane in [Lane::Request, Lane::Response] {
            prop_assert_eq!(a.schedule(lane, len), b.schedule(lane, len));
            // Point queries agree with the bulk schedule.
            let sched = a.schedule(lane, len);
            for (i, &action) in sched.iter().enumerate() {
                prop_assert_eq!(b.action_for(lane, i as u64), action);
            }
        }
    }

    /// Latency models never produce negative or absurd samples.
    #[test]
    fn latency_samples_are_sane(seed in 0u64..500) {
        use rad_core::TraceMode;
        use rad_middlebox::LatencyModel;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for mode in [TraceMode::Direct, TraceMode::Remote, TraceMode::Cloud] {
            let model = LatencyModel::for_mode(mode);
            for _ in 0..50 {
                let s = model.sample(&mut rng);
                prop_assert!(s.as_millis_f64() < 10_000.0, "{mode}: {s}");
            }
        }
    }
}
