//! Property tests on the RPC framing layer: any payload stream,
//! chunked any way, reassembles losslessly.

use bytes::{BufMut, BytesMut};
use proptest::prelude::*;
use rad_middlebox::rpc::FrameCodec;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary payloads survive framing + arbitrary re-chunking.
    #[test]
    fn frames_reassemble_under_any_chunking(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200),
            1..10,
        ),
        chunk in 1usize..37,
    ) {
        let mut stream = BytesMut::new();
        for p in &payloads {
            stream.put_slice(&FrameCodec::encode(p));
        }
        let mut codec = FrameCodec::new();
        let mut decoded: Vec<Vec<u8>> = Vec::new();
        for piece in stream.chunks(chunk) {
            codec.push(piece);
            while let Some(frame) = codec.next_frame().unwrap() {
                decoded.push(frame.to_vec());
            }
        }
        prop_assert_eq!(decoded, payloads);
    }

    /// A truncated stream never yields a phantom frame.
    #[test]
    fn truncation_yields_nothing_not_garbage(
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        keep_fraction in 0.0f64..1.0,
    ) {
        let framed = FrameCodec::encode(&payload);
        let keep = ((framed.len() as f64) * keep_fraction) as usize;
        prop_assume!(keep < framed.len());
        let mut codec = FrameCodec::new();
        codec.push(&framed[..keep]);
        prop_assert_eq!(codec.next_frame().unwrap(), None);
    }

    /// Latency models never produce negative or absurd samples.
    #[test]
    fn latency_samples_are_sane(seed in 0u64..500) {
        use rad_core::TraceMode;
        use rad_middlebox::LatencyModel;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for mode in [TraceMode::Direct, TraceMode::Remote, TraceMode::Cloud] {
            let model = LatencyModel::for_mode(mode);
            for _ in 0..50 {
                let s = model.sample(&mut rng);
                prop_assert!(s.as_millis_f64() < 10_000.0, "{mode}: {s}");
            }
        }
    }
}
