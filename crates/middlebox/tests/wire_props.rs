//! Property tests on the binary wire codec.
//!
//! Four invariants, each under randomized messages:
//!
//! 1. every message type round-trips through its binary encoding
//!    exactly — ids, commands, values, labels, procedures included;
//! 2. JSON payloads decode through the same entry points (the
//!    self-describing first byte keeps old clients working);
//! 3. any strict prefix of a binary frame is rejected with a typed
//!    error — never a panic, never a partial message;
//! 4. a single flipped bit anywhere in a binary frame is rejected
//!    (CRC32 catches all single-bit damage).
//!
//! Case counts honour `PROPTEST_CASES` (the CI wire-conformance job
//! raises it to 512).

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rad_core::{AnomalyCause, Command, CommandType, Label, ProcedureKind, Value};
use rad_middlebox::server::{WireFrame, WireReply, WireRequest};
use rad_middlebox::wire;

fn leaf_value() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN breaks `PartialEq` round-trip
        // comparison, not the codec (which is exact on every bit
        // pattern — the unit suite covers NaN).
        (-1.0e12f64..1.0e12).prop_map(Value::Float),
        "[ -~]{0,24}".prop_map(Value::Str),
        (-1.0e6f64..1.0e6, -1.0e6f64..1.0e6, -1.0e6f64..1.0e6,)
            .prop_map(|(x, y, z)| Value::Location { x, y, z }),
        proptest::collection::vec(-10.0f64..10.0, 6)
            .prop_map(|j| { Value::Joints([j[0], j[1], j[2], j[3], j[4], j[5]]) }),
    ]
    .boxed()
}

fn value() -> BoxedStrategy<Value> {
    prop_oneof![
        leaf_value(),
        proptest::collection::vec(leaf_value(), 0..4).prop_map(Value::List),
    ]
    .boxed()
}

fn command() -> BoxedStrategy<Command> {
    (
        0usize..CommandType::all().len(),
        proptest::collection::vec(value(), 0..4),
    )
        .prop_map(|(pick, args)| Command::new(CommandType::all()[pick], args))
        .boxed()
}

fn label() -> BoxedStrategy<Label> {
    prop_oneof![
        Just(Label::Benign),
        Just(Label::Unknown),
        Just(Label::Anomalous(AnomalyCause::QuantosDoorVsN9)),
        Just(Label::Anomalous(AnomalyCause::QuantosDoorVsUr3e)),
        Just(Label::Anomalous(AnomalyCause::ArmVsTecan)),
    ]
    .boxed()
}

fn procedure() -> BoxedStrategy<ProcedureKind> {
    prop_oneof![
        Just(ProcedureKind::AutomatedSolubilityN9),
        Just(ProcedureKind::AutomatedSolubilityN9Ur3e),
        Just(ProcedureKind::CrystalSolubility),
        Just(ProcedureKind::JoystickMovements),
        Just(ProcedureKind::VelocitySweep),
        Just(ProcedureKind::PayloadSweep),
        Just(ProcedureKind::Unknown),
    ]
    .boxed()
}

fn wire_request() -> BoxedStrategy<WireRequest> {
    prop_oneof![
        "[a-z]{1,12}".prop_map(|tenant| WireRequest::Hello { tenant }),
        (any::<u64>(), command()).prop_map(|(deadline_ms, command)| WireRequest::Issue {
            deadline_ms,
            command,
        }),
        (any::<u32>(), procedure(), label()).prop_map(|(run, procedure, label)| {
            WireRequest::BeginRun {
                run,
                procedure,
                label,
            }
        }),
        Just(WireRequest::EndRun),
        "[ -~]{0,32}".prop_map(|note| WireRequest::Annotate { note }),
        any::<u64>().prop_map(|micros| WireRequest::Advance { micros }),
        Just(WireRequest::Sync),
        Just(WireRequest::Bye),
    ]
    .boxed()
}

fn wire_reply() -> BoxedStrategy<WireReply> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(session, issues_done)| WireReply::Welcome {
            session,
            issues_done,
        }),
        value().prop_map(|v| WireReply::Done {
            value: Some(v),
            fault: None,
        }),
        "[ -~]{1,32}".prop_map(|f| WireReply::Done {
            value: None,
            fault: Some(f),
        }),
        Just(WireReply::Accepted),
        Just(WireReply::Expired),
        "[ -~]{0,32}".prop_map(|reason| WireReply::Rejected { reason }),
        "[ -~]{0,32}".prop_map(|message| WireReply::Failed { message }),
        any::<u64>().prop_map(|issues_done| WireReply::Goodbye { issues_done }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Binary round trip for the RPC data plane: request and response.
    #[test]
    fn rpc_frames_round_trip(
        id in any::<u64>(),
        command in command(),
        reply in prop_oneof![
            value().prop_map(Ok),
            "[ -~]{0,32}".prop_map(Err),
        ],
    ) {
        let mut frame = Vec::new();
        wire::encode_rpc_request(&mut frame, id, &command);
        let decoded = wire::decode_rpc_request(&frame)
            .map_err(|e| TestCaseError::fail(format!("request rejected: {e}")))?;
        prop_assert_eq!(decoded.id, id);
        prop_assert_eq!(&decoded.command, &command);

        let mut frame = Vec::new();
        wire::encode_rpc_response(&mut frame, id, &reply);
        let decoded = wire::decode_rpc_response(&frame)
            .map_err(|e| TestCaseError::fail(format!("response rejected: {e}")))?;
        prop_assert_eq!(decoded.id, id);
        prop_assert_eq!(&decoded.result, &reply);
    }

    /// Binary round trip for the server protocol: every request and
    /// reply variant.
    #[test]
    fn server_frames_round_trip(
        id in any::<u64>(),
        body in wire_request(),
        reply in wire_reply(),
    ) {
        let mut frame = Vec::new();
        wire::encode_wire_frame(&mut frame, id, &body);
        let decoded = wire::decode_wire_frame(&frame)
            .map_err(|e| TestCaseError::fail(format!("frame rejected: {e}")))?;
        prop_assert_eq!(decoded.id, id);
        prop_assert_eq!(&decoded.body, &body);

        let mut frame = Vec::new();
        wire::encode_reply_frame(&mut frame, id, &reply);
        let decoded = wire::decode_reply_frame(&frame)
            .map_err(|e| TestCaseError::fail(format!("reply rejected: {e}")))?;
        prop_assert_eq!(decoded.id, id);
        prop_assert_eq!(&decoded.body, &reply);
    }

    /// The JSON fallback: a payload serialized by the old client
    /// decodes through the same entry point, bit-for-bit equal.
    #[test]
    fn json_payloads_decode_through_the_same_entry_points(
        id in any::<u64>(),
        body in wire_request(),
        reply in wire_reply(),
    ) {
        let json = serde_json::to_vec(&WireFrame { id, body: body.clone() }).unwrap();
        let decoded = wire::decode_wire_frame(&json)
            .map_err(|e| TestCaseError::fail(format!("JSON frame rejected: {e}")))?;
        prop_assert_eq!(decoded.id, id);
        prop_assert_eq!(&decoded.body, &body);

        let json = serde_json::to_vec(&rad_middlebox::server::ReplyFrame {
            id,
            body: reply.clone(),
        })
        .unwrap();
        let decoded = wire::decode_reply_frame(&json)
            .map_err(|e| TestCaseError::fail(format!("JSON reply rejected: {e}")))?;
        prop_assert_eq!(decoded.id, id);
        prop_assert_eq!(&decoded.body, &reply);
    }

    /// Every strict prefix of a binary frame is rejected — never a
    /// panic, never a partial decode.
    #[test]
    fn truncated_frames_are_rejected(
        id in any::<u64>(),
        body in wire_request(),
    ) {
        let mut frame = Vec::new();
        wire::encode_wire_frame(&mut frame, id, &body);
        for cut in 0..frame.len() {
            prop_assert!(
                wire::decode_wire_frame(&frame[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded",
                frame.len()
            );
        }
    }

    /// A single flipped bit anywhere in a binary frame is rejected:
    /// the CRC32 trailer catches all single-bit damage, and a damaged
    /// codec tag falls back to (failing) JSON.
    #[test]
    fn single_bit_flips_are_rejected(
        id in any::<u64>(),
        body in wire_request(),
        byte_pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut frame = Vec::new();
        wire::encode_wire_frame(&mut frame, id, &body);
        let at = (byte_pick % frame.len() as u64) as usize;
        frame[at] ^= 1 << bit;
        prop_assert!(
            wire::decode_wire_frame(&frame).is_err(),
            "flipped bit {bit} of byte {at} went unnoticed"
        );
    }
}
