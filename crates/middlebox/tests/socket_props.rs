//! Socket-level torture tests: the framed protocol survives arbitrary
//! re-chunking across *real* kernel byte streams, and decodes exactly
//! what the in-process [`Duplex`] transport decodes.
//!
//! The TCP/Unix stream APIs guarantee bytes, not boundaries: a frame
//! written in one `write_all` can arrive split across many reads, and
//! many frames can coalesce into one. These tests force both — every
//! byte boundary, adversarial split schedules — and assert the decoded
//! frame sequence is byte-for-byte identical to the same stream pushed
//! through an in-process duplex pair.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::UnixListener;

use bytes::{BufMut, Bytes, BytesMut};
use proptest::prelude::*;
use rad_middlebox::rpc::{Duplex, FrameCodec, Transport};
use rad_middlebox::SocketTransport;

/// Cuts `stream` into pieces following the cyclic `splits` schedule
/// (empty schedule = one piece).
fn cut(stream: &[u8], splits: &[usize]) -> Vec<Vec<u8>> {
    if splits.is_empty() {
        return vec![stream.to_vec()];
    }
    let mut pieces = Vec::new();
    let mut at = 0usize;
    let mut i = 0usize;
    while at < stream.len() {
        let take = splits[i % splits.len()].max(1).min(stream.len() - at);
        pieces.push(stream[at..at + take].to_vec());
        at += take;
        i += 1;
    }
    pieces
}

/// Drains every frame a transport delivers until the peer closes.
fn decode_all<T: Transport>(transport: &T) -> Vec<Vec<u8>> {
    let mut codec = FrameCodec::new();
    let mut frames = Vec::new();
    while let Some(chunk) = transport.recv_blocking() {
        codec.push(&chunk);
        while let Some(frame) = codec.next_frame().expect("framing never breaks") {
            frames.push(frame.to_vec());
        }
    }
    frames
}

/// Writes `pieces` over a fresh TCP connection (separate thread,
/// flushing after every piece) and decodes on the accepting side.
fn decode_over_tcp(pieces: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local_addr");
    let writer = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        for piece in &pieces {
            stream.write_all(piece).expect("write");
            stream.flush().expect("flush");
        }
        // Drop closes the socket: the reader sees EOF after the last
        // byte, never mid-frame.
    });
    let (conn, _) = listener.accept().expect("accept");
    let transport = SocketTransport::tcp(conn).expect("wrap");
    let frames = decode_all(&transport);
    writer.join().expect("writer thread");
    frames
}

/// Same, over a Unix-domain socket pair.
fn decode_over_unix(pieces: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "rad-sockprop-{}-{:x}.sock",
        std::process::id(),
        pieces.iter().map(Vec::len).sum::<usize>()
    ));
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path).expect("bind unix");
    let writer_path = path.clone();
    let writer = std::thread::spawn(move || {
        let mut stream =
            std::os::unix::net::UnixStream::connect(&writer_path).expect("connect unix");
        for piece in &pieces {
            stream.write_all(piece).expect("write");
            stream.flush().expect("flush");
        }
    });
    let (conn, _) = listener.accept().expect("accept");
    let transport = SocketTransport::unix(conn).expect("wrap");
    let frames = decode_all(&transport);
    writer.join().expect("writer thread");
    let _ = std::fs::remove_file(&path);
    frames
}

/// Pushes the same pieces through an in-process duplex pair.
fn decode_over_duplex(pieces: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    let (tx, rx) = Duplex::pair();
    for piece in &pieces {
        tx.send(Bytes::copy_from_slice(piece)).expect("send");
    }
    drop(tx);
    decode_all(&rx)
}

/// A frame split at *every* byte boundary still decodes: one TCP
/// stream carrying `len - 1` copies of the same frame, the i-th copy
/// split after its i-th byte.
#[test]
fn every_byte_boundary_split_decodes_over_tcp() {
    let payload = b"torture-frame: every boundary must hold".to_vec();
    let frame = FrameCodec::encode(&payload);
    let mut pieces = Vec::new();
    for i in 1..frame.len() {
        pieces.push(frame[..i].to_vec());
        pieces.push(frame[i..].to_vec());
    }
    let decoded = decode_over_tcp(pieces);
    assert_eq!(decoded.len(), frame.len() - 1);
    assert!(decoded.iter().all(|f| f == &payload));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any framed payload stream, cut by any split schedule, decodes
    /// to the same frames over real TCP, a real Unix socket, and the
    /// in-process duplex — byte for byte.
    #[test]
    fn tcp_unix_and_duplex_decode_identically(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..300),
            1..8,
        ),
        splits in proptest::collection::vec(1usize..41, 0..24),
    ) {
        let mut stream = BytesMut::new();
        for p in &payloads {
            stream.put_slice(&FrameCodec::encode(p));
        }
        let pieces = cut(&stream, &splits);
        let over_duplex = decode_over_duplex(pieces.clone());
        prop_assert_eq!(&over_duplex, &payloads, "duplex reference must round-trip");
        let over_tcp = decode_over_tcp(pieces.clone());
        prop_assert_eq!(&over_tcp, &over_duplex, "TCP == duplex, byte for byte");
        let over_unix = decode_over_unix(pieces);
        prop_assert_eq!(&over_unix, &over_duplex, "Unix == duplex, byte for byte");
    }

    /// Oversized frames poison the codec identically whatever the
    /// transport delivered the bytes: the typed error names the same
    /// length and limit on a socket as in-process.
    #[test]
    fn oversize_poison_is_transport_independent(
        extra in 1usize..4096,
        cap in 32usize..256,
    ) {
        let len = cap + extra;
        let mut bad = BytesMut::with_capacity(4 + 8);
        bad.put_u32(len as u32);
        bad.put_slice(&[0u8; 8]);
        let bytes = bad.freeze();

        let mut in_process = FrameCodec::with_max_frame(cap);
        in_process.push(&bytes);
        let reference = in_process.next_frame().unwrap_err();

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local_addr");
        let sent = bytes.clone();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.write_all(&sent).expect("write");
        });
        let (conn, _) = listener.accept().expect("accept");
        let transport = SocketTransport::tcp(conn).expect("wrap");
        let mut codec = FrameCodec::with_max_frame(cap);
        let mut socket_err = None;
        while let Some(chunk) = transport.recv_blocking() {
            codec.push(&chunk);
            if let Err(e) = codec.next_frame() {
                socket_err = Some(e);
                break;
            }
        }
        writer.join().expect("writer");
        // The 4-byte prefix always arrives eventually; the poison is
        // raised as soon as the codec sees it.
        let socket_err = socket_err.expect("socket codec must poison too");
        prop_assert_eq!(socket_err, reference);
    }
}
