//! Conformance tests for the RPC stack under live fault injection:
//! a real server thread, a real client, and a [`FaultyDuplex`] pair
//! between them applying a seeded [`FaultPlan`].
//!
//! The invariant under test everywhere: however lossy the wire,
//! **every acknowledged command executed exactly once** — retries reuse
//! their idempotency token and the server deduplicates.

use std::time::Duration;

use rad_core::{Command, CommandType, RadError};
use rad_devices::LabRig;
use rad_middlebox::rpc::{RetryPolicy, RpcClient, RpcServer};
use rad_middlebox::{FaultPlan, FaultProfile, FaultStats, FaultyDuplex};

/// A retry policy tuned for tests: fast attempts, generous attempt
/// count, bounded wall-clock.
fn test_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 6,
        initial_backoff: Duration::from_millis(1),
        backoff_factor: 2,
        attempt_timeout: Duration::from_millis(100),
        deadline: Duration::from_secs(3),
        ..RetryPolicy::default()
    }
}

fn harness(
    plan: FaultPlan,
) -> (
    RpcClient<FaultyDuplex>,
    std::thread::JoinHandle<LabRig>,
    FaultStats,
) {
    let stats = FaultStats::new();
    let (client_side, server_side) = FaultyDuplex::wrap_pair(plan, stats.clone());
    let server = RpcServer::spawn_with_stats(LabRig::new(0), server_side, stats.clone());
    let client = RpcClient::new(client_side).with_stats(stats.clone());
    (client, server, stats)
}

#[test]
fn clean_plan_is_invisible_to_the_rpc_stack() {
    let (mut client, server, stats) = harness(FaultPlan::new(1, FaultProfile::none()));
    let policy = test_policy();
    client
        .call_with_retry(&Command::nullary(CommandType::InitC9), &policy)
        .unwrap();
    client
        .call_with_retry(&Command::nullary(CommandType::Home), &policy)
        .unwrap();
    drop(client);
    let rig = server.join().unwrap();
    assert!(rig.c9().is_homed());
    assert_eq!(stats.executions(), 2);
    assert_eq!(stats.retries(), 0);
    assert_eq!(stats.dedup_hits(), 0);
    assert_eq!(stats.dropped() + stats.corrupted() + stats.disconnects(), 0);
}

#[test]
fn lossy_wire_retries_but_never_double_executes() {
    let (mut client, server, stats) = harness(FaultPlan::new(7, FaultProfile::drop(0.25)));
    let policy = test_policy();
    let total = 30u64;
    let mut acknowledged = 0u64;
    for i in 0..total {
        let command = if i == 0 {
            Command::nullary(CommandType::InitC9)
        } else {
            Command::nullary(CommandType::Mvng)
        };
        if client.call_with_retry(&command, &policy).is_ok() {
            acknowledged += 1;
        }
    }
    drop(client);
    server.join().unwrap();
    assert!(
        stats.dropped() > 0,
        "a 25% drop profile over 30 calls must actually drop chunks"
    );
    // Idempotency: at most one execution per distinct request id, and
    // every acknowledged call was backed by a real execution.
    assert!(
        stats.executions() <= total,
        "{} executions for {} requests — a retry double-executed",
        stats.executions(),
        total
    );
    assert!(acknowledged <= stats.executions());
    assert!(
        acknowledged > total / 2,
        "retries should recover most calls (got {acknowledged}/{total})"
    );
}

#[test]
fn duplicated_chunks_are_deduplicated_not_reexecuted() {
    let (mut client, server, stats) = harness(FaultPlan::new(3, FaultProfile::duplicate(1.0)));
    let policy = test_policy();
    let total = 10u64;
    client
        .call_with_retry(&Command::nullary(CommandType::InitC9), &policy)
        .unwrap();
    for _ in 1..total {
        client
            .call_with_retry(&Command::nullary(CommandType::Mvng), &policy)
            .unwrap();
    }
    drop(client);
    server.join().unwrap();
    assert_eq!(
        stats.executions(),
        total,
        "each duplicated request executes exactly once"
    );
    assert!(
        stats.dedup_hits() > 0,
        "duplicates must hit the idempotency cache"
    );
}

#[test]
fn corrupt_chunks_are_survivable() {
    let (mut client, server, stats) = harness(FaultPlan::new(11, FaultProfile::corrupt(0.2)));
    let policy = test_policy();
    let total = 20u64;
    let mut acknowledged = 0u64;
    for i in 0..total {
        let command = if i == 0 {
            Command::nullary(CommandType::InitC9)
        } else {
            Command::nullary(CommandType::Mvng)
        };
        if client.call_with_retry(&command, &policy).is_ok() {
            acknowledged += 1;
        }
    }
    drop(client);
    server.join().unwrap();
    assert!(stats.corrupted() > 0, "the corrupt profile must bite");
    // A flipped byte can (rarely) still parse as a different request,
    // so the exactly-once bound is per *delivered intact* request.
    assert!(stats.executions() <= total + stats.corrupted());
    assert!(
        acknowledged > total / 2,
        "corruption is retried through (got {acknowledged}/{total})"
    );
}

#[test]
fn disconnect_mid_stream_is_a_typed_terminal_error() {
    let (mut client, server, stats) = harness(FaultPlan::new(5, FaultProfile::disconnect_after(4)));
    let policy = test_policy();
    let mut first_failure = None;
    for i in 0..10u64 {
        let command = if i == 0 {
            Command::nullary(CommandType::InitC9)
        } else {
            Command::nullary(CommandType::Mvng)
        };
        if let Err(e) = client.call_with_retry(&command, &policy) {
            first_failure = Some(e);
            break;
        }
    }
    let err = first_failure.expect("the link died after 4 chunks; some call must fail");
    assert!(
        matches!(err, RadError::RpcDisconnected(_) | RadError::RpcTimeout(_)),
        "disconnect surfaces as a typed rpc error, got {err}"
    );
    drop(client);
    server.join().unwrap();
    assert!(stats.disconnects() > 0);
    // Whatever executed, executed once per id.
    assert!(stats.executions() <= 10);
}
