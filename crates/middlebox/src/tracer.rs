//! The trace pipeline: timestamps, ids, labels, and sinks.
//!
//! For every intercepted access RATracer logs "timestamp, function,
//! arguments, return values, exceptions" (Fig. 3). [`Tracer`] owns the
//! simulated clock and the trace-id counter, stamps each access, tags
//! it with the active procedure run (if any), and fans the record out
//! to an in-memory log and, optionally, a [`DocumentStore`] mirror.

use std::sync::Arc;

use rad_core::{
    Command, CommandType, DeviceId, Label, ProcedureKind, RunId, RunMetadata, SimClock,
    SimDuration, SimInstant, TraceGap, TraceId, TraceMode, TraceObject, Value,
};
use rad_store::{CommandDataset, DocumentStore, DurableStore};
use serde_json::json;

/// The active procedure-run context applied to new traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RunContext {
    procedure: ProcedureKind,
    run_id: RunId,
    label: Label,
}

/// Stamps, labels, and stores trace objects.
#[derive(Debug)]
pub struct Tracer {
    clock: SimClock,
    next_id: u64,
    run: Option<RunContext>,
    traces: Vec<TraceObject>,
    runs: Vec<RunMetadata>,
    gaps: Vec<TraceGap>,
    mirror: Option<Arc<DocumentStore>>,
    durable: Option<Arc<DurableStore>>,
    durable_errors: u64,
}

impl Tracer {
    /// A tracer starting at the campaign epoch.
    pub fn new() -> Self {
        Tracer {
            clock: SimClock::new(),
            next_id: 0,
            run: None,
            traces: Vec::new(),
            runs: Vec::new(),
            gaps: Vec::new(),
            mirror: None,
            durable: None,
            durable_errors: 0,
        }
    }

    /// Mirrors every record into `store` (collection `"traces"`), like
    /// RATracer's MongoDB sink.
    #[must_use]
    pub fn with_mirror(mut self, store: Arc<DocumentStore>) -> Self {
        self.mirror = Some(store);
        self
    }

    /// Mirrors every record and gap through `store`'s write-ahead log,
    /// so traces survive a process crash. Sink failures are counted
    /// ([`Tracer::durable_errors`]) but never propagated — losing the
    /// durable copy must not lose the in-memory record too, matching
    /// the wire layer's graceful-degradation policy.
    #[must_use]
    pub fn with_durable_sink(mut self, store: Arc<DurableStore>) -> Self {
        self.durable = Some(store);
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> SimInstant {
        self.clock.now()
    }

    /// Advances the simulated clock (transport latency, device busy
    /// time, operator think time).
    pub fn advance(&mut self, delta: SimDuration) {
        self.clock.advance(delta);
    }

    /// Opens a procedure run: subsequent records are tagged with it.
    /// Also registers the run's metadata.
    pub fn begin_run(&mut self, run_id: RunId, procedure: ProcedureKind, label: Label) {
        self.run = Some(RunContext {
            procedure,
            run_id,
            label,
        });
        self.runs
            .push(RunMetadata::new(run_id, procedure, self.clock.now()).with_label(label));
    }

    /// Attaches an operator note to the most recently opened run.
    pub fn annotate_run(&mut self, note: &str) {
        if let Some(last) = self.runs.pop() {
            self.runs.push(last.with_note(note));
        }
    }

    /// Closes the active run; subsequent records are unlabelled.
    pub fn end_run(&mut self) {
        self.run = None;
    }

    /// Records one intercepted access and returns its id.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        device: DeviceId,
        command: &Command,
        mode: TraceMode,
        return_value: Value,
        exception: Option<&str>,
        response_time: SimDuration,
    ) -> TraceId {
        let id = TraceId(self.next_id);
        self.next_id += 1;
        let mut builder = TraceObject::builder(id, self.clock.now(), device, command.clone())
            .mode(mode)
            .return_value(return_value)
            .response_time(response_time);
        if let Some(ctx) = self.run {
            builder = builder.run(ctx.procedure, ctx.run_id, ctx.label);
        }
        if let Some(msg) = exception {
            builder = builder.exception(msg);
        }
        let trace = builder.build();
        if self.mirror.is_some() || self.durable.is_some() {
            let doc = json!({
                "trace_id": trace.id().0,
                "timestamp_us": trace.timestamp().as_micros(),
                "device": trace.device().kind().to_string(),
                "command": trace.command_type().mnemonic(),
                "mode": trace.mode().to_string(),
                "exception": trace.exception(),
                "response_time_us": trace.response_time().as_micros(),
            });
            // A full mirror failing must not lose the in-memory record;
            // the store only rejects non-objects, which cannot happen
            // here, so ignore the result defensively.
            if let Some(store) = &self.mirror {
                let _ = store.insert("traces", doc.clone());
            }
            if let Some(store) = &self.durable {
                if store.insert("traces", doc).is_err() {
                    self.durable_errors += 1;
                }
            }
        }
        self.traces.push(trace);
        id
    }

    /// Records a trace gap: a command that executed untraced because
    /// the middlebox was unavailable. Tagged with the active run (if
    /// any) and mirrored to the `"gaps"` collection, so the loss is as
    /// visible as a trace would have been.
    pub fn record_gap(
        &mut self,
        device: DeviceId,
        command: CommandType,
        intended_mode: TraceMode,
        reason: &str,
    ) {
        let mut gap = TraceGap::new(self.clock.now(), device, command, intended_mode, reason);
        if let Some(ctx) = self.run {
            gap = gap.with_run(ctx.run_id);
        }
        if self.mirror.is_some() || self.durable.is_some() {
            let doc = json!({
                "timestamp_us": gap.timestamp.as_micros(),
                "device": gap.device.kind().to_string(),
                "command": gap.command.mnemonic(),
                "intended_mode": gap.intended_mode.to_string(),
                "reason": gap.reason,
                "run_id": gap.run_id.map(|r| r.0),
            });
            if let Some(store) = &self.mirror {
                let _ = store.insert("gaps", doc.clone());
            }
            if let Some(store) = &self.durable {
                if store.insert("gaps", doc).is_err() {
                    self.durable_errors += 1;
                }
            }
        }
        self.gaps.push(gap);
    }

    /// Flushes the durable sink's write-ahead log, making every record
    /// so far crash-proof. A no-op without a durable sink.
    ///
    /// # Errors
    ///
    /// Returns [`rad_core::RadError::Store`] when the fsync fails.
    pub fn sync_durable(&self) -> Result<(), rad_core::RadError> {
        match &self.durable {
            Some(store) => store.sync(),
            None => Ok(()),
        }
    }

    /// How many records failed to reach the durable sink (counted, not
    /// propagated — mirroring the wire layer's degradation policy).
    pub fn durable_errors(&self) -> u64 {
        self.durable_errors
    }

    /// The trace gaps recorded so far.
    pub fn gaps(&self) -> &[TraceGap] {
        &self.gaps
    }

    /// Number of records captured so far.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether no records have been captured.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// A read-only view of the captured records.
    pub fn traces(&self) -> &[TraceObject] {
        &self.traces
    }

    /// Metadata of the runs opened so far.
    pub fn runs(&self) -> &[RunMetadata] {
        &self.runs
    }

    /// Consumes the tracer into the curated command dataset, trace
    /// gaps included.
    pub fn into_dataset(self) -> CommandDataset {
        CommandDataset::from_parts(self.traces, self.runs).with_gaps(self.gaps)
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rad_core::{CommandType, DeviceKind};

    fn record_one(tracer: &mut Tracer, ct: CommandType) -> TraceId {
        tracer.record(
            DeviceId::primary(ct.device()),
            &Command::nullary(ct),
            TraceMode::Remote,
            Value::Unit,
            None,
            SimDuration::from_millis(5),
        )
    }

    #[test]
    fn ids_and_timestamps_are_monotone() {
        let mut tracer = Tracer::new();
        let a = record_one(&mut tracer, CommandType::Arm);
        tracer.advance(SimDuration::from_millis(100));
        let b = record_one(&mut tracer, CommandType::Mvng);
        assert!(b > a);
        let traces = tracer.traces();
        assert!(traces[1].timestamp() > traces[0].timestamp());
    }

    #[test]
    fn run_context_labels_traces() {
        let mut tracer = Tracer::new();
        record_one(&mut tracer, CommandType::Arm);
        tracer.begin_run(RunId(3), ProcedureKind::CrystalSolubility, Label::Benign);
        record_one(&mut tracer, CommandType::TecanGetStatus);
        tracer.end_run();
        record_one(&mut tracer, CommandType::Arm);
        let ds = tracer.into_dataset();
        assert_eq!(ds.traces()[0].run_id(), None);
        assert_eq!(ds.traces()[1].run_id(), Some(RunId(3)));
        assert_eq!(ds.traces()[1].procedure(), ProcedureKind::CrystalSolubility);
        assert_eq!(ds.traces()[2].run_id(), None);
        assert_eq!(ds.runs().len(), 1);
    }

    #[test]
    fn annotate_attaches_note_to_latest_run() {
        let mut tracer = Tracer::new();
        tracer.begin_run(RunId(0), ProcedureKind::JoystickMovements, Label::Benign);
        tracer.annotate_run("operator wiggled the joystick");
        let ds = tracer.into_dataset();
        assert_eq!(
            ds.runs()[0].operator_note(),
            Some("operator wiggled the joystick")
        );
    }

    #[test]
    fn mirror_receives_every_record() {
        let store = Arc::new(DocumentStore::new());
        let mut tracer = Tracer::new().with_mirror(Arc::clone(&store));
        record_one(&mut tracer, CommandType::Arm);
        record_one(&mut tracer, CommandType::TecanGetStatus);
        assert_eq!(store.count("traces", &rad_store::Filter::all()), 2);
    }

    #[test]
    fn gaps_inherit_run_context_and_reach_the_mirror() {
        let store = Arc::new(DocumentStore::new());
        let mut tracer = Tracer::new().with_mirror(Arc::clone(&store));
        tracer.begin_run(RunId(7), ProcedureKind::JoystickMovements, Label::Benign);
        tracer.record_gap(
            DeviceId::primary(DeviceKind::C9),
            CommandType::Arm,
            TraceMode::Remote,
            "middlebox unavailable",
        );
        tracer.end_run();
        tracer.record_gap(
            DeviceId::primary(DeviceKind::Ika),
            CommandType::InitIka,
            TraceMode::Remote,
            "middlebox unavailable",
        );
        assert_eq!(tracer.gaps().len(), 2);
        assert_eq!(tracer.gaps()[0].run_id, Some(RunId(7)));
        assert_eq!(tracer.gaps()[1].run_id, None);
        assert_eq!(store.count("gaps", &rad_store::Filter::all()), 2);
        let ds = tracer.into_dataset();
        assert_eq!(ds.gaps().len(), 2);
    }

    #[test]
    fn durable_sink_survives_reopen() {
        use rad_store::{DurableOptions, Filter};
        let dir = std::env::temp_dir().join(format!("rad-tracer-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (durable, _) = DurableStore::open(&dir, DurableOptions::default()).unwrap();
            let mut tracer = Tracer::new().with_durable_sink(Arc::new(durable));
            record_one(&mut tracer, CommandType::Arm);
            record_one(&mut tracer, CommandType::Mvng);
            tracer.record_gap(
                DeviceId::primary(DeviceKind::C9),
                CommandType::Arm,
                TraceMode::Remote,
                "middlebox unavailable",
            );
            assert_eq!(tracer.durable_errors(), 0);
            tracer.sync_durable().unwrap();
        }
        // A fresh process recovers every record from the log.
        let (durable, report) = DurableStore::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(report.records_replayed, 3);
        assert_eq!(durable.count("traces", &Filter::all()), 2);
        assert_eq!(durable.count("gaps", &Filter::all()), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_sink_failures_degrade_gracefully() {
        use rad_store::{CrashPlan, CrashSite, DurableOptions};
        let dir = std::env::temp_dir().join(format!("rad-tracer-degrade-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = DurableOptions {
            crash_plan: Some(CrashPlan::at(CrashSite::MidRecord, 1)),
            ..DurableOptions::default()
        };
        let (durable, _) = DurableStore::open(&dir, opts).unwrap();
        let mut tracer = Tracer::new().with_durable_sink(Arc::new(durable));
        for _ in 0..4 {
            record_one(&mut tracer, CommandType::Mvng);
        }
        // The sink died on the second insert and stayed poisoned; the
        // in-memory record kept every trace regardless.
        assert_eq!(tracer.len(), 4);
        assert_eq!(tracer.durable_errors(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exceptions_are_recorded() {
        let mut tracer = Tracer::new();
        tracer.record(
            DeviceId::primary(DeviceKind::Quantos),
            &Command::nullary(CommandType::StartDosing),
            TraceMode::Direct,
            Value::Unit,
            Some("collision with ur3e arm"),
            SimDuration::from_millis(4),
        );
        assert_eq!(
            tracer.traces()[0].exception(),
            Some("collision with ur3e arm")
        );
    }
}
