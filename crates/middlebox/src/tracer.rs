//! The trace pipeline: timestamps, ids, labels, and sinks.
//!
//! For every intercepted access RATracer logs "timestamp, function,
//! arguments, return values, exceptions" (Fig. 3). [`Tracer`] owns the
//! simulated clock and the trace-id counter, stamps each access, tags
//! it with the active procedure run (if any), and emits the record
//! into a columnar [`TraceBatch`] plus an arbitrary [`TraceSink`]
//! stack. The legacy destinations — a [`DocumentStore`] mirror and a
//! durable WAL — are just sinks now ([`crate::sinks`]), composed with
//! `tee` instead of held as bespoke fields.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use rad_core::{
    Command, CommandType, DeviceId, DeviceKind, Label, ProcedureKind, RunId, RunMetadata, SimClock,
    SimDuration, SimInstant, Tee, TraceBatch, TraceGap, TraceId, TraceMode, TraceObject, TraceSink,
    Value,
};
use rad_store::{CommandDataset, DocumentStore, DurableStore};

use crate::sinks::{DurableSink, MirrorSink};

/// The active procedure-run context applied to new traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RunContext {
    procedure: ProcedureKind,
    run_id: RunId,
    label: Label,
}

/// Stamps, labels, and stores trace objects.
pub struct Tracer {
    clock: SimClock,
    next_id: u64,
    run: Option<RunContext>,
    batch: TraceBatch,
    scratch: TraceBatch,
    runs: Vec<RunMetadata>,
    gaps: Vec<TraceGap>,
    sink: Option<Box<dyn TraceSink + Send>>,
    sink_errors: u64,
    total_recorded: u64,
    device_counts: BTreeMap<DeviceKind, u64>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("now", &self.clock.now())
            .field("next_id", &self.next_id)
            .field("buffered", &self.batch.len())
            .field("total_recorded", &self.total_recorded)
            .field("runs", &self.runs.len())
            .field("gaps", &self.gaps.len())
            .field("has_sink", &self.sink.is_some())
            .field("sink_errors", &self.sink_errors)
            .finish()
    }
}

impl Tracer {
    /// A tracer starting at the campaign epoch.
    pub fn new() -> Self {
        Tracer {
            clock: SimClock::new(),
            next_id: 0,
            run: None,
            batch: TraceBatch::new(),
            scratch: TraceBatch::with_capacity(1),
            runs: Vec::new(),
            gaps: Vec::new(),
            sink: None,
            sink_errors: 0,
            total_recorded: 0,
            device_counts: BTreeMap::new(),
        }
    }

    /// Attaches `sink` to the emit path: every record (as a singleton
    /// batch), gap, and completed run flows into it. A second call
    /// tees the stacks — both sinks receive every payload.
    #[must_use]
    pub fn with_sink(mut self, sink: Box<dyn TraceSink + Send>) -> Self {
        self.sink = Some(match self.sink.take() {
            None => sink,
            Some(existing) => Box::new(Tee::new(existing, sink)),
        });
        self
    }

    /// Mirrors every record into `store` (collection `"traces"`), like
    /// RATracer's MongoDB sink. Sugar for
    /// [`Tracer::with_sink`]`(MirrorSink::new(store))`.
    #[must_use]
    pub fn with_mirror(self, store: Arc<DocumentStore>) -> Self {
        self.with_sink(Box::new(MirrorSink::new(store)))
    }

    /// Mirrors every record and gap through `store`'s write-ahead log,
    /// so traces survive a process crash. Sink failures are counted
    /// ([`Tracer::durable_errors`]) but never propagated — losing the
    /// durable copy must not lose the in-memory record too, matching
    /// the wire layer's graceful-degradation policy. Sugar for
    /// [`Tracer::with_sink`]`(DurableSink::new(store))`.
    #[must_use]
    pub fn with_durable_sink(self, store: Arc<DurableStore>) -> Self {
        self.with_sink(Box::new(DurableSink::new(store)))
    }

    /// Current simulated time.
    pub fn now(&self) -> SimInstant {
        self.clock.now()
    }

    /// Advances the simulated clock (transport latency, device busy
    /// time, operator think time).
    pub fn advance(&mut self, delta: SimDuration) {
        self.clock.advance(delta);
    }

    /// Opens a procedure run: subsequent records are tagged with it.
    /// Also registers the run's metadata.
    pub fn begin_run(&mut self, run_id: RunId, procedure: ProcedureKind, label: Label) {
        self.run = Some(RunContext {
            procedure,
            run_id,
            label,
        });
        self.runs
            .push(RunMetadata::new(run_id, procedure, self.clock.now()).with_label(label));
    }

    /// Attaches an operator note to the most recently opened run.
    pub fn annotate_run(&mut self, note: &str) {
        if let Some(last) = self.runs.pop() {
            self.runs.push(last.with_note(note));
        }
    }

    /// Closes the active run; subsequent records are unlabelled. The
    /// completed run's metadata (notes included) is forwarded to the
    /// sink stack.
    pub fn end_run(&mut self) {
        if let Some(ctx) = self.run.take() {
            if let Some(sink) = &mut self.sink {
                if let Some(meta) = self.runs.iter().rev().find(|r| r.run_id() == ctx.run_id) {
                    if sink.accept_run(meta).is_err() {
                        self.sink_errors += 1;
                    }
                }
            }
        }
    }

    /// Records one intercepted access and returns its id.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        device: DeviceId,
        command: &Command,
        mode: TraceMode,
        return_value: Value,
        exception: Option<&str>,
        response_time: SimDuration,
    ) -> TraceId {
        let id = TraceId(self.next_id);
        self.next_id += 1;
        let mut builder = TraceObject::builder(id, self.clock.now(), device, command.clone())
            .mode(mode)
            .return_value(return_value)
            .response_time(response_time);
        if let Some(ctx) = self.run {
            builder = builder.run(ctx.procedure, ctx.run_id, ctx.label);
        }
        if let Some(msg) = exception {
            builder = builder.exception(msg);
        }
        let trace = builder.build();
        self.total_recorded += 1;
        *self.device_counts.entry(device.kind()).or_insert(0) += 1;
        if let Some(sink) = &mut self.sink {
            // Per-record emission keeps the mirror visible immediately
            // (tests and live inspection rely on it); the scratch batch
            // is reused so the hot path never allocates columns.
            self.scratch.clear();
            self.scratch.push(&trace);
            if sink.accept(&self.scratch).is_err() {
                self.sink_errors += 1;
            }
        }
        self.batch.push_owned(trace);
        id
    }

    /// Records a trace gap: a command that executed untraced because
    /// the middlebox was unavailable. Tagged with the active run (if
    /// any) and forwarded to the sink stack (the mirror's `"gaps"`
    /// collection), so the loss is as visible as a trace would have
    /// been.
    pub fn record_gap(
        &mut self,
        device: DeviceId,
        command: CommandType,
        intended_mode: TraceMode,
        reason: &str,
    ) {
        let mut gap = TraceGap::new(
            self.clock.now(),
            device,
            command,
            intended_mode,
            TraceGap::intern_reason(reason),
        );
        if let Some(ctx) = self.run {
            gap = gap.with_run(ctx.run_id);
        }
        if let Some(sink) = &mut self.sink {
            if sink.accept_gap(&gap).is_err() {
                self.sink_errors += 1;
            }
        }
        self.gaps.push(gap);
    }

    /// Flushes the sink stack (durable WAL fsync, buffered chunks),
    /// making every record so far crash-proof. A no-op without a sink.
    ///
    /// # Errors
    ///
    /// Returns [`rad_core::RadError::Store`] when the flush fails.
    pub fn sync_durable(&mut self) -> Result<(), rad_core::RadError> {
        match &mut self.sink {
            Some(sink) => sink.flush(),
            None => Ok(()),
        }
    }

    /// Signals end-of-stream to the sink stack: streaming detector
    /// stages deliver their run-end verdicts here, buffered chunks
    /// flush, durable sinks seal. A no-op without a sink. The tracer
    /// remains usable afterwards (a fresh sink can be attached, or
    /// recording can continue unsinked).
    ///
    /// # Errors
    ///
    /// Propagates the sink's failure.
    pub fn finish_sink(&mut self) -> Result<(), rad_core::RadError> {
        match self.sink.take() {
            Some(mut sink) => sink.finish(),
            None => Ok(()),
        }
    }

    /// How many payloads failed to reach the sink stack (counted, not
    /// propagated — mirroring the wire layer's degradation policy).
    pub fn durable_errors(&self) -> u64 {
        self.sink_errors
    }

    /// The trace gaps recorded so far.
    pub fn gaps(&self) -> &[TraceGap] {
        &self.gaps
    }

    /// Number of records currently buffered (equal to
    /// [`Tracer::total_recorded`] unless [`Tracer::drain_batch`] has
    /// been used).
    pub fn len(&self) -> usize {
        self.batch.len()
    }

    /// Whether no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// Total records captured over the tracer's lifetime, drained or
    /// not.
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// Lifetime record count for one device — O(1), maintained on the
    /// emit path so campaign fillers never rescan the trace log.
    pub fn device_count(&self, kind: DeviceKind) -> u64 {
        self.device_counts.get(&kind).copied().unwrap_or(0)
    }

    /// The buffered records, materialized as rows.
    pub fn traces(&self) -> Vec<TraceObject> {
        self.batch.to_traces()
    }

    /// The buffered records, columnar.
    pub fn batch(&self) -> &TraceBatch {
        &self.batch
    }

    /// Metadata of the runs opened so far.
    pub fn runs(&self) -> &[RunMetadata] {
        &self.runs
    }

    /// Takes the buffered batch, leaving the tracer empty but with
    /// ids, counters, and run context intact — the streaming hand-off
    /// for bounded-memory campaigns.
    pub fn drain_batch(&mut self) -> TraceBatch {
        std::mem::take(&mut self.batch)
    }

    /// Consumes the tracer into the curated command dataset, trace
    /// gaps included.
    pub fn into_dataset(self) -> CommandDataset {
        CommandDataset::from_batch(self.batch, self.runs).with_gaps(self.gaps)
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rad_core::{CommandType, DeviceKind};

    fn record_one(tracer: &mut Tracer, ct: CommandType) -> TraceId {
        tracer.record(
            DeviceId::primary(ct.device()),
            &Command::nullary(ct),
            TraceMode::Remote,
            Value::Unit,
            None,
            SimDuration::from_millis(5),
        )
    }

    #[test]
    fn ids_and_timestamps_are_monotone() {
        let mut tracer = Tracer::new();
        let a = record_one(&mut tracer, CommandType::Arm);
        tracer.advance(SimDuration::from_millis(100));
        let b = record_one(&mut tracer, CommandType::Mvng);
        assert!(b > a);
        let traces = tracer.traces();
        assert!(traces[1].timestamp() > traces[0].timestamp());
    }

    #[test]
    fn run_context_labels_traces() {
        let mut tracer = Tracer::new();
        record_one(&mut tracer, CommandType::Arm);
        tracer.begin_run(RunId(3), ProcedureKind::CrystalSolubility, Label::Benign);
        record_one(&mut tracer, CommandType::TecanGetStatus);
        tracer.end_run();
        record_one(&mut tracer, CommandType::Arm);
        let ds = tracer.into_dataset();
        assert_eq!(ds.traces()[0].run_id(), None);
        assert_eq!(ds.traces()[1].run_id(), Some(RunId(3)));
        assert_eq!(ds.traces()[1].procedure(), ProcedureKind::CrystalSolubility);
        assert_eq!(ds.traces()[2].run_id(), None);
        assert_eq!(ds.runs().len(), 1);
    }

    #[test]
    fn annotate_attaches_note_to_latest_run() {
        let mut tracer = Tracer::new();
        tracer.begin_run(RunId(0), ProcedureKind::JoystickMovements, Label::Benign);
        tracer.annotate_run("operator wiggled the joystick");
        let ds = tracer.into_dataset();
        assert_eq!(
            ds.runs()[0].operator_note(),
            Some("operator wiggled the joystick")
        );
    }

    #[test]
    fn mirror_receives_every_record() {
        let store = Arc::new(DocumentStore::new());
        let mut tracer = Tracer::new().with_mirror(Arc::clone(&store));
        record_one(&mut tracer, CommandType::Arm);
        record_one(&mut tracer, CommandType::TecanGetStatus);
        assert_eq!(store.count("traces", &rad_store::Filter::all()), 2);
    }

    #[test]
    fn gaps_inherit_run_context_and_reach_the_mirror() {
        let store = Arc::new(DocumentStore::new());
        let mut tracer = Tracer::new().with_mirror(Arc::clone(&store));
        tracer.begin_run(RunId(7), ProcedureKind::JoystickMovements, Label::Benign);
        tracer.record_gap(
            DeviceId::primary(DeviceKind::C9),
            CommandType::Arm,
            TraceMode::Remote,
            "middlebox unavailable",
        );
        tracer.end_run();
        tracer.record_gap(
            DeviceId::primary(DeviceKind::Ika),
            CommandType::InitIka,
            TraceMode::Remote,
            "middlebox unavailable",
        );
        assert_eq!(tracer.gaps().len(), 2);
        assert_eq!(tracer.gaps()[0].run_id, Some(RunId(7)));
        assert_eq!(tracer.gaps()[1].run_id, None);
        assert_eq!(store.count("gaps", &rad_store::Filter::all()), 2);
        let ds = tracer.into_dataset();
        assert_eq!(ds.gaps().len(), 2);
    }

    #[test]
    fn durable_sink_survives_reopen() {
        use rad_store::{DurableOptions, Filter};
        let dir = std::env::temp_dir().join(format!("rad-tracer-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (durable, _) = DurableStore::open(&dir, DurableOptions::default()).unwrap();
            let mut tracer = Tracer::new().with_durable_sink(Arc::new(durable));
            record_one(&mut tracer, CommandType::Arm);
            record_one(&mut tracer, CommandType::Mvng);
            tracer.record_gap(
                DeviceId::primary(DeviceKind::C9),
                CommandType::Arm,
                TraceMode::Remote,
                "middlebox unavailable",
            );
            assert_eq!(tracer.durable_errors(), 0);
            tracer.sync_durable().unwrap();
        }
        // A fresh process recovers every record from the log.
        let (durable, report) = DurableStore::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(report.records_replayed, 3);
        assert_eq!(durable.count("traces", &Filter::all()), 2);
        assert_eq!(durable.count("gaps", &Filter::all()), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_sink_failures_degrade_gracefully() {
        use rad_store::{CrashPlan, CrashSite, DurableOptions};
        let dir = std::env::temp_dir().join(format!("rad-tracer-degrade-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = DurableOptions {
            crash_plan: Some(CrashPlan::at(CrashSite::MidRecord, 1)),
            ..DurableOptions::default()
        };
        let (durable, _) = DurableStore::open(&dir, opts).unwrap();
        let mut tracer = Tracer::new().with_durable_sink(Arc::new(durable));
        for _ in 0..4 {
            record_one(&mut tracer, CommandType::Mvng);
        }
        // The sink died on the second insert and stayed poisoned; the
        // in-memory record kept every trace regardless.
        assert_eq!(tracer.len(), 4);
        assert_eq!(tracer.durable_errors(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mirror_and_durable_tee_both_receive_records() {
        use rad_store::{DurableOptions, Filter};
        let dir = std::env::temp_dir().join(format!("rad-tracer-tee-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (durable, _) = DurableStore::open(&dir, DurableOptions::default()).unwrap();
        let mirror = Arc::new(DocumentStore::new());
        let durable = Arc::new(durable);
        let mut tracer = Tracer::new()
            .with_mirror(Arc::clone(&mirror))
            .with_durable_sink(Arc::clone(&durable));
        record_one(&mut tracer, CommandType::Arm);
        record_one(&mut tracer, CommandType::Mvng);
        assert_eq!(mirror.count("traces", &Filter::all()), 2);
        assert_eq!(durable.count("traces", &Filter::all()), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_batch_preserves_ids_and_counters() {
        let mut tracer = Tracer::new();
        record_one(&mut tracer, CommandType::Arm);
        record_one(&mut tracer, CommandType::TecanGetStatus);
        let first = tracer.drain_batch();
        assert_eq!(first.len(), 2);
        assert!(tracer.is_empty());
        assert_eq!(tracer.total_recorded(), 2);
        let id = record_one(&mut tracer, CommandType::Mvng);
        assert_eq!(id, TraceId(2), "ids keep counting across drains");
        assert_eq!(tracer.device_count(DeviceKind::C9), 2);
        assert_eq!(tracer.device_count(DeviceKind::Tecan), 1);
    }

    #[test]
    fn live_teed_streaming_detector_matches_replay_and_batch_verdicts() {
        use rad_analysis::{AlertPolicy, PerplexityDetector, StreamingPerplexity};
        use rad_core::sink::{SliceSource, TraceSource};
        use rad_core::SharedAlerts;

        // A tiny grammar: benign traffic alternates ARM/MVNG.
        let benign: Vec<Vec<CommandType>> = (0..4)
            .map(|i| {
                (0..8 + 2 * i)
                    .map(|j| {
                        if j % 2 == 0 {
                            CommandType::Arm
                        } else {
                            CommandType::Mvng
                        }
                    })
                    .collect()
            })
            .collect();
        let det = PerplexityDetector::new(2).fit(&benign, &benign).unwrap();
        let runs: [Vec<CommandType>; 2] = [
            benign[0].clone(),
            vec![CommandType::TecanGetStatus; 12], // out-of-grammar
        ];

        // Live: every record tees into the stage as it is captured.
        let live = SharedAlerts::new();
        let stage = StreamingPerplexity::new(&det, AlertPolicy::RunEnd, live.clone());
        let mut tracer = Tracer::new().with_sink(Box::new(stage));
        for (i, run) in runs.iter().enumerate() {
            tracer.begin_run(RunId(i as u32), ProcedureKind::Unknown, Label::Unknown);
            for &ct in run {
                record_one(&mut tracer, ct);
                tracer.advance(SimDuration::from_millis(10));
            }
            tracer.end_run();
        }
        tracer.finish_sink().unwrap();
        assert_eq!(tracer.durable_errors(), 0);

        // Replay the captured dataset through a fresh stage, chunked
        // differently on purpose.
        let ds = tracer.into_dataset();
        let traces = ds.traces();
        let mut replayed = StreamingPerplexity::new(&det, AlertPolicy::RunEnd, Vec::new());
        let mut source = SliceSource::new(&traces, 3);
        while let Some(batch) = source.next_batch().unwrap() {
            replayed.accept(&batch).unwrap();
        }
        replayed.finish().unwrap();

        let live_alerts = live.snapshot();
        assert_eq!(live_alerts, replayed.into_sink());

        // And both agree with the batch detector's verdict per run.
        for (i, run) in runs.iter().enumerate() {
            let alarmed = live_alerts
                .iter()
                .any(|a| a.run_id == Some(RunId(i as u32)));
            assert_eq!(alarmed, det.is_anomalous(run).unwrap(), "run {i}");
        }
        assert!(
            live_alerts.iter().any(|a| a.run_id == Some(RunId(1))),
            "the out-of-grammar run must alarm"
        );
    }

    #[test]
    fn exceptions_are_recorded() {
        let mut tracer = Tracer::new();
        tracer.record(
            DeviceId::primary(DeviceKind::Quantos),
            &Command::nullary(CommandType::StartDosing),
            TraceMode::Direct,
            Value::Unit,
            Some("collision with ur3e arm"),
            SimDuration::from_millis(4),
        );
        assert_eq!(
            tracer.traces()[0].exception(),
            Some("collision with ur3e arm")
        );
    }
}
