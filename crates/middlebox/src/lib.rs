//! RATracer, reproduced: interception, the trusted middlebox, and the
//! trace pipeline.
//!
//! The original RATracer virtualizes the Python classes on the data
//! collection boundary (monkey patching), relays every device command
//! through a trusted middlebox over gRPC, and logs every access. This
//! crate reproduces that architecture in Rust:
//!
//! - [`LatencyModel`] — per-hop latency distributions calibrated to the
//!   paper's Fig. 4 (DIRECT < 10 ms, REMOTE ≈ DIRECT + 2 ms with an
//!   occasional > 30 ms tail, CLOUD ≈ 60 ms).
//! - [`rpc`] — a genuinely threaded RPC substrate: length-prefixed
//!   frames over in-process duplex transports, a server thread that
//!   owns the device rig, and a blocking client with timeouts. This is
//!   the gRPC substitute.
//! - [`Middlebox`] — the deterministic simulation path used by the
//!   dataset synthesizer: it routes commands per-device according to a
//!   [`ModeConfig`] (DIRECT / REMOTE / CLOUD, hybrids allowed, exactly
//!   as §III describes), samples transport latency, executes on the
//!   simulated rig, and logs a [`rad_core::TraceObject`] for every
//!   access — including faults, which surface as logged exceptions.
//! - [`faults`] — seeded, deterministic fault injection for the relay
//!   path: a [`FaultPlan`] schedules drop / duplicate / reorder /
//!   corrupt / delay / disconnect events per chunk, a
//!   [`FaultyDuplex`] applies them to a live transport, and the client,
//!   server, and [`Middlebox`] recover via retries, idempotent replay,
//!   and DIRECT-fallback with [`rad_core::TraceGap`] markers.
//! - [`server`] — the lab service: the same framed protocol over real
//!   TCP and Unix-domain sockets, with a bounded worker pool, typed
//!   admission control, per-tenant durable sink stacks behind bounded
//!   backpressure channels, deadline propagation, idle reaping,
//!   quarantine, and graceful zero-loss drain.
//! - [`PowerMonitor`] — the 25 Hz UR3e power monitor of Fig. 3
//!   (bottom).
//!
//! # Examples
//!
//! ```
//! use rad_core::{Command, CommandType};
//! use rad_middlebox::Middlebox;
//!
//! let mut mb = Middlebox::new(1);
//! mb.issue(&Command::nullary(CommandType::InitC9))?;
//! mb.issue(&Command::nullary(CommandType::Home))?;
//! let dataset = mb.into_dataset();
//! assert_eq!(dataset.len(), 2);
//! # Ok::<(), rad_core::RadError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod faults;
pub mod guard;
pub mod latency;
pub mod middlebox;
pub mod monitor;
pub mod rpc;
pub mod server;
pub mod sinks;
pub mod tracer;
pub mod wire;

pub use cluster::{RpcCluster, ShardPlan};
pub use faults::{
    FaultPlan, FaultProfile, FaultSpec, FaultStats, FaultStatsSnapshot, Faulty, FaultyDuplex, Lane,
    WireFault,
};
pub use guard::{Alert, GuardPolicy, GuardedMiddlebox, Violation};
pub use latency::LatencyModel;
pub use middlebox::{IssueOutcome, Middlebox, ModeConfig};
pub use monitor::PowerMonitor;
pub use server::{
    CollectingSink, DrainReport, LabService, ReplyFrame, ServerConfig, ServerHandle, ServerStats,
    ServerStatsSnapshot, SinkFactory, SocketTransport, TenantDrain, TenantSinkStack, WireFrame,
    WireReply, WireRequest,
};
pub use sinks::{DurableSink, MirrorSink};
pub use tracer::Tracer;
pub use wire::WireCodecKind;
