//! The 25 Hz UR3e power monitor (Fig. 3, bottom).
//!
//! The original RATracer runs a small Python loop that polls the
//! UR3e's RTDE interface at 25 Hz and appends each sample to the power
//! log. [`PowerMonitor`] is the simulated counterpart: workloads tell
//! it which trajectory the arm executed (and with what payload), and
//! it synthesizes the telemetry via [`rad_power`] and accumulates the
//! power dataset, applying the quiescent-storage policy of §IV.

use rad_core::{ProcedureKind, RunId};
use rad_power::{CurrentProfile, TrajectorySegment, Ur3e};
use rad_store::{PowerDataset, PowerRecording};

/// Accumulates UR3e telemetry recordings into a [`PowerDataset`].
#[derive(Debug)]
pub struct PowerMonitor {
    arm: Ur3e,
    dataset: PowerDataset,
    seed: u64,
    store_quiescent: bool,
    recordings: u32,
    suspended: bool,
    missed: u32,
}

impl PowerMonitor {
    /// A monitor over the default arm model; quiescent ticks are
    /// stored (the "days with some activity" policy).
    pub fn new(seed: u64) -> Self {
        PowerMonitor {
            arm: Ur3e::new(),
            dataset: PowerDataset::new(),
            seed,
            store_quiescent: true,
            recordings: 0,
            suspended: false,
            missed: 0,
        }
    }

    /// Suspends recording — the monitor loop runs on the middlebox, so
    /// an outage silences it. Suspended recordings are counted as
    /// missed, the power-log analogue of a trace gap.
    pub fn suspend(&mut self) {
        self.suspended = true;
    }

    /// Resumes recording after an outage.
    pub fn resume(&mut self) {
        self.suspended = false;
    }

    /// Whether the monitor is currently suspended.
    pub fn is_suspended(&self) -> bool {
        self.suspended
    }

    /// How many recordings were lost while suspended.
    pub fn missed(&self) -> u32 {
        self.missed
    }

    /// A monitor with a custom arm model (ablations).
    pub fn with_arm(mut self, arm: Ur3e) -> Self {
        self.arm = arm;
        self
    }

    /// Configures whether quiescent ticks are stored.
    #[must_use]
    pub fn store_quiescent(mut self, keep: bool) -> Self {
        self.store_quiescent = keep;
        self
    }

    /// The arm model in use.
    pub fn arm(&self) -> &Ur3e {
        &self.arm
    }

    /// Records the telemetry of one executed trajectory.
    ///
    /// Returns the profile for immediate analysis; the same profile is
    /// appended to the dataset.
    pub fn record_motion(
        &mut self,
        procedure: ProcedureKind,
        run_id: RunId,
        description: &str,
        segments: &[TrajectorySegment],
        payload_kg: f64,
    ) -> CurrentProfile {
        let seed = self.seed.wrapping_add(u64::from(self.recordings));
        self.recordings += 1;
        let profile = self.arm.current_profile(segments, payload_kg, seed);
        if self.suspended {
            self.missed += 1;
            return profile;
        }
        let stored = if self.store_quiescent {
            profile.clone()
        } else {
            CurrentProfile::from_samples(
                profile
                    .samples()
                    .iter()
                    .filter(|s| !s.is_quiescent())
                    .cloned()
                    .collect(),
            )
        };
        self.dataset.push(PowerRecording {
            procedure,
            run_id,
            description: description.to_owned(),
            profile: stored,
        });
        profile
    }

    /// Records a quiescent stretch (the arm parked), honouring the
    /// storage policy.
    pub fn record_idle(
        &mut self,
        procedure: ProcedureKind,
        run_id: RunId,
        pose: [f64; rad_power::JOINTS],
        ticks: usize,
    ) {
        if !self.store_quiescent {
            return;
        }
        if self.suspended {
            self.missed += 1;
            return;
        }
        let seed = self.seed.wrapping_add(u64::from(self.recordings));
        self.recordings += 1;
        let profile = self.arm.quiescent_profile(pose, ticks, seed);
        self.dataset.push(PowerRecording {
            procedure,
            run_id,
            description: "quiescent".to_owned(),
            profile,
        });
    }

    /// Number of recordings captured.
    pub fn len(&self) -> usize {
        self.dataset.recordings().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.dataset.recordings().is_empty()
    }

    /// Finishes monitoring, yielding the power dataset.
    pub fn into_dataset(self) -> PowerDataset {
        self.dataset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg() -> TrajectorySegment {
        TrajectorySegment::joint_move(Ur3e::named_pose(0), Ur3e::named_pose(1), 1.0)
    }

    #[test]
    fn record_motion_appends_to_dataset() {
        let mut mon = PowerMonitor::new(0);
        let profile = mon.record_motion(
            ProcedureKind::VelocitySweep,
            RunId(0),
            "v=1.0rad/s",
            &[seg()],
            0.0,
        );
        assert!(!profile.is_empty());
        let ds = mon.into_dataset();
        assert_eq!(ds.recordings().len(), 1);
        assert_eq!(ds.recordings()[0].description, "v=1.0rad/s");
        assert_eq!(ds.recordings()[0].profile.len(), profile.len());
    }

    #[test]
    fn quiescent_policy_drops_idle_ticks() {
        let mut mon = PowerMonitor::new(0).store_quiescent(false);
        mon.record_idle(ProcedureKind::Unknown, RunId(0), Ur3e::named_pose(0), 100);
        assert!(
            mon.is_empty(),
            "idle stretches are not stored under the strict policy"
        );
        let kept = mon.record_motion(ProcedureKind::Unknown, RunId(0), "move", &[seg()], 0.0);
        let ds = mon.into_dataset();
        assert!(ds.recordings()[0].profile.len() <= kept.len());
    }

    #[test]
    fn suspension_counts_missed_recordings() {
        let mut mon = PowerMonitor::new(0);
        mon.suspend();
        assert!(mon.is_suspended());
        mon.record_motion(
            ProcedureKind::VelocitySweep,
            RunId(0),
            "lost",
            &[seg()],
            0.0,
        );
        mon.record_idle(ProcedureKind::Unknown, RunId(0), Ur3e::named_pose(0), 10);
        assert!(mon.is_empty(), "suspended recordings are not stored");
        assert_eq!(mon.missed(), 2);
        mon.resume();
        mon.record_motion(
            ProcedureKind::VelocitySweep,
            RunId(1),
            "kept",
            &[seg()],
            0.0,
        );
        assert_eq!(mon.len(), 1);
        assert_eq!(mon.missed(), 2);
    }

    #[test]
    fn successive_recordings_use_fresh_noise() {
        let mut mon = PowerMonitor::new(7);
        let a = mon.record_motion(ProcedureKind::VelocitySweep, RunId(0), "a", &[seg()], 0.0);
        let b = mon.record_motion(ProcedureKind::VelocitySweep, RunId(1), "b", &[seg()], 0.0);
        assert_ne!(
            a.joint_current(1),
            b.joint_current(1),
            "noise differs across recordings"
        );
    }
}
