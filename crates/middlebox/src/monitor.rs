//! The 25 Hz UR3e power monitor (Fig. 3, bottom).
//!
//! The original RATracer runs a small Python loop that polls the
//! UR3e's RTDE interface at 25 Hz and appends each sample to the power
//! log. [`PowerMonitor`] is the simulated counterpart: workloads tell
//! it which trajectory the arm executed (and with what payload), and
//! it synthesizes the telemetry via [`rad_power`] and accumulates the
//! power dataset, applying the quiescent-storage policy of §IV.
//!
//! Recording is *deferred*: `record_motion`/`record_idle` only capture
//! the trajectory and the noise seed (derived from the recording
//! counter at call time, so the seed stream is identical to the old
//! synthesize-on-record monitor). Synthesis happens once, at drain
//! time, which lets independent motion recordings fan out across cores
//! via [`Ur3e::current_profiles_par`] while staying bit-identical to
//! sequential capture.

use rad_core::{ProcedureKind, RadError, RunId};
use rad_power::{
    CurrentProfile, Filtered, PowerSink, PowerSource, ProfileRequest, RecordingMeta,
    TrajectorySegment, Ur3e, DEFAULT_CHUNK_TICKS,
};
use rad_store::PowerDataset;

/// What one pending recording captured — replayed into telemetry at
/// drain time.
#[derive(Debug, Clone)]
enum Capture {
    Motion {
        segments: Vec<TrajectorySegment>,
        payload_kg: f64,
    },
    Idle {
        pose: [f64; rad_power::JOINTS],
        ticks: usize,
    },
}

/// A recording the monitor has accepted but not yet synthesized.
#[derive(Debug, Clone)]
struct Pending {
    procedure: ProcedureKind,
    run_id: RunId,
    description: String,
    seed: u64,
    capture: Capture,
}

/// Accumulates UR3e telemetry recordings into a [`PowerDataset`].
#[derive(Debug)]
pub struct PowerMonitor {
    arm: Ur3e,
    pending: Vec<Pending>,
    seed: u64,
    store_quiescent: bool,
    recordings: u32,
    suspended: bool,
    missed: u32,
}

impl PowerMonitor {
    /// A monitor over the default arm model; quiescent ticks are
    /// stored (the "days with some activity" policy).
    pub fn new(seed: u64) -> Self {
        PowerMonitor {
            arm: Ur3e::new(),
            pending: Vec::new(),
            seed,
            store_quiescent: true,
            recordings: 0,
            suspended: false,
            missed: 0,
        }
    }

    /// Suspends recording — the monitor loop runs on the middlebox, so
    /// an outage silences it. Suspended recordings are counted as
    /// missed, the power-log analogue of a trace gap.
    pub fn suspend(&mut self) {
        self.suspended = true;
    }

    /// Resumes recording after an outage.
    pub fn resume(&mut self) {
        self.suspended = false;
    }

    /// Whether the monitor is currently suspended.
    pub fn is_suspended(&self) -> bool {
        self.suspended
    }

    /// How many recordings were lost while suspended.
    pub fn missed(&self) -> u32 {
        self.missed
    }

    /// A monitor with a custom arm model (ablations).
    pub fn with_arm(mut self, arm: Ur3e) -> Self {
        self.arm = arm;
        self
    }

    /// Configures whether quiescent ticks are stored.
    #[must_use]
    pub fn store_quiescent(mut self, keep: bool) -> Self {
        self.store_quiescent = keep;
        self
    }

    /// The arm model in use.
    pub fn arm(&self) -> &Ur3e {
        &self.arm
    }

    /// Records the telemetry of one executed trajectory.
    ///
    /// The trajectory is captured (with a seed derived from the
    /// recording counter, exactly as the eager monitor drew it) and
    /// synthesized lazily when the monitor is drained.
    pub fn record_motion(
        &mut self,
        procedure: ProcedureKind,
        run_id: RunId,
        description: &str,
        segments: &[TrajectorySegment],
        payload_kg: f64,
    ) {
        // The counter advances even while suspended: the RTDE poller
        // kept numbering recordings during an outage, so the noise
        // seeds of the survivors must not shift.
        let seed = self.seed.wrapping_add(u64::from(self.recordings));
        self.recordings += 1;
        if self.suspended {
            self.missed += 1;
            return;
        }
        self.pending.push(Pending {
            procedure,
            run_id,
            description: description.to_owned(),
            seed,
            capture: Capture::Motion {
                segments: segments.to_vec(),
                payload_kg,
            },
        });
    }

    /// Records a quiescent stretch (the arm parked), honouring the
    /// storage policy.
    pub fn record_idle(
        &mut self,
        procedure: ProcedureKind,
        run_id: RunId,
        pose: [f64; rad_power::JOINTS],
        ticks: usize,
    ) {
        if !self.store_quiescent {
            return;
        }
        if self.suspended {
            self.missed += 1;
            return;
        }
        let seed = self.seed.wrapping_add(u64::from(self.recordings));
        self.recordings += 1;
        self.pending.push(Pending {
            procedure,
            run_id,
            description: "quiescent".to_owned(),
            seed,
            capture: Capture::Idle { pose, ticks },
        });
    }

    /// Number of recordings captured.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Synthesizes every pending recording, fanning independent motion
    /// captures out across cores. Results are merged back in recording
    /// order, so output is bit-identical regardless of worker count.
    fn synthesize(&self) -> Vec<(RecordingMeta, CurrentProfile)> {
        let requests: Vec<ProfileRequest> = self
            .pending
            .iter()
            .filter_map(|p| match &p.capture {
                Capture::Motion {
                    segments,
                    payload_kg,
                } => Some(ProfileRequest {
                    segments: segments.clone(),
                    payload_kg: *payload_kg,
                    seed: p.seed,
                }),
                Capture::Idle { .. } => None,
            })
            .collect();
        let mut motions = self.arm.current_profiles_par(&requests).into_iter();
        self.pending
            .iter()
            .map(|p| {
                let profile = match &p.capture {
                    Capture::Motion { .. } => {
                        motions.next().expect("one synthesized profile per motion")
                    }
                    Capture::Idle { pose, ticks } => {
                        self.arm.quiescent_profile(*pose, *ticks, p.seed)
                    }
                };
                let meta = RecordingMeta {
                    procedure: p.procedure,
                    run_id: p.run_id,
                    description: p.description.clone(),
                };
                (meta, profile)
            })
            .collect()
    }

    /// Synthesizes all pending recordings and streams them into `sink`
    /// as bounded [`DEFAULT_CHUNK_TICKS`]-tick blocks, finishing the
    /// sink at the end.
    ///
    /// # Errors
    ///
    /// Propagates the first sink error.
    pub fn drain_into<S: PowerSink>(self, sink: &mut S) -> Result<(), RadError> {
        for (meta, profile) in self.synthesize() {
            sink.begin_recording(&meta)?;
            rad_power::BlockSource::new(profile.block(), DEFAULT_CHUNK_TICKS)
                .drain_into(&mut SinkNoFinish(sink))?;
        }
        sink.finish()
    }

    /// Finishes monitoring, yielding the power dataset.
    pub fn into_dataset(self) -> PowerDataset {
        let store_quiescent = self.store_quiescent;
        let mut dataset = PowerDataset::new();
        let result = if store_quiescent {
            self.drain_into(&mut dataset)
        } else {
            // The strict policy drops quiescent ticks row-by-row.
            // Filtering the whole stream matches the old per-motion
            // filter because idle recordings never reach the queue
            // under this policy.
            let mut filtered = Filtered::new(&mut dataset, |r: &rad_power::PowerRow<'_>| {
                !r.is_quiescent()
            });
            self.drain_into(&mut filtered)
        };
        result.expect("power dataset sinks are infallible");
        dataset
    }
}

/// Forwards accepts/flushes but swallows `finish`, so a per-recording
/// source drain cannot finish the shared sink early.
struct SinkNoFinish<'a, S>(&'a mut S);

impl<S: PowerSink> PowerSink for SinkNoFinish<'_, S> {
    fn accept(&mut self, block: &rad_power::PowerBlock) -> Result<(), RadError> {
        self.0.accept(block)
    }

    fn begin_recording(&mut self, meta: &RecordingMeta) -> Result<(), RadError> {
        self.0.begin_recording(meta)
    }

    fn flush(&mut self) -> Result<(), RadError> {
        self.0.flush()
    }

    fn finish(&mut self) -> Result<(), RadError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rad_power::CountingPowerSink;

    fn seg() -> TrajectorySegment {
        TrajectorySegment::joint_move(Ur3e::named_pose(0), Ur3e::named_pose(1), 1.0)
    }

    #[test]
    fn record_motion_appends_to_dataset() {
        let mut mon = PowerMonitor::new(0);
        mon.record_motion(
            ProcedureKind::VelocitySweep,
            RunId(0),
            "v=1.0rad/s",
            &[seg()],
            0.0,
        );
        assert_eq!(mon.len(), 1);
        let expected = Ur3e::new().current_profile(&[seg()], 0.0, 0);
        let ds = mon.into_dataset();
        assert_eq!(ds.recordings().len(), 1);
        assert_eq!(ds.recordings()[0].description, "v=1.0rad/s");
        assert_eq!(ds.recordings()[0].profile, expected);
    }

    #[test]
    fn quiescent_policy_drops_idle_ticks() {
        let mut mon = PowerMonitor::new(0).store_quiescent(false);
        mon.record_idle(ProcedureKind::Unknown, RunId(0), Ur3e::named_pose(0), 100);
        assert!(
            mon.is_empty(),
            "idle stretches are not stored under the strict policy"
        );
        mon.record_motion(ProcedureKind::Unknown, RunId(0), "move", &[seg()], 0.0);
        let full = Ur3e::new().current_profile(&[seg()], 0.0, 0);
        let ds = mon.into_dataset();
        assert!(ds.recordings()[0].profile.len() <= full.len());
        assert!(ds.recordings()[0]
            .profile
            .block()
            .iter()
            .all(|r| !r.is_quiescent()));
    }

    #[test]
    fn suspension_counts_missed_recordings() {
        let mut mon = PowerMonitor::new(0);
        mon.suspend();
        assert!(mon.is_suspended());
        mon.record_motion(
            ProcedureKind::VelocitySweep,
            RunId(0),
            "lost",
            &[seg()],
            0.0,
        );
        mon.record_idle(ProcedureKind::Unknown, RunId(0), Ur3e::named_pose(0), 10);
        assert!(mon.is_empty(), "suspended recordings are not stored");
        assert_eq!(mon.missed(), 2);
        mon.resume();
        mon.record_motion(
            ProcedureKind::VelocitySweep,
            RunId(1),
            "kept",
            &[seg()],
            0.0,
        );
        assert_eq!(mon.len(), 1);
        assert_eq!(mon.missed(), 2);
    }

    #[test]
    fn successive_recordings_use_fresh_noise() {
        let mut mon = PowerMonitor::new(7);
        mon.record_motion(ProcedureKind::VelocitySweep, RunId(0), "a", &[seg()], 0.0);
        mon.record_motion(ProcedureKind::VelocitySweep, RunId(1), "b", &[seg()], 0.0);
        let ds = mon.into_dataset();
        assert_ne!(
            ds.recordings()[0].profile.joint_current(1),
            ds.recordings()[1].profile.joint_current(1),
            "noise differs across recordings"
        );
    }

    #[test]
    fn suspension_preserves_survivor_seeds() {
        // A monitor that misses its first recording must give the
        // second the same noise as an eager monitor would have: the
        // recording counter advances during the outage.
        let mut dropped = PowerMonitor::new(3);
        dropped.suspend();
        dropped.record_motion(
            ProcedureKind::VelocitySweep,
            RunId(0),
            "lost",
            &[seg()],
            0.0,
        );
        dropped.resume();
        dropped.record_motion(
            ProcedureKind::VelocitySweep,
            RunId(1),
            "kept",
            &[seg()],
            0.0,
        );
        let survivor = dropped.into_dataset();

        let expected = Ur3e::new().current_profile(&[seg()], 0.0, 3u64.wrapping_add(1));
        assert_eq!(survivor.recordings()[0].profile, expected);
    }

    #[test]
    fn drain_streams_bounded_chunks() {
        let mut mon = PowerMonitor::new(0);
        for i in 0..3 {
            mon.record_motion(
                ProcedureKind::VelocitySweep,
                RunId(i),
                "move",
                &[seg()],
                0.0,
            );
        }
        mon.record_idle(ProcedureKind::Unknown, RunId(3), Ur3e::named_pose(0), 50);
        let total: usize = 3 * Ur3e::new().current_profile(&[seg()], 0.0, 0).len() + 50;

        let mut counter = CountingPowerSink::new();
        mon.drain_into(&mut counter).unwrap();
        assert_eq!(counter.recordings, 4);
        assert_eq!(counter.ticks, total);
        assert!(
            counter.max_block_ticks <= DEFAULT_CHUNK_TICKS,
            "hand-off blocks stay bounded"
        );
    }
}
