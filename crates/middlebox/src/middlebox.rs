//! The deterministic middlebox: virtualization + routing + tracing.
//!
//! [`Middlebox`] is the simulation-facing face of RATracer. It plays
//! both roles of Fig. 1 at once: the virtualized classes on the lab
//! computer (every command is intercepted) and the trusted middlebox
//! (commands are relayed to the devices and responses come back).
//! Per-device modes reproduce §III's deployment story: DIRECT devices
//! are only traced, REMOTE devices are relayed, hybrids mix both, and
//! CLOUD reproduces the Azure replay of footnote 1.

use std::collections::BTreeMap;

use rad_core::{
    Command, DeviceId, DeviceKind, Label, ProcedureKind, RadError, RunId, SimDuration, SimInstant,
    TraceMode, Value,
};
use rad_devices::LabRig;
use rad_store::CommandDataset;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::faults::{FaultPlan, FaultStats, Lane, WireFault};
use crate::latency::{retry_penalty, LatencyModel};
use crate::tracer::Tracer;

/// Per-device trace-mode assignment.
///
/// # Examples
///
/// ```
/// use rad_core::{DeviceKind, TraceMode};
/// use rad_middlebox::ModeConfig;
///
/// // The hybrid §III describes: a newly-arrived device runs DIRECT
/// // while IT sorts out its cabling, everything else runs REMOTE.
/// let cfg = ModeConfig::all(TraceMode::Remote).with(DeviceKind::Quantos, TraceMode::Direct);
/// assert_eq!(cfg.mode_for(DeviceKind::Quantos), TraceMode::Direct);
/// assert_eq!(cfg.mode_for(DeviceKind::C9), TraceMode::Remote);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeConfig {
    default: TraceMode,
    overrides: BTreeMap<DeviceKind, TraceMode>,
}

impl ModeConfig {
    /// Every device in the same mode.
    pub fn all(mode: TraceMode) -> Self {
        ModeConfig {
            default: mode,
            overrides: BTreeMap::new(),
        }
    }

    /// Overrides the mode of one device.
    #[must_use]
    pub fn with(mut self, device: DeviceKind, mode: TraceMode) -> Self {
        self.overrides.insert(device, mode);
        self
    }

    /// The mode a device runs in.
    pub fn mode_for(&self, device: DeviceKind) -> TraceMode {
        self.overrides.get(&device).copied().unwrap_or(self.default)
    }
}

impl Default for ModeConfig {
    fn default() -> Self {
        ModeConfig::all(TraceMode::Remote)
    }
}

/// What the lab computer observes for one issued command.
#[derive(Debug, Clone, PartialEq)]
pub struct IssueOutcome {
    /// The device's return value.
    pub value: Value,
    /// End-to-end response time (transport + middlebox processing).
    pub response_time: SimDuration,
    /// How long the device stays busy executing (motions take seconds;
    /// the ack comes back immediately, as on the real hardware).
    pub busy_for: SimDuration,
}

/// How many relay attempts the simulated RPC path makes before it
/// gives up and degrades to DIRECT execution.
const MAX_RELAY_ATTEMPTS: u32 = 4;

/// What the simulated relay concluded for one command.
enum RelayOutcome {
    /// The command executed (once) via the middlebox; the penalty is
    /// the extra latency the retries cost.
    Executed(SimDuration),
    /// The request never got through; the caller must degrade.
    Unreachable,
}

/// The assembled tracing middlebox over a simulated lab rig.
#[derive(Debug)]
pub struct Middlebox {
    rig: LabRig,
    tracer: Tracer,
    modes: ModeConfig,
    latency_overrides: BTreeMap<DeviceKind, LatencyModel>,
    rng: ChaCha8Rng,
    fault_plan: Option<FaultPlan>,
    fault_stats: FaultStats,
    /// Per-lane wire chunk counters feeding the fault schedule.
    request_index: u64,
    response_index: u64,
    /// How many commands have been relayed (the disconnect/outage
    /// index of [`FaultPlan::unavailable_at`]).
    relay_index: u64,
    /// Set once a wire-level disconnect fires; the link never comes
    /// back and every later REMOTE/CLOUD command degrades.
    link_down: bool,
}

impl Middlebox {
    /// A middlebox over a fresh rig, all devices in REMOTE mode, with
    /// noise derived from `seed`.
    pub fn new(seed: u64) -> Self {
        Middlebox {
            rig: LabRig::new(seed),
            tracer: Tracer::new(),
            modes: ModeConfig::default(),
            latency_overrides: BTreeMap::new(),
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            fault_plan: None,
            fault_stats: FaultStats::new(),
            request_index: 0,
            response_index: 0,
            relay_index: 0,
            link_down: false,
        }
    }

    /// Applies a deterministic fault plan to the relay path of REMOTE
    /// and CLOUD devices. DIRECT devices are unaffected: their
    /// commands never cross the middlebox link.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The fault/recovery counters observed so far.
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }

    /// Replaces the per-device mode configuration.
    #[must_use]
    pub fn with_modes(mut self, modes: ModeConfig) -> Self {
        self.modes = modes;
        self
    }

    /// Overrides the latency model of one device (ablation benches).
    #[must_use]
    pub fn with_latency(mut self, device: DeviceKind, model: LatencyModel) -> Self {
        self.latency_overrides.insert(device, model);
        self
    }

    /// Replaces the tracer (e.g. one with a document-store mirror).
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The simulated rig (device state inspection).
    pub fn rig(&self) -> &LabRig {
        &self.rig
    }

    /// Mutable rig access (workloads stage payloads and anomaly
    /// geometry through this).
    pub fn rig_mut(&mut self) -> &mut LabRig {
        &mut self.rig
    }

    /// Current simulated time.
    pub fn now(&self) -> SimInstant {
        self.tracer.now()
    }

    /// Advances simulated time without issuing a command (device busy
    /// waits, operator think time, overnight idle gaps).
    pub fn advance(&mut self, delta: SimDuration) {
        self.tracer.advance(delta);
    }

    /// Opens a labelled procedure run (see [`Tracer::begin_run`]).
    pub fn begin_run(&mut self, run_id: RunId, procedure: ProcedureKind, label: Label) {
        self.tracer.begin_run(run_id, procedure, label);
    }

    /// Attaches an operator note to the active run.
    pub fn annotate_run(&mut self, note: &str) {
        self.tracer.annotate_run(note);
    }

    /// Closes the active procedure run.
    pub fn end_run(&mut self) {
        self.tracer.end_run();
    }

    /// Number of trace objects captured so far.
    pub fn trace_count(&self) -> usize {
        self.tracer.len()
    }

    /// The traces captured so far, materialized as rows. Prefer
    /// [`Middlebox::batch`] or [`Middlebox::device_count`] on hot
    /// paths — this clones every row payload.
    pub fn traces(&self) -> Vec<rad_core::TraceObject> {
        self.tracer.traces()
    }

    /// Columnar view of the traces buffered so far.
    pub fn batch(&self) -> &rad_core::TraceBatch {
        self.tracer.batch()
    }

    /// Lifetime trace count for one device — O(1) (the campaign
    /// synthesizer uses this to steer per-device trace counts).
    pub fn device_count(&self, kind: rad_core::DeviceKind) -> u64 {
        self.tracer.device_count(kind)
    }

    /// Takes the buffered trace batch, leaving counters intact — the
    /// streaming hand-off for bounded-memory campaigns.
    pub fn drain_batch(&mut self) -> rad_core::TraceBatch {
        self.tracer.drain_batch()
    }

    /// Read-only view of the trace gaps recorded so far.
    pub fn gaps(&self) -> &[rad_core::TraceGap] {
        self.tracer.gaps()
    }

    /// Read-only view of the run metadata registered so far (the
    /// campaign checkpointer persists these incrementally).
    pub fn runs(&self) -> &[rad_core::RunMetadata] {
        self.tracer.runs()
    }

    /// Signals end-of-stream to the tracer's sink stack — live-teed
    /// streaming detectors deliver their run-end verdicts here.
    ///
    /// # Errors
    ///
    /// Propagates the sink's failure.
    pub fn finish_sink(&mut self) -> Result<(), rad_core::RadError> {
        self.tracer.finish_sink()
    }

    /// Issues one command through the interception boundary: samples
    /// the transport latency for the device's mode, executes on the
    /// rig, logs the trace object (faults included), and advances the
    /// simulated clock by the response time.
    ///
    /// With a [`FaultPlan`] attached, REMOTE/CLOUD commands run
    /// through a simulated relay: lost request or response chunks cost
    /// deterministic retry penalties (the command still executes
    /// exactly once, thanks to idempotent replay), and when the
    /// middlebox is unreachable — an outage window, the disconnect
    /// point, or every retry exhausted — the command degrades to
    /// DIRECT execution with a [`TraceGap`](rad_core::TraceGap)
    /// recorded in place of the lost trace.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Device`] when the device faults. The fault
    /// is still traced, exactly like RATracer logging an exception.
    pub fn issue(&mut self, command: &Command) -> Result<IssueOutcome, RadError> {
        let device = DeviceId::primary(command.device());
        let mode = self.modes.mode_for(device.kind());
        let mut relay_penalty = SimDuration::ZERO;
        if matches!(mode, TraceMode::Remote | TraceMode::Cloud) {
            if let Some(plan) = self.fault_plan.clone() {
                if self.link_down || plan.unavailable_at(self.tracer.now(), self.relay_index) {
                    return self.issue_degraded(command, device, mode, "middlebox unavailable");
                }
                self.relay_index += 1;
                match self.simulate_relay(&plan) {
                    RelayOutcome::Executed(penalty) => relay_penalty = penalty,
                    RelayOutcome::Unreachable => {
                        return self.issue_degraded(command, device, mode, "rpc retries exhausted");
                    }
                }
            }
        }
        let model = self
            .latency_overrides
            .get(&device.kind())
            .cloned()
            .unwrap_or_else(|| LatencyModel::for_mode(mode));
        let transport = model.sample(&mut self.rng) + relay_penalty;
        match self.rig.execute(command) {
            Ok(outcome) => {
                // Response time = transport + the controller's ack
                // processing; device busy time runs concurrently.
                let response_time = transport;
                self.tracer.record(
                    device,
                    command,
                    mode,
                    outcome.return_value.clone(),
                    None,
                    response_time,
                );
                self.tracer.advance(response_time);
                Ok(IssueOutcome {
                    value: outcome.return_value,
                    response_time,
                    busy_for: outcome.busy_for,
                })
            }
            Err(fault) => {
                let message = fault.to_string();
                self.tracer.record(
                    device,
                    command,
                    mode,
                    Value::Unit,
                    Some(&message),
                    transport,
                );
                self.tracer.advance(transport);
                Err(RadError::Device(fault))
            }
        }
    }

    /// Walks the seeded fault schedule for one relayed command:
    /// request chunk out, response chunk back, with retries on loss.
    ///
    /// The rig is never touched here — this only decides whether the
    /// relay would have delivered, and at what latency cost. Because
    /// retries reuse the idempotency token and the server deduplicates,
    /// a command whose request ever got through counts as executed
    /// (and traced by the middlebox) exactly once, even if every
    /// response copy was lost.
    fn simulate_relay(&mut self, plan: &FaultPlan) -> RelayOutcome {
        let mut penalty = SimDuration::ZERO;
        let mut executed = false;
        for attempt in 0..MAX_RELAY_ATTEMPTS {
            if attempt > 0 {
                self.fault_stats.note_retry();
            }
            let request = plan.action_for(Lane::Request, self.request_index);
            self.request_index += 1;
            let request_delivered = match request {
                WireFault::Deliver => {
                    self.fault_stats.note_delivered();
                    true
                }
                WireFault::Duplicate => {
                    self.fault_stats.note_duplicated();
                    true
                }
                WireFault::Drop => {
                    self.fault_stats.note_dropped();
                    false
                }
                WireFault::Corrupt => {
                    self.fault_stats.note_corrupted();
                    false
                }
                WireFault::Hold(_) => {
                    self.fault_stats.note_held();
                    false
                }
                WireFault::Disconnect => {
                    self.fault_stats.note_disconnect();
                    self.link_down = true;
                    return if executed {
                        RelayOutcome::Executed(penalty)
                    } else {
                        RelayOutcome::Unreachable
                    };
                }
            };
            if !request_delivered {
                self.fault_stats.note_timeout();
                penalty += retry_penalty(attempt);
                continue;
            }
            if executed {
                self.fault_stats.note_dedup_hit();
            } else {
                executed = true;
                self.fault_stats.note_execution();
            }
            let response = plan.action_for(Lane::Response, self.response_index);
            self.response_index += 1;
            match response {
                WireFault::Deliver => {
                    self.fault_stats.note_delivered();
                    return RelayOutcome::Executed(penalty);
                }
                WireFault::Duplicate => {
                    self.fault_stats.note_duplicated();
                    return RelayOutcome::Executed(penalty);
                }
                WireFault::Disconnect => {
                    self.fault_stats.note_disconnect();
                    self.link_down = true;
                    // The command executed and the middlebox holds the
                    // trace; only this response was lost with the link.
                    return RelayOutcome::Executed(penalty);
                }
                WireFault::Drop => self.fault_stats.note_dropped(),
                WireFault::Corrupt => self.fault_stats.note_corrupted(),
                WireFault::Hold(_) => self.fault_stats.note_held(),
            }
            self.fault_stats.note_timeout();
            penalty += retry_penalty(attempt);
        }
        if executed {
            // Retries ran dry waiting for a response copy, but the
            // middlebox executed and traced the command once.
            RelayOutcome::Executed(penalty)
        } else {
            RelayOutcome::Unreachable
        }
    }

    /// Graceful degradation: the lab computer falls back to talking to
    /// the device directly. The command still executes (the experiment
    /// survives), but the interception point is gone, so a
    /// [`TraceGap`](rad_core::TraceGap) is recorded in place of the
    /// trace object.
    fn issue_degraded(
        &mut self,
        command: &Command,
        device: DeviceId,
        intended_mode: TraceMode,
        reason: &str,
    ) -> Result<IssueOutcome, RadError> {
        self.fault_stats.note_gap();
        self.tracer
            .record_gap(device, command.command_type(), intended_mode, reason);
        let model = self
            .latency_overrides
            .get(&device.kind())
            .cloned()
            .unwrap_or_else(LatencyModel::direct);
        let transport = model.sample(&mut self.rng);
        let result = self.rig.execute(command);
        self.tracer.advance(transport);
        match result {
            Ok(outcome) => Ok(IssueOutcome {
                value: outcome.return_value,
                response_time: transport,
                busy_for: outcome.busy_for,
            }),
            Err(fault) => Err(RadError::Device(fault)),
        }
    }

    /// Issues a command and, if the device reports a busy period,
    /// advances the clock past it — the blocking convenience used for
    /// non-polled devices.
    ///
    /// # Errors
    ///
    /// Same as [`Middlebox::issue`].
    pub fn issue_blocking(&mut self, command: &Command) -> Result<IssueOutcome, RadError> {
        let outcome = self.issue(command)?;
        self.tracer.advance(outcome.busy_for);
        Ok(outcome)
    }

    /// Records a command that the guard rejected before it reached any
    /// device: traced with the rejection text as the exception and
    /// zero response time (the middlebox answered locally).
    pub fn record_rejection(&mut self, command: &Command, message: &str) {
        let device = DeviceId::primary(command.device());
        let mode = self.modes.mode_for(device.kind());
        self.tracer.record(
            device,
            command,
            mode,
            Value::Unit,
            Some(message),
            SimDuration::ZERO,
        );
    }

    /// Finishes the session, yielding the curated command dataset.
    pub fn into_dataset(self) -> CommandDataset {
        self.tracer.into_dataset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rad_core::CommandType;

    #[test]
    fn issue_traces_and_advances_time() {
        let mut mb = Middlebox::new(0);
        let before = mb.now();
        mb.issue(&Command::nullary(CommandType::InitIka)).unwrap();
        assert_eq!(mb.trace_count(), 1);
        assert!(mb.now() > before);
    }

    #[test]
    fn faults_are_traced_as_exceptions() {
        let mut mb = Middlebox::new(0);
        // Reading the IKA before init faults.
        let err = mb
            .issue(&Command::nullary(CommandType::IkaReadDeviceName))
            .unwrap_err();
        assert!(matches!(err, RadError::Device(_)));
        let ds = mb.into_dataset();
        assert_eq!(ds.len(), 1);
        assert!(ds.traces()[0].exception().unwrap().contains("not opened"));
    }

    #[test]
    fn hybrid_modes_stamp_traces_per_device() {
        let cfg = ModeConfig::all(TraceMode::Remote).with(DeviceKind::Ika, TraceMode::Direct);
        let mut mb = Middlebox::new(0).with_modes(cfg);
        mb.issue(&Command::nullary(CommandType::InitIka)).unwrap();
        mb.issue(&Command::nullary(CommandType::InitC9)).unwrap();
        let ds = mb.into_dataset();
        assert_eq!(ds.traces()[0].mode(), TraceMode::Direct);
        assert_eq!(ds.traces()[1].mode(), TraceMode::Remote);
    }

    #[test]
    fn blocking_issue_skips_past_device_busy_time() {
        let mut mb = Middlebox::new(0);
        mb.issue(&Command::nullary(CommandType::InitC9)).unwrap();
        let before = mb.now();
        let outcome = mb
            .issue_blocking(&Command::nullary(CommandType::Home))
            .unwrap();
        assert!(outcome.busy_for >= SimDuration::from_secs(3));
        assert!(mb.now().duration_since(before) >= outcome.busy_for);
    }

    #[test]
    fn run_labels_propagate_through_issue() {
        let mut mb = Middlebox::new(0);
        mb.begin_run(RunId(4), ProcedureKind::JoystickMovements, Label::Benign);
        mb.issue(&Command::nullary(CommandType::InitC9)).unwrap();
        mb.end_run();
        let ds = mb.into_dataset();
        assert_eq!(ds.traces()[0].run_id(), Some(RunId(4)));
        assert_eq!(ds.supervised_runs().len(), 1);
    }

    #[test]
    fn constant_latency_override_is_exact() {
        let mut mb = Middlebox::new(0).with_latency(
            DeviceKind::Ika,
            LatencyModel::Constant(SimDuration::from_millis(9)),
        );
        mb.issue(&Command::nullary(CommandType::InitIka)).unwrap();
        let ds = mb.into_dataset();
        assert_eq!(ds.traces()[0].response_time(), SimDuration::from_millis(9));
    }

    #[test]
    fn perfect_fault_plan_changes_nothing() {
        use crate::faults::{FaultPlan, FaultProfile};
        let run = |faulted: bool| {
            let mut mb = Middlebox::new(3);
            if faulted {
                mb = mb.with_fault_plan(FaultPlan::new(3, FaultProfile::none()));
            }
            mb.issue(&Command::nullary(CommandType::InitC9)).unwrap();
            for _ in 0..10 {
                mb.issue(&Command::nullary(CommandType::Mvng)).unwrap();
            }
            mb.into_dataset()
        };
        let (plain, faulted) = (run(false), run(true));
        assert_eq!(plain.traces(), faulted.traces());
        assert!(faulted.gaps().is_empty());
    }

    #[test]
    fn outage_degrades_to_direct_with_gap_markers() {
        use crate::faults::{FaultPlan, FaultProfile};
        let plan = FaultPlan::new(0, FaultProfile::none())
            .with_outage(SimInstant::EPOCH, SimDuration::from_secs(3600));
        let mut mb = Middlebox::new(0).with_fault_plan(plan);
        mb.issue(&Command::nullary(CommandType::InitC9)).unwrap();
        mb.issue(&Command::nullary(CommandType::Home)).unwrap();
        assert_eq!(mb.gaps().len(), 2);
        assert_eq!(mb.trace_count(), 0, "no trace crosses a dead middlebox");
        // The experiment survived: the rig really executed.
        assert!(mb.rig().c9().is_homed());
        let stats = mb.fault_stats().snapshot();
        assert_eq!(stats.gaps, 2);
        let ds = mb.into_dataset();
        assert_eq!(ds.gaps().len(), 2);
        assert_eq!(ds.gaps()[0].intended_mode, TraceMode::Remote);
    }

    #[test]
    fn disconnect_mid_run_loses_only_later_traces() {
        use crate::faults::{FaultPlan, FaultProfile};
        let plan = FaultPlan::new(0, FaultProfile::disconnect_after(3));
        let mut mb = Middlebox::new(0).with_fault_plan(plan);
        mb.issue(&Command::nullary(CommandType::InitC9)).unwrap();
        mb.issue(&Command::nullary(CommandType::Home)).unwrap();
        mb.issue(&Command::nullary(CommandType::InitIka)).unwrap();
        // The link is gone from here on.
        mb.issue(&Command::nullary(CommandType::IkaReadDeviceName))
            .unwrap();
        mb.issue(&Command::nullary(CommandType::IkaReadHotplateSensor))
            .unwrap();
        assert_eq!(mb.trace_count(), 3);
        assert_eq!(mb.gaps().len(), 2);
    }

    #[test]
    fn direct_devices_ignore_the_fault_plan() {
        use crate::faults::{FaultPlan, FaultProfile};
        let plan = FaultPlan::new(0, FaultProfile::disconnect_after(0));
        let cfg = ModeConfig::all(TraceMode::Direct);
        let mut mb = Middlebox::new(0).with_modes(cfg).with_fault_plan(plan);
        mb.issue(&Command::nullary(CommandType::InitIka)).unwrap();
        assert_eq!(mb.trace_count(), 1, "DIRECT commands never cross the link");
        assert!(mb.gaps().is_empty());
    }

    #[test]
    fn lossy_relay_retries_but_executes_once() {
        use crate::faults::{FaultPlan, FaultProfile};
        let plan = FaultPlan::new(11, FaultProfile::drop(0.3));
        let mut mb = Middlebox::new(11).with_fault_plan(plan);
        mb.issue(&Command::nullary(CommandType::InitC9)).unwrap();
        for _ in 0..60 {
            let _ = mb.issue(&Command::nullary(CommandType::Mvng));
        }
        let stats = mb.fault_stats().snapshot();
        assert!(stats.dropped > 0, "{stats}");
        assert!(stats.retries > 0, "{stats}");
        // Every delivered command executed exactly once.
        assert_eq!(
            stats.executions,
            (mb.trace_count() + mb.gaps().len()) as u64 - stats.gaps,
            "{stats}"
        );
    }

    #[test]
    fn same_seed_reproduces_identical_response_times() {
        let run = |seed| {
            let mut mb = Middlebox::new(seed);
            mb.issue(&Command::nullary(CommandType::InitC9)).unwrap();
            let mut rts = Vec::new();
            for _ in 0..20 {
                rts.push(
                    mb.issue(&Command::nullary(CommandType::Mvng))
                        .unwrap()
                        .response_time,
                );
            }
            rts
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
