//! Deterministic fault injection for the middlebox path.
//!
//! A middlebox failure must never corrupt an experiment or silently
//! drop trace objects — but that property is only trustworthy if the
//! failure behaviour itself is tested and reproducible. This module
//! provides the seeded fault model the conformance suites pin down:
//!
//! - [`FaultProfile`] — the injection taxonomy: per-chunk drop,
//!   duplicate, reorder, corrupt, and delay probabilities plus a
//!   deterministic disconnect point.
//! - [`FaultPlan`] — a seeded, deterministic schedule over that
//!   profile. Every decision is a pure function of
//!   `(seed, lane, index)`, so the same plan produces byte-identical
//!   fault schedules across runs and thread interleavings, and sim-time
//!   outage windows integrate with the existing [`SimClock`] timeline.
//! - [`FaultyDuplex`] — a [`Transport`] wrapper that applies the plan
//!   to every chunk crossing a [`Duplex`] endpoint.
//! - [`FaultStats`] — shared counters so tests and operators can
//!   observe exactly what was injected and what the recovery machinery
//!   (retries, dedup, DIRECT fallback) absorbed.
//!
//! [`SimClock`]: rad_core::SimClock
//!
//! # Examples
//!
//! ```
//! use rad_middlebox::faults::{FaultPlan, FaultProfile, Lane};
//!
//! let plan = FaultPlan::new(7, FaultProfile::drop(0.2));
//! // Deterministic: the same (seed, lane, index) always decides alike.
//! assert_eq!(
//!     plan.schedule(Lane::Request, 64),
//!     FaultPlan::new(7, FaultProfile::drop(0.2)).schedule(Lane::Request, 64),
//! );
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;
use rad_core::{RadError, SimDuration, SimInstant};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::rpc::{Duplex, Transport};

/// Which direction of the client↔middlebox link a chunk travels.
///
/// The two lanes draw from independent decision streams so that a
/// request-heavy workload does not perturb the response lane's
/// schedule (and vice versa).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// Lab computer → middlebox.
    Request,
    /// Middlebox → lab computer.
    Response,
}

impl Lane {
    fn salt(self) -> u64 {
        match self {
            Lane::Request => 0x5255_4c45_5f52_4551, // "RULE_REQ"
            Lane::Response => 0x5255_4c45_5f52_4553,
        }
    }
}

/// The fault injected on one chunk (or the decision to leave it alone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// The chunk crosses the wire untouched.
    Deliver,
    /// The chunk is silently lost.
    Drop,
    /// The chunk arrives twice.
    Duplicate,
    /// A byte of the chunk is flipped in flight.
    Corrupt,
    /// The chunk is held back and delivered after the next `n` chunks
    /// (`Hold(1)` is a classic adjacent reorder; larger values model
    /// queueing delay).
    Hold(u32),
    /// The link dies at this chunk; nothing crosses afterwards.
    Disconnect,
}

/// Per-chunk fault probabilities plus the deterministic disconnect
/// point — the injection taxonomy.
///
/// Probabilities are evaluated in a fixed cascade (drop, duplicate,
/// corrupt, reorder, delay) from a single uniform draw per chunk, so a
/// profile's event mix is exactly its configured probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Probability a chunk is dropped.
    pub drop_prob: f64,
    /// Probability a chunk is duplicated.
    pub duplicate_prob: f64,
    /// Probability a byte of a chunk is flipped.
    pub corrupt_prob: f64,
    /// Probability a chunk is swapped with its successor.
    pub reorder_prob: f64,
    /// Probability a chunk is held back `delay_chunks` sends.
    pub delay_prob: f64,
    /// How many subsequent chunks a delayed chunk waits for.
    pub delay_chunks: u32,
    /// Chunk index (per lane) at which the link dies for good.
    pub disconnect_after: Option<u64>,
}

impl FaultProfile {
    /// A perfect channel: every chunk delivers.
    pub fn none() -> Self {
        FaultProfile {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            corrupt_prob: 0.0,
            reorder_prob: 0.0,
            delay_prob: 0.0,
            delay_chunks: 3,
            disconnect_after: None,
        }
    }

    /// Loss only: each chunk dropped with probability `p`.
    pub fn drop(p: f64) -> Self {
        FaultProfile {
            drop_prob: p,
            ..FaultProfile::none()
        }
    }

    /// Duplication only.
    pub fn duplicate(p: f64) -> Self {
        FaultProfile {
            duplicate_prob: p,
            ..FaultProfile::none()
        }
    }

    /// Corruption only: each chunk gets a byte flipped with
    /// probability `p`.
    pub fn corrupt(p: f64) -> Self {
        FaultProfile {
            corrupt_prob: p,
            ..FaultProfile::none()
        }
    }

    /// Reordering only: adjacent swaps with probability `p`.
    pub fn reorder(p: f64) -> Self {
        FaultProfile {
            reorder_prob: p,
            ..FaultProfile::none()
        }
    }

    /// Delay only: chunks held `chunks` sends with probability `p`.
    pub fn delay(p: f64, chunks: u32) -> Self {
        FaultProfile {
            delay_prob: p,
            delay_chunks: chunks.max(1),
            ..FaultProfile::none()
        }
    }

    /// A link that dies after `n` chunks per lane.
    pub fn disconnect_after(n: u64) -> Self {
        FaultProfile {
            disconnect_after: Some(n),
            ..FaultProfile::none()
        }
    }

    /// Adds a disconnect point to any profile.
    #[must_use]
    pub fn with_disconnect_after(mut self, n: u64) -> Self {
        self.disconnect_after = Some(n);
        self
    }

    fn total_prob(&self) -> f64 {
        self.drop_prob
            + self.duplicate_prob
            + self.corrupt_prob
            + self.reorder_prob
            + self.delay_prob
    }
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::none()
    }
}

/// A seeded, deterministic fault schedule.
///
/// The plan never holds mutable state: every per-chunk decision is a
/// pure function of `(seed, lane, index)`, which is what makes the
/// schedule identical across runs and thread interleavings. Sim-time
/// outage windows (for the simulation path, where the middlebox can be
/// "down" between two [`SimInstant`]s) ride alongside the chunk-level
/// schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    profile: FaultProfile,
    outages: Vec<(SimInstant, SimDuration)>,
}

impl FaultPlan {
    /// A plan over `profile`, with all randomness derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or the
    /// probabilities sum past 1.
    pub fn new(seed: u64, profile: FaultProfile) -> Self {
        for p in [
            profile.drop_prob,
            profile.duplicate_prob,
            profile.corrupt_prob,
            profile.reorder_prob,
            profile.delay_prob,
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "fault probability {p} out of range"
            );
        }
        assert!(
            profile.total_prob() <= 1.0 + 1e-9,
            "fault probabilities sum past 1"
        );
        FaultPlan {
            seed,
            profile,
            outages: Vec::new(),
        }
    }

    /// Declares a sim-time outage window: the middlebox is unavailable
    /// for `duration` starting at `start`.
    #[must_use]
    pub fn with_outage(mut self, start: SimInstant, duration: SimDuration) -> Self {
        self.outages.push((start, duration));
        self
    }

    /// The seed the plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The profile in effect.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// The declared sim-time outage windows, in declaration order.
    pub fn outages(&self) -> &[(SimInstant, SimDuration)] {
        &self.outages
    }

    /// The fault decision for chunk `index` on `lane` — a pure
    /// function, safe to call from any thread in any order.
    pub fn action_for(&self, lane: Lane, index: u64) -> WireFault {
        if let Some(n) = self.profile.disconnect_after {
            if index >= n {
                return WireFault::Disconnect;
            }
        }
        let mut rng = self.decision_rng(lane, index);
        let draw: f64 = rng.gen_range(0.0..1.0);
        let p = &self.profile;
        let mut threshold = p.drop_prob;
        if draw < threshold {
            return WireFault::Drop;
        }
        threshold += p.duplicate_prob;
        if draw < threshold {
            return WireFault::Duplicate;
        }
        threshold += p.corrupt_prob;
        if draw < threshold {
            return WireFault::Corrupt;
        }
        threshold += p.reorder_prob;
        if draw < threshold {
            return WireFault::Hold(1);
        }
        threshold += p.delay_prob;
        if draw < threshold {
            return WireFault::Hold(p.delay_chunks.max(1));
        }
        WireFault::Deliver
    }

    /// The first `n` decisions of one lane — the materialized schedule
    /// the determinism suite compares byte-for-byte.
    pub fn schedule(&self, lane: Lane, n: u64) -> Vec<WireFault> {
        (0..n).map(|i| self.action_for(lane, i)).collect()
    }

    /// Whether the middlebox is unavailable for the `index`-th relayed
    /// command at sim-time `now` — true inside any declared outage
    /// window or at/after the disconnect point.
    pub fn unavailable_at(&self, now: SimInstant, index: u64) -> bool {
        if let Some(n) = self.profile.disconnect_after {
            if index >= n {
                return true;
            }
        }
        self.outages
            .iter()
            .any(|&(start, dur)| now >= start && now < start + dur)
    }

    /// Deterministically corrupts one byte of `chunk` (returned
    /// unchanged when empty). The flipped position and mask derive from
    /// the same `(seed, lane, index)` stream as the decision itself.
    pub fn corrupt_chunk(&self, lane: Lane, index: u64, chunk: &Bytes) -> Bytes {
        if chunk.is_empty() {
            return chunk.clone();
        }
        let mut rng = self.decision_rng(lane, index ^ 0x434f_5252); // "CORR"
        let pos = rng.gen_range(0..chunk.len() as u64) as usize;
        let mask = (rng.gen_range(1..256u64)) as u8; // never zero: always flips
        let mut out = chunk.to_vec();
        out[pos] ^= mask;
        Bytes::from(out)
    }

    fn decision_rng(&self, lane: Lane, index: u64) -> ChaCha8Rng {
        let mixed = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(lane.salt())
            .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        ChaCha8Rng::seed_from_u64(mixed)
    }
}

/// Shared fault/recovery counters — the observability surface.
///
/// Cheap to clone (an [`Arc`] of atomics); the same handle can be
/// given to a [`FaultyDuplex`], an [`RpcClient`], an [`RpcServer`],
/// and a [`Middlebox`] so one snapshot accounts for the whole path.
///
/// [`RpcClient`]: crate::rpc::RpcClient
/// [`RpcServer`]: crate::rpc::RpcServer
/// [`Middlebox`]: crate::Middlebox
#[derive(Debug, Clone, Default)]
pub struct FaultStats {
    inner: Arc<FaultStatsInner>,
}

#[derive(Debug, Default)]
struct FaultStatsInner {
    delivered: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    corrupted: AtomicU64,
    held: AtomicU64,
    disconnects: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    executions: AtomicU64,
    dedup_hits: AtomicU64,
    dedup_evictions: AtomicU64,
    gaps: AtomicU64,
}

macro_rules! stat {
    ($($note:ident / $get:ident => $field:ident),* $(,)?) => {$(
        #[doc = concat!("Increments the `", stringify!($field), "` counter.")]
        pub fn $note(&self) {
            self.inner.$field.fetch_add(1, Ordering::Relaxed);
        }

        #[doc = concat!("Current `", stringify!($field), "` count.")]
        pub fn $get(&self) -> u64 {
            self.inner.$field.load(Ordering::Relaxed)
        }
    )*};
}

impl FaultStats {
    /// A fresh set of zeroed counters.
    pub fn new() -> Self {
        FaultStats::default()
    }

    stat! {
        note_delivered / delivered => delivered,
        note_dropped / dropped => dropped,
        note_duplicated / duplicated => duplicated,
        note_corrupted / corrupted => corrupted,
        note_held / held => held,
        note_disconnect / disconnects => disconnects,
        note_retry / retries => retries,
        note_timeout / timeouts => timeouts,
        note_execution / executions => executions,
        note_dedup_hit / dedup_hits => dedup_hits,
        note_dedup_eviction / dedup_evictions => dedup_evictions,
        note_gap / gaps => gaps,
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> FaultStatsSnapshot {
        FaultStatsSnapshot {
            delivered: self.delivered(),
            dropped: self.dropped(),
            duplicated: self.duplicated(),
            corrupted: self.corrupted(),
            held: self.held(),
            disconnects: self.disconnects(),
            retries: self.retries(),
            timeouts: self.timeouts(),
            executions: self.executions(),
            dedup_hits: self.dedup_hits(),
            dedup_evictions: self.dedup_evictions(),
            gaps: self.gaps(),
        }
    }
}

/// A plain-value snapshot of [`FaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field names are the documentation
pub struct FaultStatsSnapshot {
    pub delivered: u64,
    pub dropped: u64,
    pub duplicated: u64,
    pub corrupted: u64,
    pub held: u64,
    pub disconnects: u64,
    pub retries: u64,
    pub timeouts: u64,
    pub executions: u64,
    pub dedup_hits: u64,
    pub dedup_evictions: u64,
    pub gaps: u64,
}

impl fmt::Display for FaultStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "delivered={} dropped={} duplicated={} corrupted={} held={} \
             disconnects={} retries={} timeouts={} executions={} dedup_hits={} \
             dedup_evictions={} gaps={}",
            self.delivered,
            self.dropped,
            self.duplicated,
            self.corrupted,
            self.held,
            self.disconnects,
            self.retries,
            self.timeouts,
            self.executions,
            self.dedup_hits,
            self.dedup_evictions,
            self.gaps,
        )
    }
}

/// A [`Transport`] endpoint with a [`FaultPlan`] applied to its
/// outgoing chunks.
///
/// Generic over the underlying transport, so the same seeded schedule
/// interposes on an in-process [`Duplex`] or a live socket
/// ([`SocketTransport`](crate::server::SocketTransport)) without the
/// peers knowing — which is what lets the fault conformance matrix run
/// unchanged against real TCP/Unix streams. Wrap a fresh in-process
/// pair with [`FaultyDuplex::wrap_pair`] to fault both lanes, or wrap
/// one side to fault a single direction. Receiving is pass-through:
/// every fault is injected at the sending edge, which keeps the
/// decision index aligned with the sender's chunk count.
#[derive(Debug)]
pub struct Faulty<T: Transport = Duplex> {
    inner: T,
    plan: Arc<FaultPlan>,
    lane: Lane,
    stats: FaultStats,
    state: Mutex<LaneState>,
}

/// The in-process specialization of [`Faulty`] — the original name,
/// kept for the conformance suites and docs that predate real sockets.
pub type FaultyDuplex = Faulty<Duplex>;

#[derive(Debug, Default)]
struct LaneState {
    sent: u64,
    /// Chunks held for later, keyed by the send index that releases
    /// them. Chunks still held when the stream ends are lost (tail
    /// loss), exactly like a real queue drained on link death.
    held: Vec<(u64, Bytes)>,
    disconnected: bool,
}

impl FaultyDuplex {
    /// Wraps a fresh [`Duplex::pair`] so both lanes are faulted by the
    /// same plan: `(client_side, server_side)`.
    pub fn wrap_pair(plan: FaultPlan, stats: FaultStats) -> (FaultyDuplex, FaultyDuplex) {
        let plan = Arc::new(plan);
        let (client, server) = Duplex::pair();
        (
            FaultyDuplex::new(client, Arc::clone(&plan), Lane::Request, stats.clone()),
            FaultyDuplex::new(server, plan, Lane::Response, stats),
        )
    }
}

impl<T: Transport> Faulty<T> {
    /// Wraps one endpoint; faults apply to the chunks this side sends.
    pub fn new(inner: T, plan: Arc<FaultPlan>, lane: Lane, stats: FaultStats) -> Self {
        Faulty {
            inner,
            plan,
            lane,
            stats,
            state: Mutex::new(LaneState::default()),
        }
    }

    /// Sends one chunk through the fault schedule.
    ///
    /// # Errors
    ///
    /// [`RadError::RpcDisconnected`] once the plan's disconnect point
    /// is reached or the underlying peer is gone.
    pub fn send(&self, chunk: Bytes) -> Result<(), RadError> {
        let mut state = self.state.lock();
        if state.disconnected {
            return Err(RadError::RpcDisconnected(
                "fault plan disconnected the link".into(),
            ));
        }
        let index = state.sent;
        state.sent += 1;
        // Flush any held chunks whose release point has passed; they
        // go out *before* the current chunk, preserving the reorder
        // semantics (held chunk i lands after chunks i+1..=i+n).
        let due: Vec<Bytes> = {
            let mut due = Vec::new();
            state.held.retain(|(release_at, held)| {
                if *release_at <= index {
                    due.push(held.clone());
                    false
                } else {
                    true
                }
            });
            due
        };
        for held in due {
            self.inner.send(held)?;
        }
        match self.plan.action_for(self.lane, index) {
            WireFault::Deliver => {
                self.stats.note_delivered();
                self.inner.send(chunk)
            }
            WireFault::Drop => {
                self.stats.note_dropped();
                Ok(())
            }
            WireFault::Duplicate => {
                self.stats.note_duplicated();
                self.inner.send(chunk.clone())?;
                self.inner.send(chunk)
            }
            WireFault::Corrupt => {
                self.stats.note_corrupted();
                self.inner
                    .send(self.plan.corrupt_chunk(self.lane, index, &chunk))
            }
            WireFault::Hold(n) => {
                self.stats.note_held();
                state.held.push((index + u64::from(n), chunk));
                Ok(())
            }
            WireFault::Disconnect => {
                self.stats.note_disconnect();
                state.disconnected = true;
                state.held.clear();
                Err(RadError::RpcDisconnected(
                    "fault plan disconnected the link".into(),
                ))
            }
        }
    }

    /// Receives the next chunk (pass-through; see [`Duplex::recv`]).
    ///
    /// # Errors
    ///
    /// Same as [`Duplex::recv`], plus an immediate
    /// [`RadError::RpcDisconnected`] once this side's lane has died.
    pub fn recv(&self, timeout: Duration) -> Result<Bytes, RadError> {
        if self.state.lock().disconnected {
            return Err(RadError::RpcDisconnected(
                "fault plan disconnected the link".into(),
            ));
        }
        self.inner.recv(timeout)
    }

    /// Blocking receive (pass-through; see [`Duplex::recv_blocking`]).
    pub fn recv_blocking(&self) -> Option<Bytes> {
        if self.state.lock().disconnected {
            return None;
        }
        self.inner.recv_blocking()
    }

    /// The stats handle observing this endpoint.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }
}

impl<T: Transport> Transport for Faulty<T> {
    fn send(&self, chunk: Bytes) -> Result<(), RadError> {
        Faulty::send(self, chunk)
    }

    fn recv(&self, timeout: Duration) -> Result<Bytes, RadError> {
        Faulty::recv(self, timeout)
    }

    fn recv_blocking(&self) -> Option<Bytes> {
        Faulty::recv_blocking(self)
    }
}

/// Declarative form of a [`FaultPlan`] — the `faults` section of a
/// scenario document. Probabilities default to `0.0`, the seed
/// defaults to the scenario seed at composition time, and every field
/// is validated on parse so [`FaultSpec::to_plan`] can never hit
/// [`FaultPlan::new`]'s panics:
///
/// ```json
/// {
///   "seed": 21,
///   "profile": {"drop": 0.1, "delay": 0.05, "delay_chunks": 3,
///               "disconnect_after": 40},
///   "outages": [{"start_us": 0, "duration_us": 1000000}]
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed of the plan's decision streams.
    pub seed: u64,
    /// Injection probabilities and the disconnect point.
    pub profile: FaultProfile,
    /// Sim-time outage windows as `(start_us, duration_us)` pairs.
    pub outages: Vec<(u64, u64)>,
}

impl FaultSpec {
    const FIELDS: &'static [&'static str] = &["seed", "profile", "outages"];
    const PROFILE_FIELDS: &'static [&'static str] = &[
        "drop",
        "duplicate",
        "corrupt",
        "reorder",
        "delay",
        "delay_chunks",
        "disconnect_after",
    ];

    /// The spec of an existing plan: `spec.to_plan()` rebuilds a plan
    /// equal to the original.
    pub fn from_plan(plan: &FaultPlan) -> Self {
        FaultSpec {
            seed: plan.seed(),
            profile: plan.profile().clone(),
            outages: plan
                .outages()
                .iter()
                .map(|&(start, dur)| (start.as_micros(), dur.as_micros()))
                .collect(),
        }
    }

    /// Materializes the seeded [`FaultPlan`].
    pub fn to_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new(self.seed, self.profile.clone());
        for &(start_us, duration_us) in &self.outages {
            plan = plan.with_outage(
                SimInstant::from_micros(start_us),
                SimDuration::from_micros(duration_us),
            );
        }
        plan
    }

    /// Parses the `faults` section rooted at `ctx`. `default_seed` is
    /// used when the section does not pin its own seed.
    ///
    /// # Errors
    ///
    /// [`rad_core::RadError::Spec`] on unknown fields, ill-typed
    /// values, out-of-range probabilities, or probabilities summing
    /// past 1.
    pub fn from_json(
        value: &serde_json::Value,
        ctx: &str,
        default_seed: u64,
    ) -> Result<Self, RadError> {
        use rad_core::spec;
        let map = spec::obj(value, ctx)?;
        spec::known_fields(map, ctx, Self::FIELDS)?;
        let seed = spec::opt_u64(map, ctx, "seed")?.unwrap_or(default_seed);
        let mut profile = FaultProfile::none();
        if let Some(p) = map.get("profile") {
            let pctx = spec::path(ctx, "profile");
            let pmap = spec::obj(p, &pctx)?;
            spec::known_fields(pmap, &pctx, Self::PROFILE_FIELDS)?;
            profile.drop_prob = spec::opt_prob(pmap, &pctx, "drop")?;
            profile.duplicate_prob = spec::opt_prob(pmap, &pctx, "duplicate")?;
            profile.corrupt_prob = spec::opt_prob(pmap, &pctx, "corrupt")?;
            profile.reorder_prob = spec::opt_prob(pmap, &pctx, "reorder")?;
            profile.delay_prob = spec::opt_prob(pmap, &pctx, "delay")?;
            profile.delay_chunks = spec::opt_u64(pmap, &pctx, "delay_chunks")?.unwrap_or(0) as u32;
            profile.disconnect_after = spec::opt_u64(pmap, &pctx, "disconnect_after")?;
            if profile.total_prob() > 1.0 + 1e-9 {
                return Err(RadError::spec(
                    &pctx,
                    format!("fault probabilities sum to {} (> 1)", profile.total_prob()),
                ));
            }
        }
        let mut outages = Vec::new();
        if let Some(list) = map.get("outages") {
            let octx = spec::path(ctx, "outages");
            let items = list
                .as_array()
                .ok_or_else(|| RadError::spec(&octx, "expected an array of outage windows"))?;
            for (i, item) in items.iter().enumerate() {
                let ictx = format!("{octx}[{i}]");
                let imap = spec::obj(item, &ictx)?;
                spec::known_fields(imap, &ictx, &["start_us", "duration_us"])?;
                outages.push((
                    spec::req_u64(imap, &ictx, "start_us")?,
                    spec::req_u64(imap, &ictx, "duration_us")?,
                ));
            }
        }
        Ok(FaultSpec {
            seed,
            profile,
            outages,
        })
    }

    /// The JSON form [`FaultSpec::from_json`] parses. Probabilities at
    /// their defaults are still written, so a serialized spec is fully
    /// explicit.
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::json;
        let p = &self.profile;
        let mut profile = json!({
            "drop": p.drop_prob,
            "duplicate": p.duplicate_prob,
            "corrupt": p.corrupt_prob,
            "reorder": p.reorder_prob,
            "delay": p.delay_prob,
            "delay_chunks": p.delay_chunks as u64,
        });
        if let Some(n) = p.disconnect_after {
            profile
                .as_object_mut()
                .expect("profile is an object")
                .insert("disconnect_after".into(), json!(n));
        }
        let outages: Vec<serde_json::Value> = self
            .outages
            .iter()
            .map(|&(s, d)| json!({"start_us": s, "duration_us": d}))
            .collect();
        json!({
            "seed": self.seed,
            "profile": profile,
            "outages": outages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(rx: &Duplex) -> Vec<Bytes> {
        let mut out = Vec::new();
        while let Ok(chunk) = rx.recv(Duration::from_millis(20)) {
            out.push(chunk);
        }
        out
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let a = FaultPlan::new(3, FaultProfile::drop(0.3));
        let b = FaultPlan::new(3, FaultProfile::drop(0.3));
        let c = FaultPlan::new(4, FaultProfile::drop(0.3));
        assert_eq!(
            a.schedule(Lane::Request, 256),
            b.schedule(Lane::Request, 256)
        );
        assert_ne!(
            a.schedule(Lane::Request, 256),
            c.schedule(Lane::Request, 256)
        );
        // Lanes draw independently.
        assert_ne!(
            a.schedule(Lane::Request, 256),
            a.schedule(Lane::Response, 256)
        );
    }

    #[test]
    fn probabilities_shape_the_schedule() {
        let plan = FaultPlan::new(0, FaultProfile::drop(0.25));
        let drops = plan
            .schedule(Lane::Request, 4000)
            .iter()
            .filter(|f| **f == WireFault::Drop)
            .count();
        // 4000 draws at p=0.25: expect ~1000, allow a wide margin.
        assert!((700..1300).contains(&drops), "drops = {drops}");
        let none = FaultPlan::new(0, FaultProfile::none());
        assert!(none
            .schedule(Lane::Request, 1000)
            .iter()
            .all(|f| *f == WireFault::Deliver));
    }

    #[test]
    fn disconnect_after_is_exact() {
        let plan = FaultPlan::new(1, FaultProfile::disconnect_after(5));
        let schedule = plan.schedule(Lane::Request, 8);
        assert!(schedule[..5].iter().all(|f| *f != WireFault::Disconnect));
        assert!(schedule[5..].iter().all(|f| *f == WireFault::Disconnect));
    }

    #[test]
    fn outage_windows_bound_unavailability() {
        let start = SimInstant::EPOCH + SimDuration::from_secs(10);
        let plan =
            FaultPlan::new(0, FaultProfile::none()).with_outage(start, SimDuration::from_secs(5));
        assert!(!plan.unavailable_at(SimInstant::EPOCH, 0));
        assert!(plan.unavailable_at(start, 0));
        assert!(plan.unavailable_at(start + SimDuration::from_secs(4), 0));
        assert!(!plan.unavailable_at(start + SimDuration::from_secs(5), 0));
    }

    #[test]
    fn corruption_is_deterministic_and_always_changes_the_chunk() {
        let plan = FaultPlan::new(9, FaultProfile::corrupt(1.0));
        let chunk = Bytes::from_static(b"payload bytes");
        let a = plan.corrupt_chunk(Lane::Request, 7, &chunk);
        let b = plan.corrupt_chunk(Lane::Request, 7, &chunk);
        assert_eq!(a, b, "same index corrupts identically");
        assert_ne!(a, chunk, "corruption flips at least one bit");
        let other = plan.corrupt_chunk(Lane::Request, 8, &chunk);
        // Different index: independent position/mask (may rarely
        // coincide in value, but must still differ from the original).
        assert_ne!(other, chunk);
    }

    #[test]
    fn faulty_duplex_drops_and_counts() {
        let stats = FaultStats::new();
        let plan = Arc::new(FaultPlan::new(0, FaultProfile::drop(0.5)));
        let (a, b) = Duplex::pair();
        let faulty = FaultyDuplex::new(a, Arc::clone(&plan), Lane::Request, stats.clone());
        for i in 0..100u8 {
            faulty.send(Bytes::copy_from_slice(&[i])).unwrap();
        }
        let received = collect(&b);
        let snap = stats.snapshot();
        assert_eq!(snap.delivered as usize, received.len());
        assert_eq!(snap.delivered + snap.dropped, 100);
        assert!(snap.dropped > 10, "{snap}");
    }

    #[test]
    fn faulty_duplex_duplicates_arrive_twice() {
        let stats = FaultStats::new();
        let plan = Arc::new(FaultPlan::new(0, FaultProfile::duplicate(1.0)));
        let (a, b) = Duplex::pair();
        let faulty = FaultyDuplex::new(a, plan, Lane::Request, stats);
        faulty.send(Bytes::from_static(b"x")).unwrap();
        assert_eq!(collect(&b).len(), 2);
    }

    #[test]
    fn reorder_swaps_adjacent_chunks() {
        let stats = FaultStats::new();
        // Reorder every chunk: 0 held until after 1, 1 held until
        // after 2, etc. — a rolling shift.
        let plan = Arc::new(FaultPlan::new(0, FaultProfile::reorder(1.0)));
        let (a, b) = Duplex::pair();
        let faulty = FaultyDuplex::new(a, plan, Lane::Request, stats.clone());
        for i in 0..4u8 {
            faulty.send(Bytes::copy_from_slice(&[i])).unwrap();
        }
        let received = collect(&b);
        // Every chunk was held one slot; chunk 3 is still in the queue
        // (tail loss) and 0..=2 arrive shifted.
        assert_eq!(stats.snapshot().held, 4);
        assert_eq!(
            received.iter().map(|c| c[0]).collect::<Vec<_>>(),
            vec![0, 1, 2],
        );
    }

    #[test]
    fn disconnect_stops_the_lane() {
        let stats = FaultStats::new();
        let plan = Arc::new(FaultPlan::new(0, FaultProfile::disconnect_after(2)));
        let (a, b) = Duplex::pair();
        let faulty = FaultyDuplex::new(a, plan, Lane::Request, stats.clone());
        faulty.send(Bytes::from_static(b"0")).unwrap();
        faulty.send(Bytes::from_static(b"1")).unwrap();
        let err = faulty.send(Bytes::from_static(b"2")).unwrap_err();
        assert!(matches!(err, RadError::RpcDisconnected(_)));
        // Subsequent sends fail without advancing the schedule.
        assert!(faulty.send(Bytes::from_static(b"3")).is_err());
        assert_eq!(collect(&b).len(), 2);
        assert_eq!(stats.snapshot().disconnects, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_probability_is_rejected() {
        let _ = FaultPlan::new(0, FaultProfile::drop(1.5));
    }

    #[test]
    fn stats_snapshot_displays_every_counter() {
        let stats = FaultStats::new();
        stats.note_retry();
        stats.note_gap();
        stats.note_dedup_eviction();
        let text = stats.snapshot().to_string();
        assert!(
            text.contains("retries=1")
                && text.contains("gaps=1")
                && text.contains("dedup_evictions=1"),
            "{text}"
        );
    }
}
