//! Middlebox safeguards: the "last level of defense" of §I.
//!
//! The paper's motivation for the middlebox is that it can host
//! safeguards — "alerts, anomaly detection, rule-based IDS, more
//! complex behavioral-based IDS" — that understand the language in
//! which the lab computer talks to the automation tools. This module
//! implements that policy layer:
//!
//! - [`GuardPolicy`] — a composable rule set evaluated *before* a
//!   command reaches a device: per-device allowlists, argument range
//!   rules, rate limits, and cross-device interlocks (e.g. never open
//!   the Quantos door while an arm is parked in its sweep — the exact
//!   rule that would have prevented the crashes of runs 16 and 17).
//! - [`GuardedMiddlebox`] — a [`Middlebox`] wrapper that consults the
//!   policy on every issue, rejects violating commands (still tracing
//!   them, with the rejection as the logged exception), and raises
//!   [`Alert`]s.

use std::collections::BTreeMap;
use std::fmt;

use rad_core::{
    Command, CommandCategory, CommandType, DeviceKind, RadError, SimDuration, SimInstant, Value,
};
use rad_devices::geometry::deck;

use crate::middlebox::{IssueOutcome, Middlebox};

/// Why the guard rejected a command.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The command type is not on the device's allowlist.
    NotAllowlisted {
        /// The rejected command type.
        command: CommandType,
    },
    /// A numeric argument fell outside its configured range.
    ArgumentOutOfPolicy {
        /// The rejected command type.
        command: CommandType,
        /// Human-readable description of the violated bound.
        bound: String,
    },
    /// The device exceeded its command-rate budget.
    RateLimited {
        /// The throttled device.
        device: DeviceKind,
        /// Commands observed in the current window.
        observed: u32,
        /// The configured budget.
        budget: u32,
    },
    /// A cross-device interlock fired.
    Interlock {
        /// Which interlock fired.
        rule: &'static str,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::NotAllowlisted { command } => {
                write!(f, "command {command} is not allowlisted")
            }
            Violation::ArgumentOutOfPolicy { command, bound } => {
                write!(f, "argument of {command} violates policy: {bound}")
            }
            Violation::RateLimited {
                device,
                observed,
                budget,
            } => {
                write!(
                    f,
                    "{device} exceeded rate budget ({observed} > {budget} per window)"
                )
            }
            Violation::Interlock { rule } => write!(f, "interlock fired: {rule}"),
        }
    }
}

/// An alert raised by the guard (delivered to the operator in the real
/// deployment; accumulated for inspection here).
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// When the violating command arrived.
    pub at: SimInstant,
    /// The violating command.
    pub command: Command,
    /// Why it was rejected.
    pub violation: Violation,
}

/// A numeric bound on one positional argument of a command type.
#[derive(Debug, Clone, PartialEq)]
struct ArgBound {
    index: usize,
    min: f64,
    max: f64,
}

/// A composable middlebox policy.
///
/// # Examples
///
/// ```
/// use rad_core::{Command, CommandType, Value};
/// use rad_middlebox::guard::GuardPolicy;
///
/// let policy = GuardPolicy::new()
///     .allow_all()
///     .bound_argument(CommandType::Sped, 0, 1.0, 200.0);
/// let ok = Command::new(CommandType::Sped, vec![Value::Float(150.0)]);
/// let bad = Command::new(CommandType::Sped, vec![Value::Float(450.0)]);
/// assert!(policy.check(&ok, None).is_ok());
/// assert!(policy.check(&bad, None).is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct GuardPolicy {
    allow_all: bool,
    allowlist: BTreeMap<DeviceKind, Vec<CommandType>>,
    bounds: Vec<(CommandType, ArgBound)>,
    rate_budgets: BTreeMap<DeviceKind, (u32, SimDuration)>,
    door_interlock: bool,
    motion_envelope: Option<(f64, f64)>,
}

impl GuardPolicy {
    /// An empty policy that rejects everything (deny by default).
    pub fn new() -> Self {
        GuardPolicy::default()
    }

    /// The paper-flavoured default deployment: everything allowlisted,
    /// the Quantos door interlock armed, and N9 speed capped at the
    /// value the Hein Lab uses for attended operation.
    pub fn recommended() -> Self {
        GuardPolicy::new()
            .allow_all()
            .with_door_interlock()
            .bound_argument(CommandType::Sped, 0, 1.0, 250.0)
            .bound_argument(CommandType::TargetMass, 0, 0.1, 1000.0)
            .bound_argument(CommandType::IkaSetTemperature, 0, 0.0, 150.0)
    }

    /// Accept every command type (range rules and interlocks still
    /// apply).
    #[must_use]
    pub fn allow_all(mut self) -> Self {
        self.allow_all = true;
        self
    }

    /// Allowlist one command type on its device.
    #[must_use]
    pub fn allow(mut self, command: CommandType) -> Self {
        self.allowlist
            .entry(command.device())
            .or_default()
            .push(command);
        self
    }

    /// Allowlist every non-motion command of a device (a conservative
    /// stance while a new device is commissioned in DIRECT mode).
    #[must_use]
    pub fn allow_queries(mut self, device: DeviceKind) -> Self {
        for ct in CommandType::for_device(device) {
            if matches!(
                ct.category(),
                CommandCategory::Query | CommandCategory::Init
            ) {
                self.allowlist.entry(device).or_default().push(ct);
            }
        }
        self
    }

    /// Bound positional argument `index` of `command` to
    /// `[min, max]` (as a float; integer arguments are widened).
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    #[must_use]
    pub fn bound_argument(
        mut self,
        command: CommandType,
        index: usize,
        min: f64,
        max: f64,
    ) -> Self {
        assert!(min <= max, "bound must be ordered");
        self.bounds.push((command, ArgBound { index, min, max }));
        self
    }

    /// Budget a device to `commands` per `window` of simulated time
    /// (the defense against the joystick-replay flooding attack).
    #[must_use]
    pub fn rate_limit(mut self, device: DeviceKind, commands: u32, window: SimDuration) -> Self {
        self.rate_budgets.insert(device, (commands, window));
        self
    }

    /// Arm the Quantos door interlock: `front_door_position("open")`
    /// is rejected while either arm is inside the door sweep.
    #[must_use]
    pub fn with_door_interlock(mut self) -> Self {
        self.door_interlock = true;
        self
    }

    /// Restrict arm motion targets to `x <= max_x`, `y <= max_y`
    /// (a crude workspace envelope).
    #[must_use]
    pub fn with_motion_envelope(mut self, max_x: f64, max_y: f64) -> Self {
        self.motion_envelope = Some((max_x, max_y));
        self
    }

    /// Checks a command against the static rules (allowlist, argument
    /// bounds, envelope) and, when `lab` is provided, the dynamic
    /// interlocks.
    ///
    /// # Errors
    ///
    /// Returns the first [`Violation`] found.
    pub fn check(
        &self,
        command: &Command,
        lab: Option<&rad_devices::LabState>,
    ) -> Result<(), Violation> {
        let ct = command.command_type();
        if !self.allow_all {
            let allowed = self
                .allowlist
                .get(&ct.device())
                .is_some_and(|list| list.contains(&ct));
            if !allowed {
                return Err(Violation::NotAllowlisted { command: ct });
            }
        }
        for (bound_ct, bound) in &self.bounds {
            if *bound_ct != ct {
                continue;
            }
            if let Some(v) = command.args().get(bound.index).and_then(Value::as_float) {
                if v < bound.min || v > bound.max {
                    return Err(Violation::ArgumentOutOfPolicy {
                        command: ct,
                        bound: format!(
                            "arg {} = {v} outside [{}, {}]",
                            bound.index, bound.min, bound.max
                        ),
                    });
                }
            }
        }
        if let Some((max_x, max_y)) = self.motion_envelope {
            if ct.category() == CommandCategory::Motion {
                for arg in command.args() {
                    if let Value::Location { x, y, .. } = arg {
                        if *x > max_x || *y > max_y {
                            return Err(Violation::ArgumentOutOfPolicy {
                                command: ct,
                                bound: format!(
                                    "target ({x}, {y}) outside envelope ({max_x}, {max_y})"
                                ),
                            });
                        }
                    }
                }
            }
        }
        if self.door_interlock && ct == CommandType::FrontDoorPosition {
            let opening = matches!(
                command.args().first(),
                Some(Value::Str(s)) if s == "open"
            ) || matches!(command.args().first(), Some(Value::Bool(true)));
            if opening {
                if let Some(lab) = lab {
                    let sweep = deck::quantos_door_sweep();
                    if sweep.contains(lab.n9_position) || sweep.contains(lab.ur3e_position) {
                        return Err(Violation::Interlock {
                            rule: "quantos door must not open while an arm is in its sweep",
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// Per-device sliding rate-limit state.
#[derive(Debug, Default)]
struct RateState {
    window_start: SimInstant,
    count: u32,
}

/// A [`Middlebox`] with the guard policy in front of the devices.
#[derive(Debug)]
pub struct GuardedMiddlebox {
    inner: Middlebox,
    policy: GuardPolicy,
    alerts: Vec<Alert>,
    rate_state: BTreeMap<DeviceKind, RateState>,
}

impl GuardedMiddlebox {
    /// Wraps a middlebox with a policy.
    pub fn new(inner: Middlebox, policy: GuardPolicy) -> Self {
        GuardedMiddlebox {
            inner,
            policy,
            alerts: Vec::new(),
            rate_state: BTreeMap::new(),
        }
    }

    /// The wrapped middlebox.
    pub fn middlebox(&self) -> &Middlebox {
        &self.inner
    }

    /// Mutable access to the wrapped middlebox.
    pub fn middlebox_mut(&mut self) -> &mut Middlebox {
        &mut self.inner
    }

    /// Alerts raised so far.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Finishes the session, yielding the command dataset (rejected
    /// commands included, with their rejection text as the exception).
    pub fn into_dataset(self) -> rad_store::CommandDataset {
        self.inner.into_dataset()
    }

    /// Issues a command through the guard.
    ///
    /// # Errors
    ///
    /// - [`RadError::Rpc`] with the violation text when the policy
    ///   rejects the command (the rejection is traced as an exception,
    ///   like any other middlebox-observed failure).
    /// - [`RadError::Device`] when the policy passes but the device
    ///   faults.
    pub fn issue(&mut self, command: &Command) -> Result<IssueOutcome, RadError> {
        let device = command.device();
        // Rate limiting happens before the static rules so a flood of
        // disallowed commands is also visible as a flood.
        if let Some((budget, window)) = self.policy.rate_budgets.get(&device).copied() {
            let now = self.inner.now();
            let state = self.rate_state.entry(device).or_default();
            if now.saturating_duration_since(state.window_start) > window {
                state.window_start = now;
                state.count = 0;
            }
            state.count += 1;
            if state.count > budget {
                let violation = Violation::RateLimited {
                    device,
                    observed: state.count,
                    budget,
                };
                return self.reject(command, violation);
            }
        }
        let lab = self.inner.rig().lab().clone();
        if let Err(violation) = self.policy.check(command, Some(&lab)) {
            return self.reject(command, violation);
        }
        self.inner.issue(command)
    }

    fn reject(
        &mut self,
        command: &Command,
        violation: Violation,
    ) -> Result<IssueOutcome, RadError> {
        let message = format!("guard rejected: {violation}");
        // Trace the rejected access: the dataset must show attacks that
        // the guard stopped (that is what makes it a tracing IDS, not a
        // silent firewall). We reuse the middlebox's tracer through a
        // zero-latency record by issuing nothing to the device.
        self.inner.record_rejection(command, &message);
        self.alerts.push(Alert {
            at: self.inner.now(),
            command: command.clone(),
            violation,
        });
        Err(RadError::Rpc(message))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rad_core::Label;
    use rad_core::ProcedureKind;
    use rad_core::RunId;

    fn guarded() -> GuardedMiddlebox {
        GuardedMiddlebox::new(Middlebox::new(0), GuardPolicy::recommended())
    }

    #[test]
    fn recommended_policy_passes_a_normal_workflow() {
        let mut mb = guarded();
        mb.issue(&Command::nullary(CommandType::InitC9)).unwrap();
        mb.issue(&Command::nullary(CommandType::Home)).unwrap();
        mb.issue(&Command::new(CommandType::Sped, vec![Value::Float(150.0)]))
            .unwrap();
        assert!(mb.alerts().is_empty());
    }

    #[test]
    fn speed_cap_blocks_a_speed_attack() {
        let mut mb = guarded();
        mb.issue(&Command::nullary(CommandType::InitC9)).unwrap();
        let err = mb
            .issue(&Command::new(CommandType::Sped, vec![Value::Float(450.0)]))
            .unwrap_err();
        assert!(err.to_string().contains("violates policy"), "{err}");
        assert_eq!(mb.alerts().len(), 1);
        // The device never saw the command: its speed is unchanged.
        assert_eq!(mb.middlebox().rig().c9().speed(), 150.0);
    }

    #[test]
    fn door_interlock_prevents_the_run_17_crash() {
        let mut mb = guarded();
        mb.issue(&Command::nullary(CommandType::InitUr3Arm))
            .unwrap();
        mb.issue(&Command::nullary(CommandType::InitQuantos))
            .unwrap();
        // Park the UR3e in the door sweep (the run-17 geometry).
        mb.issue(&Command::new(
            CommandType::MoveToLocation,
            vec![Value::Location {
                x: 750.0,
                y: 230.0,
                z: 150.0,
            }],
        ))
        .unwrap();
        // Without the guard this is a collision; with it, a rejection.
        let err = mb
            .issue(&Command::new(
                CommandType::FrontDoorPosition,
                vec![Value::Str("open".into())],
            ))
            .unwrap_err();
        assert!(err.to_string().contains("interlock"), "{err}");
        assert!(
            !mb.middlebox().rig().lab().quantos_door_open,
            "the door never moved"
        );
    }

    #[test]
    fn deny_by_default_blocks_unlisted_commands() {
        let policy = GuardPolicy::new().allow_queries(DeviceKind::Ika);
        let mut mb = GuardedMiddlebox::new(Middlebox::new(0), policy);
        mb.issue(&Command::nullary(CommandType::InitIka)).unwrap();
        mb.issue(&Command::nullary(CommandType::IkaReadDeviceName))
            .unwrap();
        let err = mb
            .issue(&Command::nullary(CommandType::IkaStartHeater))
            .unwrap_err();
        assert!(err.to_string().contains("not allowlisted"));
    }

    #[test]
    fn rate_limit_throttles_floods() {
        let policy =
            GuardPolicy::recommended().rate_limit(DeviceKind::C9, 5, SimDuration::from_secs(1));
        let mut mb = GuardedMiddlebox::new(Middlebox::new(0), policy);
        mb.issue(&Command::nullary(CommandType::InitC9)).unwrap();
        let mut rejected = 0;
        for _ in 0..20 {
            if mb.issue(&Command::nullary(CommandType::Mvng)).is_err() {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "the flood must hit the budget");
        // After the window passes, traffic flows again.
        mb.middlebox_mut().advance(SimDuration::from_secs(2));
        mb.issue(&Command::nullary(CommandType::Mvng)).unwrap();
    }

    #[test]
    fn rejections_are_traced_with_exceptions() {
        let mut mb = guarded();
        mb.middlebox_mut()
            .begin_run(RunId(0), ProcedureKind::Unknown, Label::Unknown);
        mb.issue(&Command::nullary(CommandType::InitC9)).unwrap();
        let _ = mb.issue(&Command::new(CommandType::Sped, vec![Value::Float(9999.0)]));
        let dataset = mb.into_dataset();
        assert_eq!(dataset.len(), 2);
        assert!(dataset.traces()[1]
            .exception()
            .is_some_and(|e| e.contains("guard rejected")));
    }

    #[test]
    fn motion_envelope_rejects_out_of_bounds_targets() {
        let policy = GuardPolicy::recommended().with_motion_envelope(500.0, 500.0);
        let mut mb = GuardedMiddlebox::new(Middlebox::new(0), policy);
        mb.issue(&Command::nullary(CommandType::InitC9)).unwrap();
        mb.issue(&Command::nullary(CommandType::Home)).unwrap();
        let err = mb
            .issue(&Command::new(
                CommandType::Arm,
                vec![Value::Location {
                    x: 900.0,
                    y: 100.0,
                    z: 100.0,
                }],
            ))
            .unwrap_err();
        assert!(err.to_string().contains("envelope"));
    }
}
