//! Store-backed trace sinks: the document-store mirror and the
//! durable WAL sink, as [`TraceSink`] implementations.
//!
//! RATracer logs every intercepted access "to a MongoDB instance or a
//! .csv file" (Fig. 3). These adapters put those destinations on the
//! composable sink plane, so the tracer's fan-out is just a stack —
//! `mirror.tee(durable)` — instead of bespoke per-destination fields.
//! The document shapes are exactly what the bespoke paths emitted, so
//! a mirror populated through a sink stack is byte-identical to one
//! populated record-by-record.

use std::sync::Arc;

use rad_core::{RadError, TraceBatch, TraceGap, TraceRow, TraceSink};
use rad_store::{DocumentStore, DurableStore};
use serde_json::{json, Value as Json};

/// The mirror document for one trace row (collection `"traces"`).
fn trace_doc(row: &TraceRow<'_>) -> Json {
    json!({
        "trace_id": row.id().0,
        "timestamp_us": row.timestamp().as_micros(),
        "device": row.device().kind().to_string(),
        "command": row.command_type().mnemonic(),
        "mode": row.mode().to_string(),
        "exception": row.exception(),
        "response_time_us": row.response_time().as_micros(),
    })
}

/// The mirror document for one trace gap (collection `"gaps"`).
fn gap_doc(gap: &TraceGap) -> Json {
    json!({
        "timestamp_us": gap.timestamp.as_micros(),
        "device": gap.device.kind().to_string(),
        "command": gap.command.mnemonic(),
        "intended_mode": gap.intended_mode.to_string(),
        "reason": gap.reason,
        "run_id": gap.run_id.map(|r| r.0),
    })
}

/// Mirrors every record into a [`DocumentStore`] (`"traces"` /
/// `"gaps"` collections), like RATracer's MongoDB sink. A full mirror
/// failing must not lose the in-memory record, so store errors are
/// swallowed — this sink never reports failure.
#[derive(Debug, Clone)]
pub struct MirrorSink {
    store: Arc<DocumentStore>,
}

impl MirrorSink {
    /// A sink mirroring into `store`.
    pub fn new(store: Arc<DocumentStore>) -> Self {
        MirrorSink { store }
    }

    /// The mirrored store.
    pub fn store(&self) -> &Arc<DocumentStore> {
        &self.store
    }
}

impl TraceSink for MirrorSink {
    fn accept(&mut self, batch: &TraceBatch) -> Result<(), RadError> {
        for row in batch.iter() {
            // The store only rejects non-objects, which cannot happen
            // here; ignore the result defensively.
            let _ = self.store.insert("traces", trace_doc(&row));
        }
        Ok(())
    }

    fn accept_gap(&mut self, gap: &TraceGap) -> Result<(), RadError> {
        let _ = self.store.insert("gaps", gap_doc(gap));
        Ok(())
    }
}

/// Writes every record through a [`DurableStore`]'s write-ahead log —
/// one WAL frame per accepted batch — so traces survive a process
/// crash. Unlike [`MirrorSink`], failures *are* reported; the caller
/// decides whether to degrade gracefully (the tracer counts them) or
/// abort.
#[derive(Debug, Clone)]
pub struct DurableSink {
    store: Arc<DurableStore>,
}

impl DurableSink {
    /// A sink logging into `store`.
    pub fn new(store: Arc<DurableStore>) -> Self {
        DurableSink { store }
    }

    /// The durable store behind the log.
    pub fn store(&self) -> &Arc<DurableStore> {
        &self.store
    }
}

impl TraceSink for DurableSink {
    fn accept(&mut self, batch: &TraceBatch) -> Result<(), RadError> {
        let docs: Vec<Json> = batch.iter().map(|row| trace_doc(&row)).collect();
        self.store.insert_batch("traces", docs).map(|_| ())
    }

    fn accept_gap(&mut self, gap: &TraceGap) -> Result<(), RadError> {
        self.store.insert("gaps", gap_doc(gap)).map(|_| ())
    }

    fn flush(&mut self) -> Result<(), RadError> {
        self.store.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rad_core::{
        Command, CommandType, DeviceId, SimInstant, TraceId, TraceObject, TraceSinkExt,
    };
    use rad_store::Filter;

    fn batch(n: u64) -> TraceBatch {
        TraceBatch::from_traces(
            &(0..n)
                .map(|i| {
                    TraceObject::builder(
                        TraceId(i),
                        SimInstant::from_micros(i * 10),
                        DeviceId::primary(CommandType::Arm.device()),
                        Command::nullary(CommandType::Arm),
                    )
                    .build()
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn mirror_sink_emits_the_legacy_doc_shape() {
        let store = Arc::new(DocumentStore::new());
        let mut sink = MirrorSink::new(Arc::clone(&store));
        sink.accept(&batch(3)).unwrap();
        assert_eq!(store.count("traces", &Filter::all()), 3);
        let docs = store.find("traces", &Filter::eq("trace_id", json!(1)));
        assert_eq!(docs[0]["command"], json!("ARM"));
        assert_eq!(docs[0]["device"], json!("C9"));
        assert_eq!(docs[0]["mode"], json!("DIRECT"));
    }

    #[test]
    fn tee_of_mirror_and_counting_duplicates_the_stream() {
        let store = Arc::new(DocumentStore::new());
        let mut stack = MirrorSink::new(Arc::clone(&store)).tee(rad_core::CountingSink::default());
        stack.accept(&batch(4)).unwrap();
        let (_, counting) = stack.into_inner();
        assert_eq!(counting.traces, 4);
        assert_eq!(store.count("traces", &Filter::all()), 4);
    }

    #[test]
    fn durable_sink_writes_one_frame_per_batch() {
        use rad_store::DurableOptions;
        let dir = std::env::temp_dir().join(format!("rad-sink-frame-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (store, _) = DurableStore::open(&dir, DurableOptions::default()).unwrap();
            let mut sink = DurableSink::new(Arc::new(store));
            sink.accept(&batch(100)).unwrap();
            sink.flush().unwrap();
        }
        let (store, report) = DurableStore::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(report.records_replayed, 1, "one WAL frame for the batch");
        assert_eq!(store.count("traces", &Filter::all()), 100);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
