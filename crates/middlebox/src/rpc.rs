//! The RPC substrate: the gRPC substitute between lab computer and
//! middlebox.
//!
//! RATracer tunnels each intercepted call through gRPC. This module
//! reproduces the moving parts that matter for a middlebox deployment:
//!
//! - a length-prefixed [`FrameCodec`] that reassembles frames from an
//!   arbitrarily-chunked byte stream,
//! - [`Duplex`] in-process byte transports (the socket substitute) and
//!   the [`Transport`] trait that lets the fault layer interpose a
//!   [`FaultyDuplex`](crate::faults::FaultyDuplex),
//! - a [`RpcServer`] thread that owns the device rig and executes one
//!   request at a time — the single RPC server loop of the real
//!   deployment — with an idempotency cache so a retried request is
//!   answered from memory instead of re-executed, and
//! - a blocking [`RpcClient`] with per-call timeouts and an optional
//!   retry-with-exponential-backoff [`RetryPolicy`].
//!
//! # Examples
//!
//! ```
//! use rad_core::{Command, CommandType};
//! use rad_devices::LabRig;
//! use rad_middlebox::rpc::{Duplex, RpcClient, RpcServer};
//! use std::time::Duration;
//!
//! let (client_side, server_side) = Duplex::pair();
//! let server = RpcServer::spawn(LabRig::new(0), server_side);
//! let mut client = RpcClient::new(client_side);
//! let value = client.call(&Command::nullary(CommandType::InitIka), Duration::from_secs(1))?;
//! assert_eq!(value, rad_core::Value::Unit);
//! drop(client); // closing the transport stops the server loop
//! server.join().expect("server thread exits cleanly");
//! # Ok::<(), rad_core::RadError>(())
//! ```

use std::collections::{HashMap, VecDeque};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use rad_core::{spec, Command, RadError, Value};
use rad_devices::LabRig;
use serde::{Deserialize, Serialize};

use crate::faults::FaultStats;
use crate::wire::{self, WireCodecKind};

/// Maximum accepted frame size (defensive bound against corrupt length
/// prefixes).
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// How many request/response pairs the server remembers for
/// idempotent replay of retried requests.
pub const DEDUP_CACHE_SIZE: usize = 1024;

/// A bounded LRU of request id → framed reply — the idempotency cache
/// behind both the [`RpcServer`] and the lab service's per-tenant
/// sessions.
///
/// Retried requests replay their cached reply instead of re-executing,
/// and recently *replayed* ids count as recently used, so the entries a
/// flaky client still needs outlive a flood of fresh traffic. Recency
/// is tracked with a monotonic tick per entry plus a queue of
/// `(id, tick)` observations; stale observations are skipped on
/// eviction and the queue is compacted once it doubles the capacity,
/// keeping both memory and amortized cost O(capacity).
///
/// Cached replies are shared [`Bytes`], so replaying one is a
/// reference-count bump, not a copy.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use rad_middlebox::rpc::DedupCache;
///
/// let mut cache = DedupCache::new(2);
/// cache.insert(1, Bytes::from_static(b"a"));
/// cache.insert(2, Bytes::from_static(b"b"));
/// cache.get(1); // refreshes id 1
/// let evicted = cache.insert(3, Bytes::from_static(b"c"));
/// assert_eq!(evicted, 1); // id 2 was least recently used
/// assert!(cache.get(1).is_some() && cache.get(2).is_none());
/// ```
#[derive(Debug)]
pub struct DedupCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<u64, (Bytes, u64)>,
    order: VecDeque<(u64, u64)>,
}

impl DedupCache {
    /// An empty cache holding at most `capacity` replies.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a server without any dedup
    /// window would double-execute every retry.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "dedup capacity must be at least 1");
        DedupCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many replies are currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every entry (a new session must not replay an old one's
    /// replies).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }

    /// The cached reply for `id`, refreshing its recency.
    pub fn get(&mut self, id: u64) -> Option<Bytes> {
        self.tick += 1;
        let tick = self.tick;
        let (reply, entry_tick) = self.entries.get_mut(&id)?;
        *entry_tick = tick;
        let reply = reply.clone();
        self.order.push_back((id, tick));
        self.compact_if_bloated();
        Some(reply)
    }

    /// Caches the reply for `id`, evicting least-recently-used entries
    /// beyond capacity. Returns how many entries were evicted (0 or 1,
    /// in steady state).
    pub fn insert(&mut self, id: u64, reply: Bytes) -> u64 {
        self.tick += 1;
        self.entries.insert(id, (reply, self.tick));
        self.order.push_back((id, self.tick));
        let mut evicted = 0;
        while self.entries.len() > self.capacity {
            let Some((old_id, old_tick)) = self.order.pop_front() else {
                break;
            };
            // Skip stale observations: the id was refreshed (or
            // overwritten) after this queue entry was recorded.
            if self
                .entries
                .get(&old_id)
                .is_some_and(|(_, tick)| *tick == old_tick)
            {
                self.entries.remove(&old_id);
                evicted += 1;
            }
        }
        self.compact_if_bloated();
        evicted
    }

    /// Rebuilds the recency queue from live entries once stale
    /// observations dominate, bounding it at O(capacity).
    fn compact_if_bloated(&mut self) {
        if self.order.len() < self.capacity.saturating_mul(2).max(16) {
            return;
        }
        let mut live: Vec<(u64, u64)> = self
            .entries
            .iter()
            .map(|(&id, &(_, tick))| (id, tick))
            .collect();
        live.sort_unstable_by_key(|&(_, tick)| tick);
        self.order = live.into();
    }
}

/// A byte-chunk transport between lab computer and middlebox.
///
/// [`Duplex`] is the perfect-channel implementation; the fault layer's
/// [`FaultyDuplex`](crate::faults::FaultyDuplex) interposes a seeded
/// fault schedule without the client or server knowing.
pub trait Transport {
    /// Sends one chunk to the peer.
    ///
    /// # Errors
    ///
    /// [`RadError::RpcDisconnected`] if the peer is gone.
    fn send(&self, chunk: Bytes) -> Result<(), RadError>;

    /// Receives the next chunk, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`RadError::RpcTimeout`] when the wait elapses with the peer
    /// still connected; [`RadError::RpcDisconnected`] when the peer is
    /// gone. Retry logic depends on telling these apart.
    fn recv(&self, timeout: Duration) -> Result<Bytes, RadError>;

    /// Receives the next chunk, blocking until the peer sends or
    /// disconnects. Returns `None` on disconnect.
    fn recv_blocking(&self) -> Option<Bytes>;
}

/// A request frame: one command invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RpcRequest {
    /// Client-assigned correlation id, doubling as the idempotency
    /// token: retries reuse the id, and the server replays the cached
    /// response for an id it has already executed.
    pub id: u64,
    /// The command to execute on the rig.
    pub command: Command,
}

/// A borrowed [`RpcRequest`]: serializes byte-identically to the owned
/// form without cloning the command — the wire path's per-issue
/// `command.clone()` deleted.
///
/// Hand-implemented `Serialize` because the derive shim rejects
/// lifetime parameters; the unit test
/// `borrowed_request_serializes_identically` pins the equivalence.
#[derive(Debug, Clone, Copy)]
pub struct RpcRequestRef<'a> {
    /// Client-assigned correlation / idempotency id.
    pub id: u64,
    /// The command to execute on the rig.
    pub command: &'a Command,
}

impl Serialize for RpcRequestRef<'_> {
    fn to_content(&self) -> serde::Content {
        serde::Content::Map(vec![
            ("id".to_owned(), self.id.to_content()),
            ("command".to_owned(), self.command.to_content()),
        ])
    }
}

/// A response frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RpcResponse {
    /// Echoed correlation id.
    pub id: u64,
    /// The return value, or the device fault rendered as a string (the
    /// exception text RATracer logs).
    pub result: Result<Value, String>,
}

/// Length-prefixed frame assembler: 4-byte big-endian length followed
/// by the payload.
///
/// The accepted frame size is configurable per endpoint
/// ([`FrameCodec::with_max_frame`]): trusted in-process endpoints use
/// the defensive [`MAX_FRAME_BYTES`] default, while a server decoding
/// untrusted client bytes caps frames much tighter.
///
/// Once [`FrameCodec::next_frame`] reports an error the codec is
/// poisoned — the byte stream has lost framing and every subsequent
/// call returns the same typed [`RadError::FrameTooLarge`] instead of
/// silently waiting forever on a corrupt length prefix.
/// [`FrameCodec::reset`] discards the buffered bytes and clears the
/// poison, which is sound whenever the transport delivers whole frames
/// per chunk (as [`Duplex`] does): the next chunk starts at a frame
/// boundary. On a real socket no such boundary exists, which is why
/// the lab service quarantines the session instead of resetting.
///
/// # Examples
///
/// ```
/// use rad_middlebox::rpc::FrameCodec;
///
/// let frame = FrameCodec::encode(b"hello");
/// let mut codec = FrameCodec::new();
/// // Feed the frame one byte at a time: it still reassembles.
/// for b in frame.iter() {
///     codec.push(&[*b]);
/// }
/// assert_eq!(codec.next_frame().unwrap().unwrap().as_ref(), b"hello");
/// ```
#[derive(Debug)]
pub struct FrameCodec {
    buf: BytesMut,
    max_frame: usize,
    poisoned: Option<RadError>,
}

impl Default for FrameCodec {
    fn default() -> Self {
        FrameCodec::new()
    }
}

impl FrameCodec {
    /// An empty codec accepting frames up to [`MAX_FRAME_BYTES`].
    pub fn new() -> Self {
        FrameCodec::with_max_frame(MAX_FRAME_BYTES)
    }

    /// An empty codec accepting frames up to `max_frame` bytes — the
    /// per-endpoint cap (servers bound untrusted client frames tighter
    /// than trusted in-process use).
    pub fn with_max_frame(max_frame: usize) -> Self {
        FrameCodec {
            buf: BytesMut::new(),
            max_frame,
            poisoned: None,
        }
    }

    /// The frame-size cap this endpoint enforces on decode.
    pub fn max_frame(&self) -> usize {
        self.max_frame
    }

    /// Encodes one payload as a framed byte string.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`MAX_FRAME_BYTES`] — such a frame
    /// could never be decoded by the peer.
    pub fn encode(payload: &[u8]) -> Bytes {
        assert!(
            payload.len() <= MAX_FRAME_BYTES,
            "payload of {} bytes exceeds MAX_FRAME_BYTES",
            payload.len()
        );
        let mut out = BytesMut::with_capacity(payload.len() + 4);
        out.put_u32(payload.len() as u32);
        out.put_slice(payload);
        out.freeze()
    }

    /// Appends one framed payload to a reusable buffer — the
    /// pooled-buffer form of [`FrameCodec::encode`]. Batch senders
    /// accumulate several frames in one scratch `Vec` and hand the
    /// transport a single chunk.
    ///
    /// # Panics
    ///
    /// As [`FrameCodec::encode`], if `payload` exceeds
    /// [`MAX_FRAME_BYTES`].
    pub fn encode_into(payload: &[u8], out: &mut Vec<u8>) {
        let start = FrameCodec::begin_frame(out);
        out.extend_from_slice(payload);
        FrameCodec::finish_frame(out, start);
    }

    /// Reserves a length prefix in `out` so a frame body can be
    /// written in place (no intermediate payload buffer). Returns the
    /// frame's start offset for [`FrameCodec::finish_frame`].
    pub fn begin_frame(out: &mut Vec<u8>) -> usize {
        let start = out.len();
        out.extend_from_slice(&[0u8; 4]);
        start
    }

    /// Backfills the length prefix reserved by
    /// [`FrameCodec::begin_frame`] once the body is written.
    ///
    /// # Panics
    ///
    /// Panics if the body exceeds [`MAX_FRAME_BYTES`] — such a frame
    /// could never be decoded by the peer.
    pub fn finish_frame(out: &mut [u8], start: usize) {
        let len = out.len() - start - 4;
        assert!(
            len <= MAX_FRAME_BYTES,
            "payload of {len} bytes exceeds MAX_FRAME_BYTES"
        );
        out[start..start + 4].copy_from_slice(&(len as u32).to_be_bytes());
    }

    /// Appends raw bytes received from the transport.
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.put_slice(chunk);
    }

    /// Extracts the next complete frame, if one has fully arrived.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::FrameTooLarge`] when the length prefix
    /// exceeds this endpoint's cap — the stream has lost framing at
    /// that point and the codec stays poisoned (repeating the same
    /// error) until [`FrameCodec::reset`].
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, RadError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > self.max_frame {
            let err = RadError::FrameTooLarge {
                len,
                limit: self.max_frame,
            };
            self.poisoned = Some(err.clone());
            return Err(err);
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        Ok(Some(self.buf.split_to(len).freeze()))
    }

    /// Discards all buffered bytes and clears the poison flag,
    /// resynchronizing at the next chunk boundary.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.poisoned = None;
    }
}

/// One side of an in-process byte-stream transport.
///
/// Stands in for a TCP socket between lab computer and middlebox: each
/// side can send byte chunks and receive the peer's chunks. Dropping a
/// side disconnects the stream.
#[derive(Debug)]
pub struct Duplex {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
}

impl Duplex {
    /// Creates a connected pair of transport endpoints.
    pub fn pair() -> (Duplex, Duplex) {
        let (a_tx, a_rx) = unbounded();
        let (b_tx, b_rx) = unbounded();
        (Duplex { tx: a_tx, rx: b_rx }, Duplex { tx: b_tx, rx: a_rx })
    }

    /// Sends one chunk to the peer.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::RpcDisconnected`] if the peer has
    /// disconnected.
    pub fn send(&self, chunk: Bytes) -> Result<(), RadError> {
        self.tx
            .send(chunk)
            .map_err(|_| RadError::RpcDisconnected("peer disconnected".into()))
    }

    /// Receives the next chunk, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::RpcTimeout`] when the wait elapses and
    /// [`RadError::RpcDisconnected`] when the peer is gone — distinct
    /// variants, because only the former is safely retryable.
    pub fn recv(&self, timeout: Duration) -> Result<Bytes, RadError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RadError::RpcTimeout("receive timed out".into()),
            RecvTimeoutError::Disconnected => RadError::RpcDisconnected("peer disconnected".into()),
        })
    }

    /// Receives the next chunk, blocking until the peer sends or
    /// disconnects. Returns `None` on disconnect.
    pub fn recv_blocking(&self) -> Option<Bytes> {
        self.rx.recv().ok()
    }
}

impl Transport for Duplex {
    fn send(&self, chunk: Bytes) -> Result<(), RadError> {
        Duplex::send(self, chunk)
    }

    fn recv(&self, timeout: Duration) -> Result<Bytes, RadError> {
        Duplex::recv(self, timeout)
    }

    fn recv_blocking(&self) -> Option<Bytes> {
        Duplex::recv_blocking(self)
    }
}

/// The middlebox's RPC server loop.
///
/// Owns the [`LabRig`]; executes one request at a time in arrival
/// order, exactly like the single gRPC service thread of the original
/// deployment. An idempotency cache of the last [`DEDUP_CACHE_SIZE`]
/// request ids replays cached responses for retried requests, so a
/// retry can never double-execute a device command. Undecodable bytes
/// (corrupt frames, garbage requests) are discarded and the codec
/// resynchronized — the affected caller times out and retries, rather
/// than one corrupt chunk killing the connection for everyone.
#[derive(Debug)]
pub struct RpcServer;

impl RpcServer {
    /// Spawns the server thread. The loop exits when the client side
    /// disconnects. The returned handle yields the rig back so tests
    /// can inspect final device state.
    pub fn spawn<T>(rig: LabRig, transport: T) -> JoinHandle<LabRig>
    where
        T: Transport + Send + 'static,
    {
        RpcServer::spawn_with_stats(rig, transport, FaultStats::new())
    }

    /// Like [`RpcServer::spawn`], with a shared [`FaultStats`] handle
    /// counting executions and idempotent replays — the observability
    /// hook the conformance suite uses to prove no double execution.
    pub fn spawn_with_stats<T>(rig: LabRig, transport: T, stats: FaultStats) -> JoinHandle<LabRig>
    where
        T: Transport + Send + 'static,
    {
        RpcServer::spawn_with_capacity(rig, transport, stats, DEDUP_CACHE_SIZE)
    }

    /// Like [`RpcServer::spawn_with_stats`], with a configurable
    /// [`DedupCache`] capacity. Evictions count as
    /// `dedup_evictions` on the stats handle.
    ///
    /// Each received chunk may carry several frames (a pipelined
    /// client coalesces its window into one write); the loop decodes
    /// them all — binary or JSON, per frame — and answers with one
    /// coalesced reply chunk, so a depth-N window costs two syscalls
    /// instead of 2N.
    pub fn spawn_with_capacity<T>(
        mut rig: LabRig,
        transport: T,
        stats: FaultStats,
        dedup_capacity: usize,
    ) -> JoinHandle<LabRig>
    where
        T: Transport + Send + 'static,
    {
        std::thread::spawn(move || {
            let mut codec = FrameCodec::new();
            let mut cache = DedupCache::new(dedup_capacity);
            // Reused across requests: the steady-state encode path
            // allocates nothing beyond the shared reply `Bytes`.
            let mut scratch: Vec<u8> = Vec::new();
            let mut batch: Vec<u8> = Vec::new();
            while let Some(chunk) = transport.recv_blocking() {
                codec.push(&chunk);
                batch.clear();
                loop {
                    let frame = match codec.next_frame() {
                        Ok(Some(f)) => f,
                        Ok(None) => break,
                        Err(_) => {
                            // Lost framing (corrupt length prefix).
                            // Resync at the next chunk; the in-flight
                            // request is lost and its caller retries.
                            codec.reset();
                            break;
                        }
                    };
                    let Ok(request) = wire::decode_rpc_request(&frame) else {
                        // Corrupt or garbage request: discard it (and
                        // any desynced remainder). The caller times
                        // out and retries with the same token.
                        codec.reset();
                        break;
                    };
                    if let Some(cached) = cache.get(request.id) {
                        // Idempotent replay: the command already ran.
                        stats.note_dedup_hit();
                        batch.extend_from_slice(&cached);
                        continue;
                    }
                    stats.note_execution();
                    let result = rig
                        .execute(&request.command)
                        .map(|outcome| outcome.return_value)
                        .map_err(|fault| fault.to_string());
                    scratch.clear();
                    let start = FrameCodec::begin_frame(&mut scratch);
                    if wire::is_binary(&frame) {
                        // Reply in the codec the request arrived in.
                        wire::encode_rpc_response(&mut scratch, request.id, &result);
                    } else {
                        let response = RpcResponse {
                            id: request.id,
                            result,
                        };
                        let payload =
                            serde_json::to_vec(&response).expect("responses always serialize");
                        scratch.extend_from_slice(&payload);
                    }
                    FrameCodec::finish_frame(&mut scratch, start);
                    let framed = Bytes::copy_from_slice(&scratch);
                    batch.extend_from_slice(&framed);
                    for _ in 0..cache.insert(request.id, framed) {
                        stats.note_dedup_eviction();
                    }
                }
                if !batch.is_empty() && transport.send(Bytes::copy_from_slice(&batch)).is_err() {
                    return rig;
                }
            }
            rig
        })
    }
}

/// Retry schedule for [`RpcClient::call_with_retry`].
///
/// Attempts are spaced by exponential backoff
/// (`initial_backoff * backoff_factor^(attempt-1)`), optionally
/// jittered ([`RetryPolicy::with_jitter`]), each attempt waits at most
/// `attempt_timeout` for its response, and the whole call gives up at
/// `deadline` regardless of attempts remaining. Only
/// [retryable](RadError::is_retryable) failures (timeouts, overload
/// rejects) re-attempt: the retried request reuses its idempotency
/// token, so the server never double-executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of attempts (first try included). At least 1.
    pub max_attempts: u32,
    /// Wait before the first retry.
    pub initial_backoff: Duration,
    /// Multiplier applied to the backoff after each retry.
    pub backoff_factor: u32,
    /// Response wait per attempt.
    pub attempt_timeout: Duration,
    /// Overall budget for the call, backoff included.
    pub deadline: Duration,
    /// Seed of the deterministic jitter stream. Two clients with
    /// different seeds de-synchronize even when they fail in lockstep.
    pub jitter_seed: u64,
    /// How much of each backoff may be jittered away, in per-mille
    /// (0 = pure exponential backoff, 500 = each wait is uniformly
    /// shortened by up to half). Kept as an integer so the policy
    /// stays `Eq`-comparable.
    pub jitter_per_mille: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            initial_backoff: Duration::from_millis(2),
            backoff_factor: 2,
            attempt_timeout: Duration::from_millis(250),
            deadline: Duration::from_secs(2),
            jitter_seed: 0,
            jitter_per_mille: 0,
        }
    }
}

impl RetryPolicy {
    /// A single attempt with `timeout` as both the attempt and overall
    /// budget — the no-retry semantics of [`RpcClient::call`].
    pub fn single(timeout: Duration) -> Self {
        RetryPolicy {
            max_attempts: 1,
            initial_backoff: Duration::ZERO,
            backoff_factor: 1,
            attempt_timeout: timeout,
            deadline: timeout,
            jitter_seed: 0,
            jitter_per_mille: 0,
        }
    }

    /// Adds seeded backoff jitter: each retry's wait is shortened by a
    /// deterministic fraction of up to `per_mille`/1000, drawn from a
    /// pure function of `(seed, attempt)`. Synchronized clients with
    /// distinct seeds therefore retry at distinct times instead of
    /// stampeding an overloaded server in lockstep — while any one
    /// client's schedule stays byte-reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `per_mille` exceeds 1000.
    #[must_use]
    pub fn with_jitter(mut self, seed: u64, per_mille: u32) -> Self {
        assert!(per_mille <= 1000, "jitter fraction {per_mille}‰ > 1000‰");
        self.jitter_seed = seed;
        self.jitter_per_mille = per_mille;
        self
    }

    /// The wait before attempt `attempt` (1-based: the wait taken
    /// after the `attempt`-th try failed) — a pure function of the
    /// policy and the attempt number, so the whole schedule can be
    /// precomputed and pinned by tests.
    ///
    /// Base is `initial_backoff * backoff_factor^(attempt-1)`; jitter
    /// subtracts `base * u * jitter_per_mille / 1000` where
    /// `u ∈ [0, 1)` is drawn from splitmix64 over
    /// `(jitter_seed, attempt)`.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let factor = self.backoff_factor.max(1);
        let mut base = self.initial_backoff;
        for _ in 1..attempt {
            base = base.saturating_mul(factor);
        }
        if self.jitter_per_mille == 0 {
            return base;
        }
        // splitmix64 over (seed, attempt): cheap, seeded, stateless.
        let mut z = self
            .jitter_seed
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        // The per-mille actually subtracted: uniform in
        // [0, jitter_per_mille).
        let cut_pm = (z % 1000) * u64::from(self.jitter_per_mille) / 1000;
        let nanos = base.as_nanos().min(u128::from(u64::MAX)) as u64;
        let cut = (u128::from(nanos) * u128::from(cut_pm) / 1000) as u64;
        Duration::from_nanos(nanos - cut)
    }
}

/// Blocking RPC client used by the (simulated) lab computer.
///
/// Generic over the [`Transport`] so the fault layer can interpose;
/// defaults to the perfect-channel [`Duplex`].
#[derive(Debug)]
pub struct RpcClient<T: Transport = Duplex> {
    transport: T,
    codec: FrameCodec,
    next_id: u64,
    stats: FaultStats,
    codec_kind: WireCodecKind,
    scratch: Vec<u8>,
}

impl<T: Transport> RpcClient<T> {
    /// Wraps a transport endpoint.
    pub fn new(transport: T) -> Self {
        RpcClient {
            transport,
            codec: FrameCodec::new(),
            next_id: 0,
            stats: FaultStats::new(),
            codec_kind: WireCodecKind::default(),
            scratch: Vec::new(),
        }
    }

    /// Attaches a shared [`FaultStats`] handle counting retries and
    /// timeouts observed by this client.
    #[must_use]
    pub fn with_stats(mut self, stats: FaultStats) -> Self {
        self.stats = stats;
        self
    }

    /// Selects the wire codec for requests (default JSON). The server
    /// detects the codec per frame and replies in kind, so no
    /// handshake is needed — see [`crate::wire`].
    #[must_use]
    pub fn with_codec(mut self, codec: WireCodecKind) -> Self {
        self.codec_kind = codec;
        self
    }

    /// The wire codec this client sends.
    pub fn codec_kind(&self) -> WireCodecKind {
        self.codec_kind
    }

    /// Sends `command` and blocks for its response — a single attempt,
    /// no retries.
    ///
    /// # Errors
    ///
    /// - [`RadError::RpcTimeout`] if no response arrives in `timeout`.
    /// - [`RadError::RpcDisconnected`] if the peer is gone.
    /// - [`RadError::Device`]-shaped failures come back as
    ///   [`RadError::Rpc`] with the fault text, since the fault crossed
    ///   the wire as a string — mirroring how RATracer logs remote
    ///   exceptions.
    pub fn call(&mut self, command: &Command, timeout: Duration) -> Result<Value, RadError> {
        self.call_with_retry(command, &RetryPolicy::single(timeout))
    }

    /// Sends `command` under `policy`: retryable failures re-attempt
    /// with exponential backoff, reusing the same idempotency token so
    /// the server can deduplicate.
    ///
    /// # Errors
    ///
    /// As [`RpcClient::call`], after the policy's attempts/deadline are
    /// exhausted.
    pub fn call_with_retry(
        &mut self,
        command: &Command,
        policy: &RetryPolicy,
    ) -> Result<Value, RadError> {
        let id = self.next_id;
        self.next_id += 1;
        let overall_deadline = Instant::now() + policy.deadline;
        let mut last_err = RadError::RpcTimeout("no response before deadline".into());
        for attempt in 0..policy.max_attempts.max(1) {
            if attempt > 0 {
                self.stats.note_retry();
                std::thread::sleep(policy.backoff_for(attempt));
            }
            let remaining = overall_deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            // Send failures are terminal (disconnect).
            self.scratch.clear();
            self.encode_request(id, command)?;
            self.flush_scratch()?;
            let wait = remaining.min(policy.attempt_timeout);
            match self.await_result(id, wait) {
                Ok(result) => return result.map_err(RadError::Rpc),
                Err(e) if e.is_retryable() => {
                    self.stats.note_timeout();
                    last_err = e;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    /// Issues a batch of commands with up to `depth` requests in
    /// flight, coalescing each window into a single transport write.
    ///
    /// Every command gets its own idempotency id; replies arrive in
    /// request order (the server executes sequentially), so results
    /// line up with `commands` positionally. Per-command device faults
    /// come back as the `Err(String)` arm of the inner result — they
    /// do not abort the batch, mirroring what a lock-step caller would
    /// observe one command at a time. On a retryable transport error
    /// the whole in-flight window is re-sent in one chunk; the
    /// server's [`DedupCache`] answers duplicates from memory, so no
    /// command can double-execute.
    ///
    /// # Errors
    ///
    /// As [`RpcClient::call`] for transport-level failures, after the
    /// policy's attempts are exhausted. The per-command deadline
    /// budget renews whenever the head of the window completes.
    pub fn call_pipelined(
        &mut self,
        commands: &[Command],
        policy: &RetryPolicy,
        depth: usize,
    ) -> Result<Vec<Result<Value, String>>, RadError> {
        let depth = depth.max(1);
        let ids: Vec<u64> = commands
            .iter()
            .map(|_| {
                let id = self.next_id;
                self.next_id += 1;
                id
            })
            .collect();
        let mut results: Vec<Option<Result<Value, String>>> = vec![None; commands.len()];
        let mut pending: VecDeque<usize> = VecDeque::new();
        let mut next = 0usize;
        let mut done = 0usize;
        let mut attempt = 0u32;
        let mut deadline = Instant::now() + policy.deadline;
        while done < commands.len() {
            // Top up the window, one coalesced write for all of it.
            if pending.len() < depth && next < commands.len() {
                self.scratch.clear();
                while pending.len() < depth && next < commands.len() {
                    self.encode_request(ids[next], &commands[next])?;
                    pending.push_back(next);
                    next += 1;
                }
                self.flush_scratch()?;
            }
            let head = *pending
                .front()
                .expect("incomplete batch has requests in flight");
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RadError::RpcTimeout("no response before deadline".into()));
            }
            match self.await_result(ids[head], remaining.min(policy.attempt_timeout)) {
                Ok(result) => {
                    results[head] = Some(result);
                    pending.pop_front();
                    done += 1;
                    attempt = 0;
                    deadline = Instant::now() + policy.deadline;
                }
                Err(e) if e.is_retryable() => {
                    self.stats.note_timeout();
                    attempt += 1;
                    if attempt >= policy.max_attempts.max(1) {
                        return Err(e);
                    }
                    self.stats.note_retry();
                    std::thread::sleep(policy.backoff_for(attempt));
                    // Re-send everything unacknowledged in one chunk;
                    // duplicates replay from the server's dedup cache.
                    self.scratch.clear();
                    for &i in &pending {
                        self.encode_request(ids[i], &commands[i])?;
                    }
                    self.flush_scratch()?;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every command completed"))
            .collect())
    }

    /// Appends one framed request to the scratch buffer in the
    /// session's codec — no allocation on the binary path, no command
    /// clone on either.
    fn encode_request(&mut self, id: u64, command: &Command) -> Result<(), RadError> {
        let start = FrameCodec::begin_frame(&mut self.scratch);
        match self.codec_kind {
            WireCodecKind::Binary => wire::encode_rpc_request(&mut self.scratch, id, command),
            WireCodecKind::Json => {
                let payload = serde_json::to_vec(&RpcRequestRef { id, command })
                    .map_err(|e| RadError::Rpc(format!("encode failure: {e}")))?;
                self.scratch.extend_from_slice(&payload);
            }
        }
        FrameCodec::finish_frame(&mut self.scratch, start);
        Ok(())
    }

    /// Sends the accumulated scratch frames as one chunk.
    fn flush_scratch(&mut self) -> Result<(), RadError> {
        let chunk = Bytes::copy_from_slice(&self.scratch);
        self.scratch.clear();
        self.transport.send(chunk)
    }

    /// Waits up to `timeout` for the response to `id`, skipping stale
    /// or undecodable frames (a corrupt response is treated as lost —
    /// the attempt times out and the retry machinery takes over).
    /// The outer result is transport-level; the inner is the remote
    /// command's own outcome.
    fn await_result(
        &mut self,
        id: u64,
        timeout: Duration,
    ) -> Result<Result<Value, String>, RadError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.codec.next_frame() {
                Ok(Some(frame)) => {
                    let Ok(response) = wire::decode_rpc_response(&frame) else {
                        // Corrupt response: discard buffered bytes and
                        // resync at the next chunk boundary.
                        self.codec.reset();
                        continue;
                    };
                    if response.id != id {
                        // A stale response from a timed-out earlier
                        // attempt: skip it and keep waiting for ours.
                        continue;
                    }
                    return Ok(response.result);
                }
                Ok(None) => {}
                Err(_) => {
                    // Corrupt length prefix: framing lost, drop the
                    // buffer and resync.
                    self.codec.reset();
                }
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RadError::RpcTimeout("receive timed out".into()));
            }
            let chunk = self.transport.recv(remaining)?;
            self.codec.push(&chunk);
        }
    }
}

/// The declarative form of a [`RetryPolicy`] — the `retry` section of a
/// scenario document.
///
/// Durations are integer milliseconds so the JSON stays exact and the
/// round-trip `from_policy(to_policy(s)) == s` holds bit-for-bit.
///
/// ```json
/// {
///   "max_attempts": 4,
///   "initial_backoff_ms": 2,
///   "backoff_factor": 2,
///   "attempt_timeout_ms": 250,
///   "deadline_ms": 2000,
///   "jitter_seed": 7,
///   "jitter_per_mille": 500
/// }
/// ```
///
/// Every field is optional; absent fields take the
/// [`RetryPolicy::default`] value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetrySpec {
    /// Maximum number of attempts (first try included).
    pub max_attempts: u32,
    /// Wait before the first retry, in milliseconds.
    pub initial_backoff_ms: u64,
    /// Multiplier applied to the backoff after each retry.
    pub backoff_factor: u32,
    /// Response wait per attempt, in milliseconds.
    pub attempt_timeout_ms: u64,
    /// Overall budget for the call, in milliseconds.
    pub deadline_ms: u64,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
    /// Jitter fraction in per-mille (0..=1000).
    pub jitter_per_mille: u32,
}

impl RetrySpec {
    const FIELDS: &'static [&'static str] = &[
        "max_attempts",
        "initial_backoff_ms",
        "backoff_factor",
        "attempt_timeout_ms",
        "deadline_ms",
        "jitter_seed",
        "jitter_per_mille",
    ];

    /// Captures an existing hand-wired policy as a spec. Sub-millisecond
    /// duration components are truncated.
    pub fn from_policy(policy: &RetryPolicy) -> Self {
        RetrySpec {
            max_attempts: policy.max_attempts,
            initial_backoff_ms: policy.initial_backoff.as_millis() as u64,
            backoff_factor: policy.backoff_factor,
            attempt_timeout_ms: policy.attempt_timeout.as_millis() as u64,
            deadline_ms: policy.deadline.as_millis() as u64,
            jitter_seed: policy.jitter_seed,
            jitter_per_mille: policy.jitter_per_mille,
        }
    }

    /// Builds the [`RetryPolicy`] this spec describes.
    pub fn to_policy(&self) -> RetryPolicy {
        RetryPolicy {
            max_attempts: self.max_attempts,
            initial_backoff: Duration::from_millis(self.initial_backoff_ms),
            backoff_factor: self.backoff_factor,
            attempt_timeout: Duration::from_millis(self.attempt_timeout_ms),
            deadline: Duration::from_millis(self.deadline_ms),
            jitter_seed: self.jitter_seed,
            jitter_per_mille: self.jitter_per_mille,
        }
    }

    /// Parses the `retry` section of a scenario document. `ctx` is the
    /// dotted path of `value` for error messages.
    ///
    /// # Errors
    ///
    /// [`RadError::Spec`] on unknown fields, ill-typed values, a zero
    /// `max_attempts`, or `jitter_per_mille > 1000`.
    pub fn from_json(value: &serde_json::Value, ctx: &str) -> Result<Self, RadError> {
        let map = spec::obj(value, ctx)?;
        spec::known_fields(map, ctx, Self::FIELDS)?;
        let defaults = RetrySpec::from_policy(&RetryPolicy::default());
        let u32_field = |key: &str, default: u32| -> Result<u32, RadError> {
            match spec::opt_u64(map, ctx, key)? {
                None => Ok(default),
                Some(v) => u32::try_from(v).map_err(|_| {
                    RadError::spec(spec::path(ctx, key), format!("{v} exceeds u32 range"))
                }),
            }
        };
        let parsed = RetrySpec {
            max_attempts: u32_field("max_attempts", defaults.max_attempts)?,
            initial_backoff_ms: spec::opt_u64(map, ctx, "initial_backoff_ms")?
                .unwrap_or(defaults.initial_backoff_ms),
            backoff_factor: u32_field("backoff_factor", defaults.backoff_factor)?,
            attempt_timeout_ms: spec::opt_u64(map, ctx, "attempt_timeout_ms")?
                .unwrap_or(defaults.attempt_timeout_ms),
            deadline_ms: spec::opt_u64(map, ctx, "deadline_ms")?.unwrap_or(defaults.deadline_ms),
            jitter_seed: spec::opt_u64(map, ctx, "jitter_seed")?.unwrap_or(defaults.jitter_seed),
            jitter_per_mille: u32_field("jitter_per_mille", defaults.jitter_per_mille)?,
        };
        if parsed.max_attempts == 0 {
            return Err(RadError::spec(
                spec::path(ctx, "max_attempts"),
                "must be at least 1",
            ));
        }
        if parsed.jitter_per_mille > 1000 {
            return Err(RadError::spec(
                spec::path(ctx, "jitter_per_mille"),
                format!("{}‰ exceeds 1000‰", parsed.jitter_per_mille),
            ));
        }
        Ok(parsed)
    }

    /// Serializes the spec back to its JSON form, every field explicit.
    pub fn to_json(&self) -> serde_json::Value {
        let mut map = serde_json::Map::new();
        map.insert(
            "max_attempts".into(),
            serde_json::Value::from(u64::from(self.max_attempts)),
        );
        map.insert(
            "initial_backoff_ms".into(),
            serde_json::Value::from(self.initial_backoff_ms),
        );
        map.insert(
            "backoff_factor".into(),
            serde_json::Value::from(u64::from(self.backoff_factor)),
        );
        map.insert(
            "attempt_timeout_ms".into(),
            serde_json::Value::from(self.attempt_timeout_ms),
        );
        map.insert(
            "deadline_ms".into(),
            serde_json::Value::from(self.deadline_ms),
        );
        map.insert(
            "jitter_seed".into(),
            serde_json::Value::from(self.jitter_seed),
        );
        map.insert(
            "jitter_per_mille".into(),
            serde_json::Value::from(u64::from(self.jitter_per_mille)),
        );
        serde_json::Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rad_core::CommandType;

    const T: Duration = Duration::from_secs(2);

    #[test]
    fn frame_codec_round_trips_chunked_input() {
        let payloads: [&[u8]; 3] = [b"a", b"hello world", &[0u8; 1000]];
        let mut stream = BytesMut::new();
        for p in payloads {
            stream.put_slice(&FrameCodec::encode(p));
        }
        // Feed in 7-byte chunks.
        let mut codec = FrameCodec::new();
        let mut decoded = Vec::new();
        for chunk in stream.chunks(7) {
            codec.push(chunk);
            while let Some(frame) = codec.next_frame().unwrap() {
                decoded.push(frame);
            }
        }
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[1].as_ref(), b"hello world");
        assert_eq!(decoded[2].len(), 1000);
    }

    #[test]
    fn oversized_frame_is_rejected_and_poisons() {
        let mut codec = FrameCodec::new();
        codec.push(&(MAX_FRAME_BYTES as u32 + 1).to_be_bytes());
        let err = codec.next_frame().unwrap_err();
        assert!(
            matches!(err, RadError::FrameTooLarge { len, limit }
                if len == MAX_FRAME_BYTES + 1 && limit == MAX_FRAME_BYTES),
            "{err:?}"
        );
        // Poisoned: more bytes don't resurrect the stream, and the
        // error repeats verbatim...
        codec.push(&FrameCodec::encode(b"ok"));
        assert_eq!(codec.next_frame().unwrap_err(), err);
        // ...but an explicit reset does.
        codec.reset();
        codec.push(&FrameCodec::encode(b"ok"));
        assert_eq!(codec.next_frame().unwrap().unwrap().as_ref(), b"ok");
    }

    #[test]
    fn per_endpoint_frame_cap_is_tighter_than_the_default() {
        // A server capping client frames at 64 bytes rejects a frame
        // the trusted in-process default would accept.
        let frame = FrameCodec::encode(&[0u8; 100]);
        let mut tight = FrameCodec::with_max_frame(64);
        assert_eq!(tight.max_frame(), 64);
        tight.push(&frame);
        let err = tight.next_frame().unwrap_err();
        assert_eq!(
            err,
            RadError::FrameTooLarge {
                len: 100,
                limit: 64
            }
        );
        let mut default = FrameCodec::new();
        default.push(&frame);
        assert_eq!(default.next_frame().unwrap().unwrap().len(), 100);
    }

    #[test]
    fn backoff_jitter_is_a_pure_function_of_seed_and_attempt() {
        let policy = RetryPolicy::default().with_jitter(7, 500);
        // Pure: the same (seed, attempt) always yields the same wait.
        for attempt in 1..6 {
            assert_eq!(policy.backoff_for(attempt), policy.backoff_for(attempt));
        }
        // Bounded: never longer than the un-jittered wait, never
        // shorter than (1 - per_mille/1000) of it.
        let plain = RetryPolicy::default();
        for attempt in 1..6 {
            let base = plain.backoff_for(attempt);
            let jittered = policy.backoff_for(attempt);
            assert!(jittered <= base, "attempt {attempt}");
            assert!(jittered >= base / 2, "attempt {attempt}");
        }
        // Seeds de-synchronize: two clients failing in lockstep wait
        // different amounts somewhere in the schedule.
        let other = RetryPolicy::default().with_jitter(8, 500);
        let schedule = |p: &RetryPolicy| (1..8).map(|a| p.backoff_for(a)).collect::<Vec<_>>();
        assert_ne!(schedule(&policy), schedule(&other));
    }

    #[test]
    fn backoff_without_jitter_is_exact_exponential() {
        let policy = RetryPolicy {
            initial_backoff: Duration::from_millis(3),
            backoff_factor: 2,
            ..RetryPolicy::default()
        };
        assert_eq!(policy.backoff_for(0), Duration::ZERO);
        assert_eq!(policy.backoff_for(1), Duration::from_millis(3));
        assert_eq!(policy.backoff_for(2), Duration::from_millis(6));
        assert_eq!(policy.backoff_for(3), Duration::from_millis(12));
    }

    #[test]
    fn jitter_schedule_is_pinned() {
        // Regression pin: the exact jittered waits for seed 42 at 250‰
        // over a 10 ms base. If the splitmix64 mix ever changes, this
        // fails loudly instead of silently reshuffling every client's
        // retry schedule.
        let policy = RetryPolicy {
            initial_backoff: Duration::from_millis(10),
            backoff_factor: 2,
            ..RetryPolicy::default()
        }
        .with_jitter(42, 250);
        let nanos: Vec<u64> = (1..4)
            .map(|a| policy.backoff_for(a).as_nanos() as u64)
            .collect();
        assert_eq!(nanos, vec![8_970_000, 18_560_000, 31_440_000]);
    }

    #[test]
    fn empty_frame_round_trips() {
        let mut codec = FrameCodec::new();
        codec.push(&FrameCodec::encode(b""));
        assert_eq!(codec.next_frame().unwrap().unwrap().len(), 0);
    }

    #[test]
    fn call_executes_on_the_remote_rig() {
        let (client_side, server_side) = Duplex::pair();
        let server = RpcServer::spawn(LabRig::new(0), server_side);
        let mut client = RpcClient::new(client_side);
        client
            .call(&Command::nullary(CommandType::InitC9), T)
            .unwrap();
        client
            .call(&Command::nullary(CommandType::Home), T)
            .unwrap();
        drop(client);
        let rig = server.join().unwrap();
        assert!(
            rig.c9().is_homed(),
            "state changes happened on the server's rig"
        );
    }

    #[test]
    fn device_faults_cross_the_wire_as_exceptions() {
        let (client_side, server_side) = Duplex::pair();
        let _server = RpcServer::spawn(LabRig::new(0), server_side);
        let mut client = RpcClient::new(client_side);
        // Motion before homing raises InvalidState on the device.
        client
            .call(&Command::nullary(CommandType::InitC9), T)
            .unwrap();
        let err = client
            .call(
                &Command::new(
                    CommandType::Arm,
                    vec![Value::Location {
                        x: 10.0,
                        y: 0.0,
                        z: 200.0,
                    }],
                ),
                T,
            )
            .unwrap_err();
        assert!(err.to_string().contains("not homed"), "{err}");
    }

    #[test]
    fn sequential_calls_preserve_order() {
        let (client_side, server_side) = Duplex::pair();
        let _server = RpcServer::spawn(LabRig::new(0), server_side);
        let mut client = RpcClient::new(client_side);
        client
            .call(&Command::nullary(CommandType::InitTecan), T)
            .unwrap();
        client
            .call(&Command::nullary(CommandType::TecanSetHomePosition), T)
            .unwrap();
        // The homing move keeps Q busy for a few polls, then idle.
        let mut saw_idle = false;
        for _ in 0..32 {
            let v = client
                .call(&Command::nullary(CommandType::TecanGetStatus), T)
                .unwrap();
            if v == Value::Str("idle".into()) {
                saw_idle = true;
                break;
            }
        }
        assert!(saw_idle);
    }

    #[test]
    fn client_times_out_when_server_is_gone() {
        let (client_side, server_side) = Duplex::pair();
        drop(server_side);
        let mut client = RpcClient::new(client_side);
        let err = client
            .call(
                &Command::nullary(CommandType::InitIka),
                Duration::from_millis(50),
            )
            .unwrap_err();
        assert!(err.to_string().contains("disconnected") || err.to_string().contains("timed out"));
    }

    #[test]
    fn timeout_and_disconnect_are_distinguished() {
        // Peer alive but silent: timeout.
        let (alive, _peer) = Duplex::pair();
        let err = alive.recv(Duration::from_millis(20)).unwrap_err();
        assert!(matches!(err, RadError::RpcTimeout(_)), "{err:?}");
        assert!(err.is_retryable());
        // Peer gone: disconnect, immediately.
        let (dead, peer) = Duplex::pair();
        drop(peer);
        let err = dead.recv(Duration::from_secs(5)).unwrap_err();
        assert!(matches!(err, RadError::RpcDisconnected(_)), "{err:?}");
        assert!(!err.is_retryable());
    }

    #[test]
    fn server_returns_rig_on_disconnect() {
        let (client_side, server_side) = Duplex::pair();
        let server = RpcServer::spawn(LabRig::new(3), server_side);
        drop(client_side);
        // Joining must not hang.
        server.join().unwrap();
    }

    #[test]
    fn malformed_request_is_discarded_not_fatal() {
        let (client_side, server_side) = Duplex::pair();
        let _server = RpcServer::spawn(LabRig::new(0), server_side);
        client_side.send(FrameCodec::encode(b"not json")).unwrap();
        // The server discards the garbage and keeps serving: a valid
        // call on the same connection still succeeds.
        let mut client = RpcClient::new(client_side);
        client
            .call(&Command::nullary(CommandType::InitIka), T)
            .unwrap();
    }

    #[test]
    fn retried_requests_execute_once() {
        let stats = FaultStats::new();
        let (client_side, server_side) = Duplex::pair();
        let _server = RpcServer::spawn_with_stats(LabRig::new(0), server_side, stats.clone());
        let mut client = RpcClient::new(client_side).with_stats(stats.clone());
        client
            .call(&Command::nullary(CommandType::InitC9), T)
            .unwrap();
        // Re-send the same request id by hand, as a retry would.
        let request = RpcRequest {
            id: 0,
            command: Command::nullary(CommandType::InitC9),
        };
        let payload = serde_json::to_vec(&request).unwrap();
        client.transport.send(FrameCodec::encode(&payload)).unwrap();
        // The replayed response arrives without a second execution.
        let replay = client.transport.recv(T).unwrap();
        assert!(!replay.is_empty());
        let snap = stats.snapshot();
        assert_eq!(snap.executions, 1, "{snap}");
        assert_eq!(snap.dedup_hits, 1, "{snap}");
    }

    #[test]
    fn borrowed_request_serializes_identically() {
        let command = Command::new(
            CommandType::Arm,
            vec![Value::Location {
                x: 1.0,
                y: 2.0,
                z: 3.0,
            }],
        );
        let owned = RpcRequest {
            id: 99,
            command: command.clone(),
        };
        let borrowed = RpcRequestRef {
            id: 99,
            command: &command,
        };
        assert_eq!(
            serde_json::to_vec(&owned).unwrap(),
            serde_json::to_vec(&borrowed).unwrap()
        );
    }

    #[test]
    fn dedup_cache_evicts_least_recently_used() {
        let mut cache = DedupCache::new(2);
        assert_eq!(cache.capacity(), 2);
        cache.insert(1, Bytes::from_static(b"a"));
        cache.insert(2, Bytes::from_static(b"b"));
        // Refresh 1, so 2 becomes the LRU entry.
        assert_eq!(cache.get(1).unwrap().as_ref(), b"a");
        assert_eq!(cache.insert(3, Bytes::from_static(b"c")), 1);
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some() && cache.get(3).is_some());
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn dedup_cache_recency_queue_stays_bounded() {
        let mut cache = DedupCache::new(4);
        for id in 0..4 {
            cache.insert(id, Bytes::from_static(b"x"));
        }
        // Hammer one id: stale observations must compact away instead
        // of growing the queue without bound.
        for _ in 0..10_000 {
            cache.get(2);
        }
        assert!(
            cache.order.len() <= 16,
            "queue grew to {}",
            cache.order.len()
        );
        // And the cache still evicts correctly afterwards.
        let evicted: u64 = (4..8)
            .map(|id| cache.insert(id, Bytes::from_static(b"y")))
            .sum();
        assert_eq!(evicted, 4);
        assert!(cache.get(2).is_none());
    }

    #[test]
    fn encode_into_matches_encode() {
        let mut pooled = Vec::new();
        FrameCodec::encode_into(b"hello", &mut pooled);
        FrameCodec::encode_into(b"", &mut pooled);
        let mut reference = Vec::new();
        reference.extend_from_slice(&FrameCodec::encode(b"hello"));
        reference.extend_from_slice(&FrameCodec::encode(b""));
        assert_eq!(pooled, reference);
    }

    #[test]
    fn binary_codec_calls_execute_on_the_rig() {
        let (client_side, server_side) = Duplex::pair();
        let server = RpcServer::spawn(LabRig::new(0), server_side);
        let mut client = RpcClient::new(client_side).with_codec(WireCodecKind::Binary);
        client
            .call(&Command::nullary(CommandType::InitC9), T)
            .unwrap();
        client
            .call(&Command::nullary(CommandType::Home), T)
            .unwrap();
        drop(client);
        let rig = server.join().unwrap();
        assert!(rig.c9().is_homed());
    }

    #[test]
    fn pipelined_batch_matches_lock_step_results() {
        let run = |pipelined: bool| -> Vec<Result<Value, String>> {
            let (client_side, server_side) = Duplex::pair();
            let _server = RpcServer::spawn(LabRig::new(0), server_side);
            let mut client = RpcClient::new(client_side).with_codec(WireCodecKind::Binary);
            let commands = vec![
                Command::nullary(CommandType::InitC9),
                Command::nullary(CommandType::Home),
                // Motion before homing would fault; after Home it works.
                Command::nullary(CommandType::Mvng),
                Command::nullary(CommandType::Temp),
            ];
            if pipelined {
                client
                    .call_pipelined(&commands, &RetryPolicy::default(), 3)
                    .unwrap()
            } else {
                commands
                    .iter()
                    .map(|c| match client.call(c, T) {
                        Ok(v) => Ok(v),
                        Err(RadError::Rpc(m)) => Err(m),
                        Err(other) => panic!("transport failure: {other}"),
                    })
                    .collect()
            }
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn pipelined_device_faults_do_not_abort_the_batch() {
        let (client_side, server_side) = Duplex::pair();
        let _server = RpcServer::spawn(LabRig::new(0), server_side);
        let mut client = RpcClient::new(client_side);
        let commands = vec![
            Command::nullary(CommandType::InitC9),
            // Not homed yet: the device rejects the motion.
            Command::new(
                CommandType::Arm,
                vec![Value::Location {
                    x: 10.0,
                    y: 0.0,
                    z: 200.0,
                }],
            ),
            Command::nullary(CommandType::Home),
        ];
        let results = client
            .call_pipelined(&commands, &RetryPolicy::default(), 8)
            .unwrap();
        assert!(results[0].is_ok());
        assert!(results[1].as_ref().unwrap_err().contains("not homed"));
        assert!(results[2].is_ok());
    }
}
