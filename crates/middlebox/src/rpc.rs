//! The RPC substrate: the gRPC substitute between lab computer and
//! middlebox.
//!
//! RATracer tunnels each intercepted call through gRPC. This module
//! reproduces the moving parts that matter for a middlebox deployment:
//!
//! - a length-prefixed [`FrameCodec`] that reassembles frames from an
//!   arbitrarily-chunked byte stream,
//! - [`Duplex`] in-process byte transports (the socket substitute),
//! - a [`RpcServer`] thread that owns the device rig and executes one
//!   request at a time — the single RPC server loop of the real
//!   deployment, and
//! - a blocking [`RpcClient`] with per-call timeouts.
//!
//! # Examples
//!
//! ```
//! use rad_core::{Command, CommandType};
//! use rad_devices::LabRig;
//! use rad_middlebox::rpc::{Duplex, RpcClient, RpcServer};
//! use std::time::Duration;
//!
//! let (client_side, server_side) = Duplex::pair();
//! let server = RpcServer::spawn(LabRig::new(0), server_side);
//! let mut client = RpcClient::new(client_side);
//! let value = client.call(&Command::nullary(CommandType::InitIka), Duration::from_secs(1))?;
//! assert_eq!(value, rad_core::Value::Unit);
//! drop(client); // closing the transport stops the server loop
//! server.join().expect("server thread exits cleanly");
//! # Ok::<(), rad_core::RadError>(())
//! ```

use std::thread::JoinHandle;
use std::time::Duration;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use rad_core::{Command, RadError, Value};
use rad_devices::LabRig;
use serde::{Deserialize, Serialize};

/// Maximum accepted frame size (defensive bound against corrupt length
/// prefixes).
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// A request frame: one command invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RpcRequest {
    /// Client-assigned correlation id.
    pub id: u64,
    /// The command to execute on the rig.
    pub command: Command,
}

/// A response frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RpcResponse {
    /// Echoed correlation id.
    pub id: u64,
    /// The return value, or the device fault rendered as a string (the
    /// exception text RATracer logs).
    pub result: Result<Value, String>,
}

/// Length-prefixed frame assembler: 4-byte big-endian length followed
/// by the payload.
///
/// # Examples
///
/// ```
/// use rad_middlebox::rpc::FrameCodec;
///
/// let frame = FrameCodec::encode(b"hello");
/// let mut codec = FrameCodec::new();
/// // Feed the frame one byte at a time: it still reassembles.
/// for b in frame.iter() {
///     codec.push(&[*b]);
/// }
/// assert_eq!(codec.next_frame().unwrap().unwrap().as_ref(), b"hello");
/// ```
#[derive(Debug, Default)]
pub struct FrameCodec {
    buf: BytesMut,
}

impl FrameCodec {
    /// An empty codec.
    pub fn new() -> Self {
        FrameCodec::default()
    }

    /// Encodes one payload as a framed byte string.
    pub fn encode(payload: &[u8]) -> Bytes {
        let mut out = BytesMut::with_capacity(payload.len() + 4);
        out.put_u32(payload.len() as u32);
        out.put_slice(payload);
        out.freeze()
    }

    /// Appends raw bytes received from the transport.
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.put_slice(chunk);
    }

    /// Extracts the next complete frame, if one has fully arrived.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Rpc`] when the length prefix exceeds
    /// [`MAX_FRAME_BYTES`] — the stream is unrecoverable at that point.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, RadError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(RadError::Rpc(format!("frame length {len} exceeds maximum")));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        Ok(Some(self.buf.split_to(len).freeze()))
    }
}

/// One side of an in-process byte-stream transport.
///
/// Stands in for a TCP socket between lab computer and middlebox: each
/// side can send byte chunks and receive the peer's chunks. Dropping a
/// side disconnects the stream.
#[derive(Debug)]
pub struct Duplex {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
}

impl Duplex {
    /// Creates a connected pair of transport endpoints.
    pub fn pair() -> (Duplex, Duplex) {
        let (a_tx, a_rx) = unbounded();
        let (b_tx, b_rx) = unbounded();
        (Duplex { tx: a_tx, rx: b_rx }, Duplex { tx: b_tx, rx: a_rx })
    }

    /// Sends one chunk to the peer.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Rpc`] if the peer has disconnected.
    pub fn send(&self, chunk: Bytes) -> Result<(), RadError> {
        self.tx
            .send(chunk)
            .map_err(|_| RadError::Rpc("peer disconnected".into()))
    }

    /// Receives the next chunk, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Rpc`] on timeout or disconnect; the message
    /// distinguishes the two.
    pub fn recv(&self, timeout: Duration) -> Result<Bytes, RadError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RadError::Rpc("receive timed out".into()),
            RecvTimeoutError::Disconnected => RadError::Rpc("peer disconnected".into()),
        })
    }

    /// Receives the next chunk, blocking until the peer sends or
    /// disconnects. Returns `None` on disconnect.
    pub fn recv_blocking(&self) -> Option<Bytes> {
        self.rx.recv().ok()
    }
}

/// The middlebox's RPC server loop.
///
/// Owns the [`LabRig`]; executes one request at a time in arrival
/// order, exactly like the single gRPC service thread of the original
/// deployment.
#[derive(Debug)]
pub struct RpcServer;

impl RpcServer {
    /// Spawns the server thread. The loop exits when the client side
    /// disconnects. The returned handle yields the rig back so tests
    /// can inspect final device state.
    pub fn spawn(mut rig: LabRig, transport: Duplex) -> JoinHandle<LabRig> {
        std::thread::spawn(move || {
            let mut codec = FrameCodec::new();
            'outer: while let Some(chunk) = transport.recv_blocking() {
                codec.push(&chunk);
                loop {
                    let frame = match codec.next_frame() {
                        Ok(Some(f)) => f,
                        Ok(None) => break,
                        Err(_) => break 'outer, // unrecoverable stream
                    };
                    let Ok(request) = serde_json::from_slice::<RpcRequest>(&frame) else {
                        // Malformed request: drop the connection, the
                        // client will observe a disconnect.
                        break 'outer;
                    };
                    let result = rig
                        .execute(&request.command)
                        .map(|outcome| outcome.return_value)
                        .map_err(|fault| fault.to_string());
                    let response = RpcResponse {
                        id: request.id,
                        result,
                    };
                    let payload =
                        serde_json::to_vec(&response).expect("responses always serialize");
                    if transport.send(FrameCodec::encode(&payload)).is_err() {
                        break 'outer;
                    }
                }
            }
            rig
        })
    }
}

/// Blocking RPC client used by the (simulated) lab computer.
#[derive(Debug)]
pub struct RpcClient {
    transport: Duplex,
    codec: FrameCodec,
    next_id: u64,
}

impl RpcClient {
    /// Wraps a transport endpoint.
    pub fn new(transport: Duplex) -> Self {
        RpcClient {
            transport,
            codec: FrameCodec::new(),
            next_id: 0,
        }
    }

    /// Sends `command` and blocks for its response.
    ///
    /// # Errors
    ///
    /// - [`RadError::Rpc`] on timeout, disconnect, or protocol errors.
    /// - [`RadError::Device`]-shaped failures come back as
    ///   [`RadError::Rpc`] with the fault text, since the fault crossed
    ///   the wire as a string — mirroring how RATracer logs remote
    ///   exceptions.
    pub fn call(&mut self, command: &Command, timeout: Duration) -> Result<Value, RadError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = RpcRequest {
            id,
            command: command.clone(),
        };
        let payload = serde_json::to_vec(&request)
            .map_err(|e| RadError::Rpc(format!("encode failure: {e}")))?;
        self.transport.send(FrameCodec::encode(&payload))?;
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(frame) = self.codec.next_frame()? {
                let response: RpcResponse = serde_json::from_slice(&frame)
                    .map_err(|e| RadError::Rpc(format!("decode failure: {e}")))?;
                if response.id != id {
                    // A stale response from a timed-out earlier call:
                    // skip it and keep waiting for ours.
                    continue;
                }
                return response.result.map_err(RadError::Rpc);
            }
            let remaining = deadline
                .checked_duration_since(std::time::Instant::now())
                .ok_or_else(|| RadError::Rpc("receive timed out".into()))?;
            let chunk = self.transport.recv(remaining)?;
            self.codec.push(&chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rad_core::CommandType;

    const T: Duration = Duration::from_secs(2);

    #[test]
    fn frame_codec_round_trips_chunked_input() {
        let payloads: [&[u8]; 3] = [b"a", b"hello world", &[0u8; 1000]];
        let mut stream = BytesMut::new();
        for p in payloads {
            stream.put_slice(&FrameCodec::encode(p));
        }
        // Feed in 7-byte chunks.
        let mut codec = FrameCodec::new();
        let mut decoded = Vec::new();
        for chunk in stream.chunks(7) {
            codec.push(chunk);
            while let Some(frame) = codec.next_frame().unwrap() {
                decoded.push(frame);
            }
        }
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[1].as_ref(), b"hello world");
        assert_eq!(decoded[2].len(), 1000);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut codec = FrameCodec::new();
        codec.push(&(MAX_FRAME_BYTES as u32 + 1).to_be_bytes());
        assert!(codec.next_frame().is_err());
    }

    #[test]
    fn empty_frame_round_trips() {
        let mut codec = FrameCodec::new();
        codec.push(&FrameCodec::encode(b""));
        assert_eq!(codec.next_frame().unwrap().unwrap().len(), 0);
    }

    #[test]
    fn call_executes_on_the_remote_rig() {
        let (client_side, server_side) = Duplex::pair();
        let server = RpcServer::spawn(LabRig::new(0), server_side);
        let mut client = RpcClient::new(client_side);
        client
            .call(&Command::nullary(CommandType::InitC9), T)
            .unwrap();
        client
            .call(&Command::nullary(CommandType::Home), T)
            .unwrap();
        drop(client);
        let rig = server.join().unwrap();
        assert!(
            rig.c9().is_homed(),
            "state changes happened on the server's rig"
        );
    }

    #[test]
    fn device_faults_cross_the_wire_as_exceptions() {
        let (client_side, server_side) = Duplex::pair();
        let _server = RpcServer::spawn(LabRig::new(0), server_side);
        let mut client = RpcClient::new(client_side);
        // Motion before homing raises InvalidState on the device.
        client
            .call(&Command::nullary(CommandType::InitC9), T)
            .unwrap();
        let err = client
            .call(
                &Command::new(
                    CommandType::Arm,
                    vec![Value::Location {
                        x: 10.0,
                        y: 0.0,
                        z: 200.0,
                    }],
                ),
                T,
            )
            .unwrap_err();
        assert!(err.to_string().contains("not homed"), "{err}");
    }

    #[test]
    fn sequential_calls_preserve_order() {
        let (client_side, server_side) = Duplex::pair();
        let _server = RpcServer::spawn(LabRig::new(0), server_side);
        let mut client = RpcClient::new(client_side);
        client
            .call(&Command::nullary(CommandType::InitTecan), T)
            .unwrap();
        client
            .call(&Command::nullary(CommandType::TecanSetHomePosition), T)
            .unwrap();
        // The homing move keeps Q busy for a few polls, then idle.
        let mut saw_idle = false;
        for _ in 0..32 {
            let v = client
                .call(&Command::nullary(CommandType::TecanGetStatus), T)
                .unwrap();
            if v == Value::Str("idle".into()) {
                saw_idle = true;
                break;
            }
        }
        assert!(saw_idle);
    }

    #[test]
    fn client_times_out_when_server_is_gone() {
        let (client_side, server_side) = Duplex::pair();
        drop(server_side);
        let mut client = RpcClient::new(client_side);
        let err = client
            .call(
                &Command::nullary(CommandType::InitIka),
                Duration::from_millis(50),
            )
            .unwrap_err();
        assert!(err.to_string().contains("disconnected") || err.to_string().contains("timed out"));
    }

    #[test]
    fn server_returns_rig_on_disconnect() {
        let (client_side, server_side) = Duplex::pair();
        let server = RpcServer::spawn(LabRig::new(3), server_side);
        drop(client_side);
        // Joining must not hang.
        server.join().unwrap();
    }

    #[test]
    fn malformed_request_drops_the_connection() {
        let (client_side, server_side) = Duplex::pair();
        let server = RpcServer::spawn(LabRig::new(0), server_side);
        client_side.send(FrameCodec::encode(b"not json")).unwrap();
        server.join().unwrap();
        // Subsequent receives observe the disconnect.
        assert!(client_side.recv(Duration::from_millis(200)).is_err());
    }
}
