//! The binary wire codec — the hot-path encoding of the lab protocol.
//!
//! PR 8's socket service speaks JSON for every frame, which costs a
//! `serde_json` encode/decode plus an allocation per command. This
//! module adds a compact binary form for the four framed message types
//! ([`RpcRequest`]/[`RpcResponse`] and the server's
//! [`WireFrame`]/[`ReplyFrame`]), reusing the segment store's proven
//! primitive codecs: LEB128 varints for ids and counts, the dense
//! [`CommandType::token_id`] dictionary for command mnemonics, the
//! tagged binary [`Value`] codec for arguments, and a CRC32 trailer so
//! corruption is caught at the frame boundary.
//!
//! # Self-describing frames
//!
//! Every binary payload starts with the version tag [`BINARY_TAG`]
//! (`0xB1`). JSON payloads always start with `{` (`0x7B`), so a single
//! leading byte distinguishes the codecs and every decoder here falls
//! back to JSON transparently. That is the whole negotiation story:
//! handshake and control frames (`Hello`, `BeginRun`, `Bye`, …) stay
//! JSON forever, old clients keep working unchanged, and a server
//! replies to each request in the codec the request arrived in — a
//! client "negotiates" binary simply by sending it after the JSON
//! `Hello`/`Welcome` exchange. See DESIGN.md §15.
//!
//! # Frame layout
//!
//! ```text
//! [0xB1][msg tag][body…][crc32 LE]
//!   │      │       │        └ CRC32 over everything before the trailer
//!   │      │       └ message-specific body (varints / tagged values)
//!   │      └ 1=RpcRequest 2=RpcResponse 3=WireFrame 4=ReplyFrame
//!   └ version tag (distinguishes binary from JSON's `{`)
//! ```
//!
//! Truncated input, a bad CRC, an unknown tag, or trailing garbage all
//! decode to `Err` — never a panic — and the transport layers treat
//! that exactly as they treat malformed JSON today (skip the frame,
//! let retry/idempotency recover).
//!
//! # Examples
//!
//! ```
//! use rad_core::{Command, CommandType, Value};
//! use rad_middlebox::rpc::RpcRequest;
//! use rad_middlebox::wire;
//!
//! let command = Command::new(CommandType::Move, vec![Value::Float(0.5)]);
//! let mut buf = Vec::new();
//! wire::encode_rpc_request(&mut buf, 7, &command);
//! assert!(wire::is_binary(&buf));
//! let back = wire::decode_rpc_request(&buf)?;
//! assert_eq!(back, RpcRequest { id: 7, command });
//! # Ok::<(), String>(())
//! ```

use rad_core::{AnomalyCause, Command, CommandType, Label, ProcedureKind, Value};
use rad_store::segment::codec::{read_value, write_str, write_value, write_varint, ByteReader};
use rad_store::wal::crc32;

use crate::rpc::{RpcRequest, RpcResponse};
use crate::server::{ReplyFrame, WireFrame, WireReply, WireRequest};

/// Version tag opening every binary frame payload. JSON payloads open
/// with `{` (`0x7B`), so the first byte alone routes the decoder.
pub const BINARY_TAG: u8 = 0xB1;

/// Which encoding a session speaks on its data plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireCodecKind {
    /// The PR 8 JSON wire — the default, and the only control-plane
    /// codec.
    #[default]
    Json,
    /// The binary frame codec of this module.
    Binary,
}

impl WireCodecKind {
    /// Parses the spec/CLI form (`"json"` / `"binary"`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "json" => Some(WireCodecKind::Json),
            "binary" => Some(WireCodecKind::Binary),
            _ => None,
        }
    }

    /// The spec/CLI name of this codec.
    pub const fn as_name(self) -> &'static str {
        match self {
            WireCodecKind::Json => "json",
            WireCodecKind::Binary => "binary",
        }
    }
}

/// Message tags (second payload byte).
mod msg {
    pub const RPC_REQUEST: u8 = 1;
    pub const RPC_RESPONSE: u8 = 2;
    pub const WIRE_FRAME: u8 = 3;
    pub const REPLY_FRAME: u8 = 4;
}

/// Whether a frame payload is binary-coded (as opposed to JSON).
pub fn is_binary(frame: &[u8]) -> bool {
    frame.first() == Some(&BINARY_TAG)
}

fn begin(out: &mut Vec<u8>, tag: u8) -> usize {
    let start = out.len();
    out.push(BINARY_TAG);
    out.push(tag);
    start
}

fn finish(out: &mut Vec<u8>, start: usize) {
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

fn write_command(out: &mut Vec<u8>, command: &Command) {
    write_varint(out, command.command_type().token_id() as u64);
    write_varint(out, command.args().len() as u64);
    for arg in command.args() {
        write_value(out, arg);
    }
}

fn read_command(r: &mut ByteReader<'_>, budget: usize) -> Result<Command, String> {
    let token = r.varint()? as usize;
    let command_type = CommandType::from_token_id(token)
        .ok_or_else(|| format!("unknown command token {token}"))?;
    let argc = r.varint()? as usize;
    if argc > budget {
        return Err(format!("implausible argument count {argc}"));
    }
    let mut args = Vec::with_capacity(argc);
    for _ in 0..argc {
        args.push(read_value(r)?);
    }
    Ok(Command::new(command_type, args))
}

const fn label_byte(label: Label) -> u8 {
    match label {
        Label::Benign => 0,
        Label::Unknown => 1,
        Label::Anomalous(AnomalyCause::QuantosDoorVsN9) => 2,
        Label::Anomalous(AnomalyCause::QuantosDoorVsUr3e) => 3,
        Label::Anomalous(AnomalyCause::ArmVsTecan) => 4,
    }
}

fn label_from_byte(b: u8) -> Result<Label, String> {
    Ok(match b {
        0 => Label::Benign,
        1 => Label::Unknown,
        2 => Label::Anomalous(AnomalyCause::QuantosDoorVsN9),
        3 => Label::Anomalous(AnomalyCause::QuantosDoorVsUr3e),
        4 => Label::Anomalous(AnomalyCause::ArmVsTecan),
        other => return Err(format!("unknown label byte {other}")),
    })
}

const fn procedure_byte(kind: ProcedureKind) -> u8 {
    match kind {
        ProcedureKind::AutomatedSolubilityN9 => 0,
        ProcedureKind::AutomatedSolubilityN9Ur3e => 1,
        ProcedureKind::CrystalSolubility => 2,
        ProcedureKind::JoystickMovements => 3,
        ProcedureKind::VelocitySweep => 4,
        ProcedureKind::PayloadSweep => 5,
        ProcedureKind::Unknown => 6,
    }
}

fn procedure_from_byte(b: u8) -> Result<ProcedureKind, String> {
    Ok(match b {
        0 => ProcedureKind::AutomatedSolubilityN9,
        1 => ProcedureKind::AutomatedSolubilityN9Ur3e,
        2 => ProcedureKind::CrystalSolubility,
        3 => ProcedureKind::JoystickMovements,
        4 => ProcedureKind::VelocitySweep,
        5 => ProcedureKind::PayloadSweep,
        6 => ProcedureKind::Unknown,
        other => return Err(format!("unknown procedure byte {other}")),
    })
}

/// Appends one binary [`RpcRequest`] payload. Borrows the command —
/// this is the allocation-free replacement for cloning it into an
/// owned request just to serialize.
pub fn encode_rpc_request(out: &mut Vec<u8>, id: u64, command: &Command) {
    let start = begin(out, msg::RPC_REQUEST);
    write_varint(out, id);
    write_command(out, command);
    finish(out, start);
}

/// Appends one binary [`RpcResponse`] payload.
pub fn encode_rpc_response(out: &mut Vec<u8>, id: u64, result: &Result<Value, String>) {
    let start = begin(out, msg::RPC_RESPONSE);
    write_varint(out, id);
    match result {
        Ok(value) => {
            out.push(0);
            write_value(out, value);
        }
        Err(message) => {
            out.push(1);
            write_str(out, message);
        }
    }
    finish(out, start);
}

/// Appends one binary [`WireFrame`] payload.
pub fn encode_wire_frame(out: &mut Vec<u8>, id: u64, body: &WireRequest) {
    match body {
        WireRequest::Issue {
            deadline_ms,
            command,
        } => encode_issue_frame(out, id, *deadline_ms, command),
        other => {
            let start = begin(out, msg::WIRE_FRAME);
            write_varint(out, id);
            match other {
                WireRequest::Hello { tenant } => {
                    out.push(0);
                    write_str(out, tenant);
                }
                WireRequest::Issue { .. } => unreachable!("handled above"),
                WireRequest::BeginRun {
                    run,
                    procedure,
                    label,
                } => {
                    out.push(2);
                    write_varint(out, u64::from(*run));
                    out.push(procedure_byte(*procedure));
                    out.push(label_byte(*label));
                }
                WireRequest::EndRun => out.push(3),
                WireRequest::Annotate { note } => {
                    out.push(4);
                    write_str(out, note);
                }
                WireRequest::Advance { micros } => {
                    out.push(5);
                    write_varint(out, *micros);
                }
                WireRequest::Sync => out.push(6),
                WireRequest::Bye => out.push(7),
            }
            finish(out, start);
        }
    }
}

/// Appends one binary `Issue` [`WireFrame`] payload with a *borrowed*
/// command — the pipelined client's hot path, which never builds an
/// owned [`WireRequest`].
pub fn encode_issue_frame(out: &mut Vec<u8>, id: u64, deadline_ms: u64, command: &Command) {
    let start = begin(out, msg::WIRE_FRAME);
    write_varint(out, id);
    out.push(1);
    write_varint(out, deadline_ms);
    write_command(out, command);
    finish(out, start);
}

/// Appends one binary [`ReplyFrame`] payload.
pub fn encode_reply_frame(out: &mut Vec<u8>, id: u64, body: &WireReply) {
    let start = begin(out, msg::REPLY_FRAME);
    write_varint(out, id);
    match body {
        WireReply::Welcome {
            session,
            issues_done,
        } => {
            out.push(0);
            write_varint(out, *session);
            write_varint(out, *issues_done);
        }
        WireReply::Done { value, fault } => {
            out.push(1);
            let flags = u8::from(value.is_some()) | (u8::from(fault.is_some()) << 1);
            out.push(flags);
            if let Some(value) = value {
                write_value(out, value);
            }
            if let Some(fault) = fault {
                write_str(out, fault);
            }
        }
        WireReply::Accepted => out.push(2),
        WireReply::Expired => out.push(3),
        WireReply::Rejected { reason } => {
            out.push(4);
            write_str(out, reason);
        }
        WireReply::Failed { message } => {
            out.push(5);
            write_str(out, message);
        }
        WireReply::Goodbye { issues_done } => {
            out.push(6);
            write_varint(out, *issues_done);
        }
    }
    finish(out, start);
}

/// Validates the tag + CRC envelope and returns the message body.
fn open(frame: &[u8], expect_tag: u8) -> Result<&[u8], String> {
    if frame.len() < 6 {
        return Err(format!(
            "binary frame of {} bytes is too short",
            frame.len()
        ));
    }
    let (body, trailer) = frame.split_at(frame.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().expect("4 bytes"));
    let actual = crc32(body);
    if stored != actual {
        return Err(format!(
            "frame crc mismatch: stored {stored:08x}, computed {actual:08x}"
        ));
    }
    if body[1] != expect_tag {
        return Err(format!(
            "expected message tag {expect_tag}, got {}",
            body[1]
        ));
    }
    Ok(&body[2..])
}

/// Decodes an [`RpcRequest`] from either codec: binary when the frame
/// opens with [`BINARY_TAG`], JSON otherwise.
///
/// # Errors
///
/// Returns a message on truncation, CRC mismatch, unknown tags, or
/// malformed JSON — callers skip the frame, as they do today.
pub fn decode_rpc_request(frame: &[u8]) -> Result<RpcRequest, String> {
    if !is_binary(frame) {
        return serde_json::from_slice(frame).map_err(|e| format!("bad json request: {e:?}"));
    }
    let body = open(frame, msg::RPC_REQUEST)?;
    let mut r = ByteReader::new(body);
    let id = r.varint()?;
    let command = read_command(&mut r, body.len())?;
    r.expect_empty()?;
    Ok(RpcRequest { id, command })
}

/// Decodes an [`RpcResponse`] from either codec.
///
/// # Errors
///
/// As [`decode_rpc_request`].
pub fn decode_rpc_response(frame: &[u8]) -> Result<RpcResponse, String> {
    if !is_binary(frame) {
        return serde_json::from_slice(frame).map_err(|e| format!("bad json response: {e:?}"));
    }
    let body = open(frame, msg::RPC_RESPONSE)?;
    let mut r = ByteReader::new(body);
    let id = r.varint()?;
    let result = match r.u8()? {
        0 => Ok(read_value(&mut r)?),
        1 => Err(r.str()?),
        other => return Err(format!("unknown result byte {other}")),
    };
    r.expect_empty()?;
    Ok(RpcResponse { id, result })
}

/// Decodes a [`WireFrame`] from either codec.
///
/// # Errors
///
/// As [`decode_rpc_request`].
pub fn decode_wire_frame(frame: &[u8]) -> Result<WireFrame, String> {
    if !is_binary(frame) {
        return serde_json::from_slice(frame).map_err(|e| format!("bad json frame: {e:?}"));
    }
    let body = open(frame, msg::WIRE_FRAME)?;
    let mut r = ByteReader::new(body);
    let id = r.varint()?;
    let request = match r.u8()? {
        0 => WireRequest::Hello { tenant: r.str()? },
        1 => WireRequest::Issue {
            deadline_ms: r.varint()?,
            command: read_command(&mut r, body.len())?,
        },
        2 => {
            let run = u32::try_from(r.varint()?).map_err(|_| "run id overflows u32")?;
            WireRequest::BeginRun {
                run,
                procedure: procedure_from_byte(r.u8()?)?,
                label: label_from_byte(r.u8()?)?,
            }
        }
        3 => WireRequest::EndRun,
        4 => WireRequest::Annotate { note: r.str()? },
        5 => WireRequest::Advance {
            micros: r.varint()?,
        },
        6 => WireRequest::Sync,
        7 => WireRequest::Bye,
        other => return Err(format!("unknown request byte {other}")),
    };
    r.expect_empty()?;
    Ok(WireFrame { id, body: request })
}

/// Decodes a [`ReplyFrame`] from either codec.
///
/// # Errors
///
/// As [`decode_rpc_request`].
pub fn decode_reply_frame(frame: &[u8]) -> Result<ReplyFrame, String> {
    if !is_binary(frame) {
        return serde_json::from_slice(frame).map_err(|e| format!("bad json reply: {e:?}"));
    }
    let body = open(frame, msg::REPLY_FRAME)?;
    let mut r = ByteReader::new(body);
    let id = r.varint()?;
    let reply = match r.u8()? {
        0 => WireReply::Welcome {
            session: r.varint()?,
            issues_done: r.varint()?,
        },
        1 => {
            let flags = r.u8()?;
            if flags > 3 {
                return Err(format!("unknown done flags {flags:02x}"));
            }
            let value = if flags & 1 != 0 {
                Some(read_value(&mut r)?)
            } else {
                None
            };
            let fault = if flags & 2 != 0 { Some(r.str()?) } else { None };
            WireReply::Done { value, fault }
        }
        2 => WireReply::Accepted,
        3 => WireReply::Expired,
        4 => WireReply::Rejected { reason: r.str()? },
        5 => WireReply::Failed { message: r.str()? },
        6 => WireReply::Goodbye {
            issues_done: r.varint()?,
        },
        other => return Err(format!("unknown reply byte {other}")),
    };
    r.expect_empty()?;
    Ok(ReplyFrame { id, body: reply })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rad_core::{Command, CommandType};

    fn sample_command() -> Command {
        Command::new(
            CommandType::Move,
            vec![
                Value::Float(0.25),
                Value::Str("solid=CSTI".into()),
                Value::List(vec![Value::Int(-3), Value::Unit]),
            ],
        )
    }

    #[test]
    fn rpc_request_round_trips_and_matches_owned_form() {
        let command = sample_command();
        let mut buf = Vec::new();
        encode_rpc_request(&mut buf, 42, &command);
        assert!(is_binary(&buf));
        let back = decode_rpc_request(&buf).unwrap();
        assert_eq!(back, RpcRequest { id: 42, command });
    }

    #[test]
    fn rpc_response_round_trips_both_arms() {
        for result in [Ok(Value::Joints([0.0; 6])), Err("device fault".to_owned())] {
            let mut buf = Vec::new();
            encode_rpc_response(&mut buf, 7, &result);
            let back = decode_rpc_response(&buf).unwrap();
            assert_eq!(back, RpcResponse { id: 7, result });
        }
    }

    #[test]
    fn every_wire_request_round_trips() {
        let requests = vec![
            WireRequest::Hello {
                tenant: "alice".into(),
            },
            WireRequest::Issue {
                deadline_ms: 10_000,
                command: sample_command(),
            },
            WireRequest::BeginRun {
                run: 16,
                procedure: ProcedureKind::AutomatedSolubilityN9,
                label: Label::Anomalous(AnomalyCause::QuantosDoorVsN9),
            },
            WireRequest::EndRun,
            WireRequest::Annotate {
                note: "mid-run".into(),
            },
            WireRequest::Advance { micros: 1_000_000 },
            WireRequest::Sync,
            WireRequest::Bye,
        ];
        for (i, body) in requests.into_iter().enumerate() {
            let mut buf = Vec::new();
            encode_wire_frame(&mut buf, i as u64, &body);
            let back = decode_wire_frame(&buf).unwrap();
            assert_eq!(back, WireFrame { id: i as u64, body });
        }
    }

    #[test]
    fn every_wire_reply_round_trips() {
        let replies = vec![
            WireReply::Welcome {
                session: 9,
                issues_done: 120,
            },
            WireReply::Done {
                value: Some(Value::Unit),
                fault: None,
            },
            WireReply::Done {
                value: None,
                fault: Some("relay fault".into()),
            },
            WireReply::Done {
                value: None,
                fault: None,
            },
            WireReply::Accepted,
            WireReply::Expired,
            WireReply::Rejected {
                reason: "busy".into(),
            },
            WireReply::Failed {
                message: "no hello".into(),
            },
            WireReply::Goodbye { issues_done: 3 },
        ];
        for (i, body) in replies.into_iter().enumerate() {
            let mut buf = Vec::new();
            encode_reply_frame(&mut buf, i as u64, &body);
            let back = decode_reply_frame(&buf).unwrap();
            assert_eq!(back, ReplyFrame { id: i as u64, body });
        }
    }

    #[test]
    fn borrowed_issue_encoding_matches_owned_wire_frame() {
        let command = sample_command();
        let owned = WireRequest::Issue {
            deadline_ms: 250,
            command: command.clone(),
        };
        let mut via_owned = Vec::new();
        encode_wire_frame(&mut via_owned, 5, &owned);
        let mut via_ref = Vec::new();
        encode_issue_frame(&mut via_ref, 5, 250, &command);
        assert_eq!(via_owned, via_ref);
    }

    #[test]
    fn json_frames_fall_back_transparently() {
        let frame = WireFrame {
            id: 3,
            body: WireRequest::Sync,
        };
        let json = serde_json::to_vec(&frame).unwrap();
        assert!(!is_binary(&json));
        assert_eq!(decode_wire_frame(&json).unwrap(), frame);
    }

    #[test]
    fn corruption_and_truncation_are_rejected() {
        let mut buf = Vec::new();
        encode_rpc_request(&mut buf, 1, &sample_command());
        for cut in 0..buf.len() {
            assert!(decode_rpc_request(&buf[..cut]).is_err(), "cut at {cut}");
        }
        for bit in 0..(buf.len() * 8) {
            let mut flipped = buf.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            // A flip of the version tag's bits may turn the frame into
            // "JSON", which then fails JSON parsing — either way, Err.
            assert!(decode_rpc_request(&flipped).is_err(), "bit {bit}");
        }
    }

    #[test]
    fn wrong_message_tag_is_rejected() {
        let mut buf = Vec::new();
        encode_rpc_request(&mut buf, 1, &sample_command());
        assert!(decode_rpc_response(&buf).is_err());
        assert!(decode_wire_frame(&buf).is_err());
    }

    #[test]
    fn codec_kind_names_round_trip() {
        for kind in [WireCodecKind::Json, WireCodecKind::Binary] {
            assert_eq!(WireCodecKind::from_name(kind.as_name()), Some(kind));
        }
        assert_eq!(WireCodecKind::from_name("protobuf"), None);
        assert_eq!(WireCodecKind::default(), WireCodecKind::Json);
    }
}
