//! Multi-middlebox deployment — §VII's scaling story.
//!
//! "As the number of devices grows from five to fifty, a single
//! middlebox will not suffice... Expansion will therefore require,
//! potentially, a distributed architecture with multiple middleboxes
//! in smaller form factors." This module implements that architecture
//! over the RPC substrate: devices are partitioned across shards, each
//! shard is its own middlebox (an [`RpcServer`] owning a rig), and the
//! lab computer talks to an [`RpcCluster`] that routes each command to
//! the owning shard.
//!
//! The implementation makes the paper's open problem concrete: each
//! shard only sees *its* devices, so cross-device interlocks (like the
//! Quantos-door-vs-arm rule) cannot be enforced by any single shard —
//! see [`RpcCluster::shard_of`] and the tests, which demonstrate both
//! the scaling win and the lost-interlock caveat.

use std::collections::BTreeMap;
use std::thread::JoinHandle;
use std::time::Duration;

use rad_core::{Command, DeviceKind, RadError, Value};
use rad_devices::LabRig;

use crate::rpc::{Duplex, RpcClient, RpcServer};

/// How devices are partitioned across shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    assignment: BTreeMap<DeviceKind, usize>,
    shard_count: usize,
}

impl ShardPlan {
    /// Round-robin partition of the five devices across `shard_count`
    /// shards.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero.
    pub fn round_robin(shard_count: usize) -> Self {
        assert!(shard_count > 0, "need at least one shard");
        let assignment = DeviceKind::all()
            .iter()
            .enumerate()
            .map(|(i, d)| (*d, i % shard_count))
            .collect();
        ShardPlan {
            assignment,
            shard_count,
        }
    }

    /// An explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment does not cover all five devices or
    /// references a shard `>= shard_count`.
    pub fn explicit(assignment: BTreeMap<DeviceKind, usize>, shard_count: usize) -> Self {
        assert!(shard_count > 0, "need at least one shard");
        for device in DeviceKind::all() {
            let shard = assignment
                .get(&device)
                .unwrap_or_else(|| panic!("device {device} is unassigned"));
            assert!(
                *shard < shard_count,
                "{device} assigned to missing shard {shard}"
            );
        }
        ShardPlan {
            assignment,
            shard_count,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The shard owning a device.
    pub fn shard_of(&self, device: DeviceKind) -> usize {
        self.assignment[&device]
    }
}

/// A running multi-middlebox deployment: one server thread per shard
/// plus the client-side router.
#[derive(Debug)]
pub struct RpcCluster {
    plan: ShardPlan,
    clients: Vec<Option<RpcClient>>,
    servers: Vec<Option<JoinHandle<LabRig>>>,
}

impl RpcCluster {
    /// Spawns `plan.shard_count()` middlebox shards, each over its own
    /// rig seeded from `seed + shard index`.
    pub fn spawn(plan: ShardPlan, seed: u64) -> Self {
        let mut clients = Vec::with_capacity(plan.shard_count());
        let mut servers = Vec::with_capacity(plan.shard_count());
        for shard in 0..plan.shard_count() {
            let (client_side, server_side) = Duplex::pair();
            servers.push(Some(RpcServer::spawn(
                LabRig::new(seed + shard as u64),
                server_side,
            )));
            clients.push(Some(RpcClient::new(client_side)));
        }
        RpcCluster {
            plan,
            clients,
            servers,
        }
    }

    /// The partition in effect.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The shard that will serve `device` (exposed so operators can
    /// reason about which interlocks are enforceable: only rules whose
    /// devices share a shard can be checked middlebox-side).
    pub fn shard_of(&self, device: DeviceKind) -> usize {
        self.plan.shard_of(device)
    }

    /// Routes one command to its owning shard and waits for the reply.
    ///
    /// # Errors
    ///
    /// - [`RadError::Rpc`] if the shard is down or times out.
    /// - Device faults come back as [`RadError::Rpc`] with the fault
    ///   text (they crossed the wire as strings).
    pub fn call(&mut self, command: &Command, timeout: Duration) -> Result<Value, RadError> {
        let shard = self.plan.shard_of(command.device());
        let client = self.clients[shard]
            .as_mut()
            .ok_or_else(|| RadError::Rpc(format!("shard {shard} is down")))?;
        client.call(command, timeout)
    }

    /// Kills one shard (failure injection). Commands for its devices
    /// fail until [`RpcCluster::restart_shard`]; other shards are
    /// unaffected.
    pub fn kill_shard(&mut self, shard: usize) {
        self.clients[shard] = None;
        if let Some(handle) = self.servers[shard].take() {
            // Dropping the client disconnected the transport; the
            // server loop exits and hands back its rig, which we drop.
            let _ = handle.join();
        }
    }

    /// Restarts a killed shard over a fresh rig (the devices
    /// power-cycled with their middlebox in this failure model).
    pub fn restart_shard(&mut self, shard: usize, seed: u64) {
        let (client_side, server_side) = Duplex::pair();
        self.servers[shard] = Some(RpcServer::spawn(LabRig::new(seed), server_side));
        self.clients[shard] = Some(RpcClient::new(client_side));
    }

    /// Shuts the cluster down, returning each live shard's rig for
    /// inspection.
    pub fn shutdown(mut self) -> Vec<Option<LabRig>> {
        self.clients.clear(); // disconnect everything first
        self.servers
            .drain(..)
            .map(|handle| handle.map(|h| h.join().expect("server thread exits cleanly")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rad_core::CommandType;

    const T: Duration = Duration::from_secs(5);

    #[test]
    fn round_robin_covers_every_device() {
        let plan = ShardPlan::round_robin(3);
        for device in DeviceKind::all() {
            assert!(plan.shard_of(device) < 3);
        }
        // Five devices over three shards: some shard has two.
        let mut counts = [0; 3];
        for device in DeviceKind::all() {
            counts[plan.shard_of(device)] += 1;
        }
        assert_eq!(counts.iter().sum::<i32>(), 5);
    }

    #[test]
    #[should_panic(expected = "unassigned")]
    fn explicit_plan_must_cover_all_devices() {
        let mut partial = BTreeMap::new();
        partial.insert(DeviceKind::C9, 0);
        let _ = ShardPlan::explicit(partial, 1);
    }

    #[test]
    fn commands_route_to_the_owning_shard() {
        let mut cluster = RpcCluster::spawn(ShardPlan::round_robin(2), 0);
        cluster
            .call(&Command::nullary(CommandType::InitC9), T)
            .unwrap();
        cluster
            .call(&Command::nullary(CommandType::InitUr3Arm), T)
            .unwrap();
        cluster
            .call(&Command::nullary(CommandType::InitIka), T)
            .unwrap();
        cluster
            .call(&Command::nullary(CommandType::IkaReadDeviceName), T)
            .unwrap();
        let rigs = cluster.shutdown();
        // C9 and IKA landed on shard 0 (round robin: C9->0, UR3e->1,
        // IKA->0, Tecan->1, Quantos->0); UR3e on shard 1.
        let rig0 = rigs[0].as_ref().unwrap();
        let rig1 = rigs[1].as_ref().unwrap();
        assert!(
            rig0.ika().motor_on() || !rig0.ika().motor_on(),
            "ika lives on shard 0"
        );
        assert!(rig1.ur3e().gripper_open());
    }

    #[test]
    fn shard_failure_is_contained_and_recoverable() {
        let mut cluster = RpcCluster::spawn(ShardPlan::round_robin(2), 10);
        cluster
            .call(&Command::nullary(CommandType::InitC9), T)
            .unwrap();
        cluster
            .call(&Command::nullary(CommandType::InitUr3Arm), T)
            .unwrap();

        let c9_shard = cluster.shard_of(DeviceKind::C9);
        cluster.kill_shard(c9_shard);
        // C9 traffic fails fast...
        let err = cluster
            .call(
                &Command::nullary(CommandType::Mvng),
                Duration::from_millis(100),
            )
            .unwrap_err();
        assert!(err.to_string().contains("down") || err.to_string().contains("disconnected"));
        // ...while the other shard keeps serving.
        cluster
            .call(&Command::nullary(CommandType::OpenGripper), T)
            .unwrap();

        cluster.restart_shard(c9_shard, 99);
        // Fresh rig: the C9 needs re-initialization, then works.
        assert!(cluster
            .call(&Command::nullary(CommandType::Mvng), T)
            .is_err());
        cluster
            .call(&Command::nullary(CommandType::InitC9), T)
            .unwrap();
        cluster
            .call(&Command::nullary(CommandType::Mvng), T)
            .unwrap();
    }

    #[test]
    fn cross_shard_interlocks_are_not_enforceable() {
        // The documented caveat: with the UR3e and the Quantos on
        // different shards, neither shard can see the door-vs-arm
        // geometry, so the run-17 crash is NOT prevented — each
        // shard's lab state only tracks its own devices.
        let mut assignment = BTreeMap::new();
        assignment.insert(DeviceKind::C9, 0);
        assignment.insert(DeviceKind::Ika, 0);
        assignment.insert(DeviceKind::Tecan, 0);
        assignment.insert(DeviceKind::Ur3e, 0);
        assignment.insert(DeviceKind::Quantos, 1);
        let plan = ShardPlan::explicit(assignment, 2);
        let mut cluster = RpcCluster::spawn(plan, 3);
        cluster
            .call(&Command::nullary(CommandType::InitUr3Arm), T)
            .unwrap();
        cluster
            .call(&Command::nullary(CommandType::InitQuantos), T)
            .unwrap();
        // Park the arm in the door sweep (shard 0's lab state).
        cluster
            .call(
                &Command::new(
                    CommandType::MoveToLocation,
                    vec![Value::Location {
                        x: 750.0,
                        y: 230.0,
                        z: 150.0,
                    }],
                ),
                T,
            )
            .unwrap();
        // Opening the door succeeds on shard 1 — it cannot see the arm.
        // On a single middlebox this exact sequence collides (see
        // rad_devices::rig tests); the lost interlock is the price of
        // sharding, exactly the open question §VII leaves.
        cluster
            .call(
                &Command::new(
                    CommandType::FrontDoorPosition,
                    vec![Value::Str("open".into())],
                ),
                T,
            )
            .unwrap();
    }
}
