//! The lab service: a real multi-tenant middlebox server over TCP and
//! Unix-domain sockets.
//!
//! Everything before this module speaks [`Transport`] over in-process
//! [`Duplex`](crate::rpc::Duplex) pairs. Here the same length-prefixed
//! [`FrameCodec`] framing crosses real sockets: [`SocketTransport`]
//! implements [`Transport`] over a `TcpStream` or `UnixStream`, and
//! [`LabService`] runs a bounded worker-pool accept loop that
//! multiplexes many concurrent client sessions onto per-tenant device
//! fleets.
//!
//! Robustness is the point, not a bolt-on:
//!
//! - **Admission control** — a full worker pool or accept backlog
//!   rejects new connections with a typed
//!   [`RadError::Overloaded`]-mapping reply instead of queueing them
//!   invisibly; a tenant with an active session rejects a second one.
//! - **Backpressure** — each tenant's sink stack runs on its own
//!   consumer thread behind a *bounded* channel. A slow sink blocks
//!   only its own tenant's session (the producer waits at the channel,
//!   the client's deadline machinery sees the latency); it never grows
//!   an unbounded buffer and never steals another tenant's throughput.
//! - **Deadline propagation** — every `Issue` carries the client's
//!   budget; a request whose budget has already lapsed (because the
//!   session was backed up behind its sink) is answered `Expired`
//!   without touching a device, which the client surfaces as
//!   [`RadError::RpcTimeout`].
//! - **Idle reaping** — a session that goes quiet past the configured
//!   idle timeout is closed and its worker slot reclaimed.
//! - **Quarantine** — a client whose byte stream loses framing
//!   (a length prefix past the cap — [`RadError::FrameTooLarge`]) is
//!   quarantined: on a real socket there is no trustworthy resync
//!   point, so the session closes rather than guess. Well-framed but
//!   undecodable payloads are skipped deterministically (the frame
//!   boundary is still sound), and the affected request is recovered
//!   by the client's retry + server dedup, exactly like the in-process
//!   path.
//! - **Graceful drain** — [`ServerHandle::drain`] stops accepting,
//!   lets in-flight sessions finish, flushes every tenant's sink stack
//!   (durable stores synced and checkpointed), and reports per-tenant
//!   accounting. Zero buffered traces are lost.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;
use rad_core::{
    Command, Label, ProcedureKind, RadError, RunId, TraceBatch, TraceGap, TraceObject, TraceSink,
    Value,
};
use rad_store::{DurableOptions, DurableStore};
use serde::{Deserialize, Serialize};

use crate::faults::FaultPlan;
use crate::middlebox::Middlebox;
use crate::rpc::{DedupCache, FrameCodec, Transport};
use crate::sinks::DurableSink;
use crate::wire;

/// How often a parked session re-checks its idle clock and the drain
/// flag. Bounds both reap latency and drain latency.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Default bound on the per-tenant idempotent-replay cache — same role
/// as [`crate::rpc::DEDUP_CACHE_SIZE`], scoped per session. Tune via
/// [`ServerConfig::dedup_capacity`].
const SESSION_DEDUP_SIZE: usize = 1024;

// ---------------------------------------------------------------------------
// Socket transports
// ---------------------------------------------------------------------------

/// One connected stream socket, TCP or Unix-domain.
#[derive(Debug)]
enum SocketStream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl SocketStream {
    fn try_clone(&self) -> io::Result<SocketStream> {
        match self {
            SocketStream::Tcp(s) => s.try_clone().map(SocketStream::Tcp),
            SocketStream::Unix(s) => s.try_clone().map(SocketStream::Unix),
        }
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.set_read_timeout(t),
            SocketStream::Unix(s) => s.set_read_timeout(t),
        }
    }

    fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.set_write_timeout(t),
            SocketStream::Unix(s) => s.set_write_timeout(t),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            SocketStream::Tcp(s) => s.read(buf),
            SocketStream::Unix(s) => s.read(buf),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.write_all(buf),
            SocketStream::Unix(s) => s.write_all(buf),
        }
    }
}

/// A [`Transport`] over a live TCP or Unix-domain socket.
///
/// The same blocking send/recv surface the in-process
/// [`Duplex`](crate::rpc::Duplex) offers, so every layer above — the
/// RPC client, the fault wrapper [`Faulty`](crate::faults::Faulty),
/// the campaign driver — runs unchanged over a real wire. Reads and
/// writes go through independent halves (`try_clone`), so one thread
/// can block in `recv` while another sends.
#[derive(Debug)]
pub struct SocketTransport {
    reader: Mutex<SocketStream>,
    writer: Mutex<SocketStream>,
}

impl SocketTransport {
    fn from_stream(stream: SocketStream) -> Result<Self, RadError> {
        let reader = stream
            .try_clone()
            .map_err(|e| RadError::Rpc(format!("socket clone failed: {e}")))?;
        Ok(SocketTransport {
            reader: Mutex::new(reader),
            writer: Mutex::new(stream),
        })
    }

    /// Wraps a connected TCP stream.
    ///
    /// # Errors
    ///
    /// [`RadError::Rpc`] if the descriptor cannot be cloned into
    /// independent read/write halves.
    pub fn tcp(stream: TcpStream) -> Result<Self, RadError> {
        let _ = stream.set_nodelay(true);
        SocketTransport::from_stream(SocketStream::Tcp(stream))
    }

    /// Wraps a connected Unix-domain stream.
    ///
    /// # Errors
    ///
    /// [`RadError::Rpc`] if the descriptor cannot be cloned.
    pub fn unix(stream: UnixStream) -> Result<Self, RadError> {
        SocketTransport::from_stream(SocketStream::Unix(stream))
    }

    /// Connects to a TCP endpoint (`"127.0.0.1:7070"`).
    ///
    /// # Errors
    ///
    /// [`RadError::RpcDisconnected`] when the connection is refused.
    pub fn connect_tcp(addr: &str) -> Result<Self, RadError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| RadError::RpcDisconnected(format!("connect {addr}: {e}")))?;
        SocketTransport::tcp(stream)
    }

    /// Connects to a Unix-domain socket path.
    ///
    /// # Errors
    ///
    /// [`RadError::RpcDisconnected`] when the connection is refused.
    pub fn connect_unix(path: &Path) -> Result<Self, RadError> {
        let stream = UnixStream::connect(path)
            .map_err(|e| RadError::RpcDisconnected(format!("connect {}: {e}", path.display())))?;
        SocketTransport::unix(stream)
    }
}

impl Transport for SocketTransport {
    fn send(&self, chunk: Bytes) -> Result<(), RadError> {
        let mut writer = self.writer.lock();
        writer
            .write_all(&chunk)
            .map_err(|e| RadError::RpcDisconnected(format!("socket write failed: {e}")))
    }

    fn recv(&self, timeout: Duration) -> Result<Bytes, RadError> {
        let mut reader = self.reader.lock();
        // A zero timeout means "block forever" to the OS; clamp to the
        // smallest representable wait instead.
        let timeout = timeout.max(Duration::from_millis(1));
        reader
            .set_read_timeout(Some(timeout))
            .map_err(|e| RadError::Rpc(format!("set_read_timeout: {e}")))?;
        let mut buf = [0u8; 64 * 1024];
        match reader.read(&mut buf) {
            Ok(0) => Err(RadError::RpcDisconnected("peer closed the socket".into())),
            Ok(n) => Ok(Bytes::copy_from_slice(&buf[..n])),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Err(RadError::RpcTimeout("receive timed out".into()))
            }
            Err(e) => Err(RadError::RpcDisconnected(format!(
                "socket read failed: {e}"
            ))),
        }
    }

    fn recv_blocking(&self) -> Option<Bytes> {
        let mut reader = self.reader.lock();
        if reader.set_read_timeout(None).is_err() {
            return None;
        }
        let mut buf = [0u8; 64 * 1024];
        match reader.read(&mut buf) {
            Ok(0) | Err(_) => None,
            Ok(n) => Some(Bytes::copy_from_slice(&buf[..n])),
        }
    }
}

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

/// One client → server message body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireRequest {
    /// Binds the session to a tenant. Must be the first request; the
    /// reply's cursor is what makes kill-and-reconnect resume exact.
    Hello {
        /// Tenant name (one rig + tracer + sink stack per tenant).
        tenant: String,
    },
    /// Executes one command on the tenant's rig.
    Issue {
        /// Client-side budget in milliseconds, measured server-side
        /// from frame decode; `0` disables the check. A lapsed budget
        /// answers `Expired` without executing.
        deadline_ms: u64,
        /// The command to execute.
        command: Command,
    },
    /// Opens a labelled procedure run. Idempotent: re-opening the run
    /// that is already active is a no-op, so a resumed campaign can
    /// replay its position safely.
    BeginRun {
        /// Run identifier.
        run: u32,
        /// Procedure being run.
        procedure: ProcedureKind,
        /// Ground-truth label.
        label: Label,
    },
    /// Closes the active run (no-op when none is open).
    EndRun,
    /// Attaches an operator note to the active run.
    Annotate {
        /// The note text.
        note: String,
    },
    /// Advances the tenant's simulated clock (think time, idle gaps).
    Advance {
        /// Microseconds of simulated time.
        micros: u64,
    },
    /// Flushes the tenant's sink stack through to durable storage.
    Sync,
    /// Ends the session cleanly after flushing.
    Bye,
}

/// One server → client reply body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireReply {
    /// Session bound. `issues_done` is the tenant's resume cursor: how
    /// many `Issue` requests have executed across all sessions.
    Welcome {
        /// Server-assigned session number.
        session: u64,
        /// Lifetime executed-issue count for the tenant.
        issues_done: u64,
    },
    /// The command executed (exactly once).
    Done {
        /// Return value on success.
        value: Option<Value>,
        /// Device fault rendered as the exception string otherwise.
        fault: Option<String>,
    },
    /// A non-issue request was applied.
    Accepted,
    /// The request's deadline lapsed before execution; nothing ran.
    /// Clients surface this as [`RadError::RpcTimeout`].
    Expired,
    /// Admission control refused the connection or request; nothing
    /// ran. Clients surface this as [`RadError::Overloaded`].
    Rejected {
        /// Which limit was hit.
        reason: String,
    },
    /// A protocol or internal failure. Clients surface this as
    /// [`RadError::Rpc`].
    Failed {
        /// What went wrong.
        message: String,
    },
    /// Clean session end acknowledgement.
    Goodbye {
        /// Lifetime executed-issue count at close.
        issues_done: u64,
    },
}

/// A client request envelope: correlation id + body. Ids double as
/// idempotency tokens — a retry reuses its id and the server replays
/// the cached reply instead of re-executing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireFrame {
    /// Client-assigned correlation / idempotency id.
    pub id: u64,
    /// The request.
    pub body: WireRequest,
}

/// A server reply envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplyFrame {
    /// Echoed correlation id (`0` for pre-session rejects).
    pub id: u64,
    /// The reply.
    pub body: WireReply,
}

/// Encodes one reply as a wire frame.
fn encode_reply(id: u64, body: WireReply) -> Bytes {
    let payload = serde_json::to_vec(&ReplyFrame { id, body }).expect("replies always serialize");
    FrameCodec::encode(&payload)
}

/// Borrowed twin of [`ReplyFrame`]: serializes identically without
/// taking the reply body by value, so the hot path encodes straight
/// from the handler's stack frame.
struct ReplyFrameRef<'a> {
    id: u64,
    body: &'a WireReply,
}

impl Serialize for ReplyFrameRef<'_> {
    fn to_content(&self) -> serde::Content {
        serde::Content::Map(vec![
            ("id".to_owned(), self.id.to_content()),
            ("body".to_owned(), self.body.to_content()),
        ])
    }
}

/// Appends one framed reply to `batch` in the requested codec, without
/// intermediate allocation. Returns the offset where the frame starts,
/// so callers can snapshot the framed bytes for the dedup cache.
fn append_reply(batch: &mut Vec<u8>, id: u64, body: &WireReply, binary: bool) -> usize {
    let start = FrameCodec::begin_frame(batch);
    if binary {
        wire::encode_reply_frame(batch, id, body);
    } else {
        let payload =
            serde_json::to_vec(&ReplyFrameRef { id, body }).expect("replies always serialize");
        batch.extend_from_slice(&payload);
    }
    FrameCodec::finish_frame(batch, start);
    start
}

// ---------------------------------------------------------------------------
// Configuration and stats
// ---------------------------------------------------------------------------

/// Tuning knobs of a [`LabService`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker-pool size: how many sessions execute concurrently.
    pub max_sessions: usize,
    /// Admitted-but-unclaimed connection queue bound. A connection
    /// arriving with the pool busy and this queue full is rejected.
    pub backlog: usize,
    /// Per-tenant sink channel capacity, in batches. The bound that
    /// turns a slow sink into backpressure instead of memory growth.
    pub sink_queue_batches: usize,
    /// Rows per batch handed to the sink channel.
    pub batch_rows: usize,
    /// Frame-size cap applied to client bytes (servers cap untrusted
    /// frames tighter than [`crate::rpc::MAX_FRAME_BYTES`]).
    pub max_client_frame: usize,
    /// A session quiet for this long is reaped.
    pub idle_timeout: Duration,
    /// Base seed; tenant rigs derive their seeds from it and the
    /// tenant name, so every tenant's device noise is reproducible.
    pub seed: u64,
    /// When set, each tenant gets a durable store (WAL + checkpoints)
    /// under `<data_dir>/<tenant>`.
    pub data_dir: Option<PathBuf>,
    /// When set, every tenant's middlebox runs under this seeded
    /// [`FaultPlan`] — the conformance matrix reruns its profiles
    /// behind a real wire with the exact same fault schedule.
    pub fault_plan: Option<FaultPlan>,
    /// Bound on the per-tenant idempotent-replay cache (LRU). Retries
    /// of the most recent `dedup_capacity` request ids replay their
    /// cached reply; older entries are evicted (and counted) so a
    /// week-long campaign cannot grow memory without bound.
    pub dedup_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 4,
            backlog: 4,
            sink_queue_batches: 4,
            batch_rows: 256,
            max_client_frame: 256 * 1024,
            idle_timeout: Duration::from_secs(30),
            seed: 0,
            data_dir: None,
            fault_plan: None,
            dedup_capacity: SESSION_DEDUP_SIZE,
        }
    }
}

impl ServerConfig {
    /// The documented bound on any tenant's queued-row gauge: the
    /// channel capacity plus one batch blocked at the channel and one
    /// batch in the consumer's hands.
    pub fn queue_bound_rows(&self) -> u64 {
        (self.sink_queue_batches as u64 + 2) * self.batch_rows as u64
    }

    /// The seed the named tenant's rig runs under — exposed so a
    /// conformance harness can build the byte-identical in-process
    /// reference ([`Middlebox::new`] with this seed).
    pub fn tenant_seed(&self, tenant: &str) -> u64 {
        tenant_seed(self.seed, tenant)
    }
}

macro_rules! server_stat {
    ($($note:ident / $get:ident => $field:ident),* $(,)?) => {$(
        #[doc = concat!("Increments the `", stringify!($field), "` counter.")]
        pub fn $note(&self) {
            self.inner.$field.fetch_add(1, Ordering::Relaxed);
        }

        #[doc = concat!("Current `", stringify!($field), "` count.")]
        pub fn $get(&self) -> u64 {
            self.inner.$field.load(Ordering::Relaxed)
        }
    )*};
}

/// Shared observability counters of a running [`LabService`].
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    inner: Arc<ServerStatsInner>,
}

#[derive(Debug, Default)]
struct ServerStatsInner {
    admitted: AtomicU64,
    rejected: AtomicU64,
    quarantined: AtomicU64,
    reaped: AtomicU64,
    issues: AtomicU64,
    expired: AtomicU64,
    dedup_hits: AtomicU64,
    dedup_evictions: AtomicU64,
}

impl ServerStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        ServerStats::default()
    }

    server_stat! {
        note_admitted / admitted => admitted,
        note_rejected / rejected => rejected,
        note_quarantined / quarantined => quarantined,
        note_reaped / reaped => reaped,
        note_issue / issues => issues,
        note_expired / expired => expired,
        note_dedup_hit / dedup_hits => dedup_hits,
        note_dedup_eviction / dedup_evictions => dedup_evictions,
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            admitted: self.admitted(),
            rejected: self.rejected(),
            quarantined: self.quarantined(),
            reaped: self.reaped(),
            issues: self.issues(),
            expired: self.expired(),
            dedup_hits: self.dedup_hits(),
            dedup_evictions: self.dedup_evictions(),
        }
    }
}

/// Plain-value snapshot of [`ServerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field names are the documentation
pub struct ServerStatsSnapshot {
    pub admitted: u64,
    pub rejected: u64,
    pub quarantined: u64,
    pub reaped: u64,
    pub issues: u64,
    pub expired: u64,
    pub dedup_hits: u64,
    pub dedup_evictions: u64,
}

impl std::fmt::Display for ServerStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "admitted={} rejected={} quarantined={} reaped={} issues={} expired={} \
             dedup_hits={} dedup_evictions={}",
            self.admitted,
            self.rejected,
            self.quarantined,
            self.reaped,
            self.issues,
            self.expired,
            self.dedup_hits,
            self.dedup_evictions,
        )
    }
}

// ---------------------------------------------------------------------------
// Tenancy
// ---------------------------------------------------------------------------

/// A tenant's sink stack as built by the factory: the composable sink
/// plus (optionally) the durable store behind it, kept separately so
/// drain can sync and checkpoint it.
pub struct TenantSinkStack {
    /// The sink stack receiving every drained batch and gap.
    pub sink: Box<dyn TraceSink + Send>,
    /// The durable store inside the stack, if any.
    pub durable: Option<Arc<DurableStore>>,
}

/// Builds one tenant's sink stack on first Hello.
pub type SinkFactory = Arc<dyn Fn(&str) -> Result<TenantSinkStack, RadError> + Send + Sync>;

/// A sink that collects every row and gap into shared memory — the
/// conformance suites' observation point (clone the sink, keep one
/// handle, give the other to the server).
#[derive(Debug, Clone, Default)]
pub struct CollectingSink {
    rows: Arc<Mutex<Vec<TraceObject>>>,
    gaps: Arc<Mutex<Vec<TraceGap>>>,
}

impl CollectingSink {
    /// An empty collector.
    pub fn new() -> Self {
        CollectingSink::default()
    }

    /// Every row accepted so far, in arrival order.
    pub fn traces(&self) -> Vec<TraceObject> {
        self.rows.lock().clone()
    }

    /// Every gap accepted so far, in arrival order.
    pub fn gaps(&self) -> Vec<TraceGap> {
        self.gaps.lock().clone()
    }

    /// Rows accepted so far.
    pub fn len(&self) -> usize {
        self.rows.lock().len()
    }

    /// Whether nothing has been accepted.
    pub fn is_empty(&self) -> bool {
        self.rows.lock().is_empty()
    }
}

impl TraceSink for CollectingSink {
    fn accept(&mut self, batch: &TraceBatch) -> Result<(), RadError> {
        self.rows.lock().extend(batch.to_traces());
        Ok(())
    }

    fn accept_gap(&mut self, gap: &TraceGap) -> Result<(), RadError> {
        self.gaps.lock().push(gap.clone());
        Ok(())
    }
}

/// Work items crossing a tenant's bounded sink channel.
enum SinkJob {
    Batch(Box<TraceBatch>),
    Gap(TraceGap),
    Flush(std::sync::mpsc::Sender<Result<(), RadError>>),
}

/// Mutable per-tenant state, locked by the active session.
struct TenantState {
    middlebox: Middlebox,
    issues_done: u64,
    open_run: Option<u32>,
    gaps_forwarded: usize,
    dedup: DedupCache,
}

/// One tenant: a seeded rig + tracer, a bounded sink channel, and the
/// consumer thread feeding its sink stack.
struct Tenant {
    name: String,
    state: Mutex<TenantState>,
    busy: AtomicBool,
    sink_tx: Mutex<Option<SyncSender<SinkJob>>>,
    consumer: Mutex<Option<JoinHandle<Box<dyn TraceSink + Send>>>>,
    durable: Option<Arc<DurableStore>>,
    queued_rows: AtomicU64,
    peak_queued_rows: AtomicU64,
    rows_flushed: AtomicU64,
    gaps_flushed: AtomicU64,
}

impl Tenant {
    fn open(
        name: &str,
        config: &ServerConfig,
        factory: &SinkFactory,
    ) -> Result<Arc<Tenant>, RadError> {
        let stack = factory(name)?;
        let (tx, rx) = sync_channel::<SinkJob>(config.sink_queue_batches.max(1));
        let mut middlebox = Middlebox::new(tenant_seed(config.seed, name));
        if let Some(plan) = &config.fault_plan {
            middlebox = middlebox.with_fault_plan(plan.clone());
        }
        let tenant = Arc::new(Tenant {
            name: name.to_string(),
            state: Mutex::new(TenantState {
                middlebox,
                issues_done: 0,
                open_run: None,
                gaps_forwarded: 0,
                dedup: DedupCache::new(config.dedup_capacity.max(1)),
            }),
            busy: AtomicBool::new(false),
            sink_tx: Mutex::new(Some(tx)),
            consumer: Mutex::new(None),
            durable: stack.durable,
            queued_rows: AtomicU64::new(0),
            peak_queued_rows: AtomicU64::new(0),
            rows_flushed: AtomicU64::new(0),
            gaps_flushed: AtomicU64::new(0),
        });
        let consumer_tenant = Arc::clone(&tenant);
        let handle = std::thread::spawn(move || consumer_tenant.consume(rx, stack.sink));
        *tenant.consumer.lock() = Some(handle);
        Ok(tenant)
    }

    /// The consumer loop: applies every job to the sink stack,
    /// decrementing the queued-row gauge as work completes. Ends when
    /// every sender is gone, flushing the sink a final time.
    fn consume(
        &self,
        rx: Receiver<SinkJob>,
        mut sink: Box<dyn TraceSink + Send>,
    ) -> Box<dyn TraceSink + Send> {
        while let Ok(job) = rx.recv() {
            match job {
                SinkJob::Batch(batch) => {
                    let rows = batch.len() as u64;
                    let _ = sink.accept(&batch);
                    self.rows_flushed.fetch_add(rows, Ordering::Relaxed);
                    self.queued_rows.fetch_sub(rows, Ordering::Relaxed);
                }
                SinkJob::Gap(gap) => {
                    let _ = sink.accept_gap(&gap);
                    self.gaps_flushed.fetch_add(1, Ordering::Relaxed);
                    self.queued_rows.fetch_sub(1, Ordering::Relaxed);
                }
                SinkJob::Flush(ack) => {
                    let _ = ack.send(sink.flush());
                }
            }
        }
        let _ = sink.flush();
        sink
    }

    /// Enqueues one job, counting `rows` toward the backpressure
    /// gauge *before* the potentially blocking send so the gauge never
    /// underflows and the peak covers the blocked batch too.
    fn enqueue(&self, rows: u64, job: SinkJob) -> Result<(), RadError> {
        let tx = {
            let guard = self.sink_tx.lock();
            match &*guard {
                Some(tx) => tx.clone(),
                None => return Err(RadError::Store("tenant sink already drained".into())),
            }
        };
        let queued = self.queued_rows.fetch_add(rows, Ordering::Relaxed) + rows;
        self.peak_queued_rows.fetch_max(queued, Ordering::Relaxed);
        tx.send(job).map_err(|_| {
            self.queued_rows.fetch_sub(rows, Ordering::Relaxed);
            RadError::Store("tenant sink consumer is gone".into())
        })
    }

    /// Moves freshly buffered traces and gaps out of the middlebox into
    /// the sink channel. `force` flushes partial batches (session end,
    /// drain, explicit sync); otherwise only full batches move.
    fn flush_state(
        &self,
        state: &mut TenantState,
        batch_rows: usize,
        force: bool,
    ) -> Result<(), RadError> {
        while state.middlebox.gaps().len() > state.gaps_forwarded {
            let gap = state.middlebox.gaps()[state.gaps_forwarded].clone();
            state.gaps_forwarded += 1;
            self.enqueue(1, SinkJob::Gap(gap))?;
        }
        if state.middlebox.trace_count() >= batch_rows.max(1)
            || (force && state.middlebox.trace_count() > 0)
        {
            let batch = state.middlebox.drain_batch();
            let rows = batch.len() as u64;
            self.enqueue(rows, SinkJob::Batch(Box::new(batch)))?;
        }
        Ok(())
    }

    /// Synchronous flush through the sink stack (durable fsync).
    fn sync_sink(&self) -> Result<(), RadError> {
        let (ack_tx, ack_rx) = std::sync::mpsc::channel();
        self.enqueue(0, SinkJob::Flush(ack_tx))?;
        ack_rx
            .recv()
            .map_err(|_| RadError::Store("tenant sink consumer is gone".into()))?
    }
}

/// Derives a tenant's rig seed from the server seed and tenant name
/// (FNV-1a over the name, mixed with the base seed).
fn tenant_seed(base: u64, name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    base ^ h
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// Builder for the socket server.
pub struct LabService {
    config: ServerConfig,
    sink_factory: SinkFactory,
}

impl LabService {
    /// A service with `config` and the default sink stack: a durable
    /// store per tenant when `data_dir` is set, nothing otherwise.
    pub fn new(config: ServerConfig) -> Self {
        let data_dir = config.data_dir.clone();
        let factory: SinkFactory = Arc::new(move |tenant: &str| {
            let mut stack = TenantSinkStack {
                sink: Box::new(rad_core::CountingSink::default()),
                durable: None,
            };
            if let Some(dir) = &data_dir {
                let (store, _) = DurableStore::open(&dir.join(tenant), DurableOptions::default())?;
                let store = Arc::new(store);
                stack.sink = Box::new(DurableSink::new(Arc::clone(&store)));
                stack.durable = Some(store);
            }
            Ok(stack)
        });
        LabService {
            config,
            sink_factory: factory,
        }
    }

    /// Replaces the per-tenant sink factory (tests install collecting
    /// or deliberately slow sinks; deployments add streaming-detection
    /// tees).
    #[must_use]
    pub fn with_sink_factory(mut self, factory: SinkFactory) -> Self {
        self.sink_factory = factory;
        self
    }

    /// Binds a TCP listener and starts serving. `"127.0.0.1:0"` picks
    /// a free port — read it back from
    /// [`ServerHandle::local_addr`].
    ///
    /// # Errors
    ///
    /// [`RadError::Rpc`] when the bind fails.
    pub fn serve_tcp(self, addr: &str) -> Result<ServerHandle, RadError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| RadError::Rpc(format!("bind {addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| RadError::Rpc(format!("local_addr: {e}")))?;
        self.serve(Listener::Tcp(listener), Some(local), None)
    }

    /// Binds a Unix-domain listener at `path` (unlinking a stale
    /// socket file first) and starts serving.
    ///
    /// # Errors
    ///
    /// [`RadError::Rpc`] when the bind fails.
    pub fn serve_unix(self, path: &Path) -> Result<ServerHandle, RadError> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)
            .map_err(|e| RadError::Rpc(format!("bind {}: {e}", path.display())))?;
        self.serve(Listener::Unix(listener), None, Some(path.to_path_buf()))
    }

    fn serve(
        self,
        listener: Listener,
        local_addr: Option<SocketAddr>,
        unix_path: Option<PathBuf>,
    ) -> Result<ServerHandle, RadError> {
        let LabService {
            config,
            sink_factory,
        } = self;
        listener
            .set_nonblocking(true)
            .map_err(|e| RadError::Rpc(format!("set_nonblocking: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = ServerStats::new();
        let tenants: Arc<Mutex<HashMap<String, Arc<Tenant>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let (conn_tx, conn_rx) = sync_channel::<SocketStream>(config.backlog.max(1));
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let session_ids = Arc::new(AtomicU64::new(1));

        let mut workers = Vec::with_capacity(config.max_sessions.max(1));
        for _ in 0..config.max_sessions.max(1) {
            let conn_rx = Arc::clone(&conn_rx);
            let ctx = SessionContext {
                config: config.clone(),
                sink_factory: Arc::clone(&sink_factory),
                tenants: Arc::clone(&tenants),
                stats: stats.clone(),
                shutdown: Arc::clone(&shutdown),
                session_ids: Arc::clone(&session_ids),
            };
            workers.push(std::thread::spawn(move || loop {
                // Holding the lock only for the recv keeps the pool
                // fair; a worker inside a session does not block peers
                // from claiming connections.
                let conn = {
                    let rx = conn_rx.lock();
                    match rx.recv_timeout(POLL_INTERVAL) {
                        Ok(conn) => Some(conn),
                        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => None,
                        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
                    }
                };
                match conn {
                    Some(conn) => ctx.run_session(conn),
                    None if ctx.shutdown.load(Ordering::Relaxed) => break,
                    None => {}
                }
            }));
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_stats = stats.clone();
        let accept = std::thread::spawn(move || {
            while !accept_shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok(stream) => match conn_tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(stream)) => {
                            // Admission control: typed reject, not an
                            // invisible queue.
                            accept_stats.note_rejected();
                            reject_raw(stream, "worker pool and backlog are full");
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    },
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(2)),
                }
            }
            // conn_tx drops here: workers drain the queue and exit.
        });

        Ok(ServerHandle {
            shutdown,
            accept: Some(accept),
            workers,
            tenants,
            stats,
            config,
            local_addr,
            unix_path,
        })
    }
}

/// Best-effort pre-session reject: write one `Rejected` frame and drop
/// the connection.
fn reject_raw(mut stream: SocketStream, reason: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let frame = encode_reply(
        0,
        WireReply::Rejected {
            reason: reason.to_string(),
        },
    );
    let _ = stream.write_all(&frame);
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(on),
            Listener::Unix(l) => l.set_nonblocking(on),
        }
    }

    fn accept(&self) -> io::Result<SocketStream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| SocketStream::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| SocketStream::Unix(s)),
        }
    }
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

/// Everything a worker needs to run one session.
struct SessionContext {
    config: ServerConfig,
    sink_factory: SinkFactory,
    tenants: Arc<Mutex<HashMap<String, Arc<Tenant>>>>,
    stats: ServerStats,
    shutdown: Arc<AtomicBool>,
    session_ids: Arc<AtomicU64>,
}

/// Why a session loop ended (drives cleanup accounting).
enum SessionEnd {
    Disconnected,
    Reaped,
    Quarantined,
    Bye,
    Draining,
}

impl SessionContext {
    fn run_session(&self, stream: SocketStream) {
        let transport = match SocketTransport::from_stream(stream) {
            Ok(t) => t,
            Err(_) => return,
        };
        let mut codec = FrameCodec::with_max_frame(self.config.max_client_frame);
        let mut tenant: Option<Arc<Tenant>> = None;
        let end = self.session_loop(&transport, &mut codec, &mut tenant);
        match end {
            SessionEnd::Reaped => self.stats.note_reaped(),
            SessionEnd::Quarantined => self.stats.note_quarantined(),
            SessionEnd::Disconnected | SessionEnd::Bye | SessionEnd::Draining => {}
        }
        // Whatever ended the session, the tenant's buffered work is
        // flushed into its sink channel and the tenant freed for the
        // next session — a mid-campaign kill loses nothing.
        if let Some(tenant) = tenant {
            {
                let mut state = tenant.state.lock();
                let _ = tenant.flush_state(&mut state, self.config.batch_rows, true);
            }
            tenant.busy.store(false, Ordering::Release);
        }
    }

    fn session_loop(
        &self,
        transport: &SocketTransport,
        codec: &mut FrameCodec,
        tenant: &mut Option<Arc<Tenant>>,
    ) -> SessionEnd {
        let mut last_activity = Instant::now();
        // Replies to every frame of one received chunk coalesce into a
        // single send: a pipelined client's whole window is answered
        // with one syscall instead of one per request.
        let mut batch: Vec<u8> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return SessionEnd::Draining;
            }
            match transport.recv(POLL_INTERVAL) {
                Ok(chunk) => {
                    last_activity = Instant::now();
                    codec.push(&chunk);
                    batch.clear();
                    let mut close: Option<SessionEnd> = None;
                    loop {
                        match codec.next_frame() {
                            Ok(Some(frame)) => {
                                let received = Instant::now();
                                match self.handle_frame(&frame, received, &mut batch, tenant) {
                                    FrameOutcome::Continue => {}
                                    FrameOutcome::Close(end) => {
                                        close = Some(end);
                                        break;
                                    }
                                }
                            }
                            Ok(None) => break,
                            Err(_) => {
                                // Framing lost for good (length prefix
                                // past the cap): no trustworthy resync
                                // point exists on a byte stream, so
                                // quarantine the session.
                                append_reply(
                                    &mut batch,
                                    0,
                                    &WireReply::Failed {
                                        message: "framing lost; session quarantined".into(),
                                    },
                                    false,
                                );
                                close = Some(SessionEnd::Quarantined);
                                break;
                            }
                        }
                    }
                    if !batch.is_empty() {
                        let _ = transport.send(Bytes::copy_from_slice(&batch));
                    }
                    if let Some(end) = close {
                        return end;
                    }
                }
                Err(RadError::RpcTimeout(_)) => {
                    if last_activity.elapsed() >= self.config.idle_timeout {
                        return SessionEnd::Reaped;
                    }
                }
                Err(_) => return SessionEnd::Disconnected,
            }
        }
    }

    fn handle_frame(
        &self,
        frame: &Bytes,
        received: Instant,
        batch: &mut Vec<u8>,
        tenant: &mut Option<Arc<Tenant>>,
    ) -> FrameOutcome {
        // The first payload byte names the codec, so binary and JSON
        // clients coexist per frame; every reply echoes the codec its
        // request arrived in.
        let binary = wire::is_binary(frame);
        let Ok(request) = wire::decode_wire_frame(frame) else {
            // A well-framed but undecodable payload: the frame
            // boundary is still sound, so skip exactly this frame —
            // deterministically, independent of how the bytes were
            // chunked in flight. The affected caller times out and
            // retries with the same id.
            return FrameOutcome::Continue;
        };
        let id = request.id;
        match request.body {
            WireRequest::Hello { tenant: name } => {
                self.handle_hello(id, &name, binary, batch, tenant)
            }
            body => {
                let Some(tenant) = tenant.as_ref() else {
                    append_reply(
                        batch,
                        id,
                        &WireReply::Failed {
                            message: "request before Hello".into(),
                        },
                        binary,
                    );
                    return FrameOutcome::Close(SessionEnd::Quarantined);
                };
                self.handle_bound(id, body, received, binary, batch, tenant)
            }
        }
    }

    fn handle_hello(
        &self,
        id: u64,
        name: &str,
        binary: bool,
        batch: &mut Vec<u8>,
        tenant: &mut Option<Arc<Tenant>>,
    ) -> FrameOutcome {
        let existing = {
            let tenants = self.tenants.lock();
            tenants.get(name).cloned()
        };
        let bound = match existing {
            Some(t) => t,
            None => {
                let opened = Tenant::open(name, &self.config, &self.sink_factory);
                match opened {
                    Ok(t) => {
                        let mut tenants = self.tenants.lock();
                        // Another session may have raced the open.
                        tenants.entry(name.to_string()).or_insert(t).clone()
                    }
                    Err(e) => {
                        append_reply(
                            batch,
                            id,
                            &WireReply::Failed {
                                message: format!("tenant open failed: {e}"),
                            },
                            binary,
                        );
                        return FrameOutcome::Close(SessionEnd::Disconnected);
                    }
                }
            }
        };
        if bound
            .busy
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            self.stats.note_rejected();
            append_reply(
                batch,
                id,
                &WireReply::Rejected {
                    reason: format!("tenant `{name}` already has an active session"),
                },
                binary,
            );
            return FrameOutcome::Close(SessionEnd::Disconnected);
        }
        let session = self.session_ids.fetch_add(1, Ordering::Relaxed);
        self.stats.note_admitted();
        let issues_done = {
            let mut state = bound.state.lock();
            // Ids are per-session; a stale cache would replay the
            // previous session's replies for fresh requests.
            state.dedup.clear();
            state.issues_done
        };
        *tenant = Some(bound);
        append_reply(
            batch,
            id,
            &WireReply::Welcome {
                session,
                issues_done,
            },
            binary,
        );
        FrameOutcome::Continue
    }

    fn handle_bound(
        &self,
        id: u64,
        body: WireRequest,
        received: Instant,
        binary: bool,
        batch: &mut Vec<u8>,
        tenant: &Arc<Tenant>,
    ) -> FrameOutcome {
        let mut state = tenant.state.lock();
        if let Some(cached) = state.dedup.get(id) {
            self.stats.note_dedup_hit();
            // Cached replies are shared `Bytes`, already framed in the
            // codec of the original request.
            batch.extend_from_slice(&cached);
            return FrameOutcome::Continue;
        }
        let (reply, outcome) = match body {
            WireRequest::Issue {
                deadline_ms,
                command,
            } => {
                // Move due batches to the sink first: this is where a
                // slow sink's backpressure surfaces as session latency
                // instead of memory growth.
                if tenant
                    .flush_state(&mut state, self.config.batch_rows, false)
                    .is_err()
                {
                    (
                        WireReply::Failed {
                            message: "tenant sink failed".into(),
                        },
                        FrameOutcome::Continue,
                    )
                } else if deadline_ms > 0
                    && received.elapsed() >= Duration::from_millis(deadline_ms)
                {
                    // The client's budget lapsed while this session was
                    // backed up; nothing executed, so the retry (same
                    // id, fresh budget) is safe.
                    self.stats.note_expired();
                    (WireReply::Expired, FrameOutcome::Continue)
                } else {
                    self.stats.note_issue();
                    state.issues_done += 1;
                    let reply = match state.middlebox.issue(&command) {
                        Ok(outcome) => WireReply::Done {
                            value: Some(outcome.value),
                            fault: None,
                        },
                        Err(fault) => WireReply::Done {
                            value: None,
                            fault: Some(fault.to_string()),
                        },
                    };
                    (reply, FrameOutcome::Continue)
                }
            }
            WireRequest::BeginRun {
                run,
                procedure,
                label,
            } => {
                if state.open_run != Some(run) {
                    if state.open_run.is_some() {
                        state.middlebox.end_run();
                    }
                    state.middlebox.begin_run(RunId(run), procedure, label);
                    state.open_run = Some(run);
                }
                (WireReply::Accepted, FrameOutcome::Continue)
            }
            WireRequest::EndRun => {
                if state.open_run.take().is_some() {
                    state.middlebox.end_run();
                }
                (WireReply::Accepted, FrameOutcome::Continue)
            }
            WireRequest::Annotate { note } => {
                state.middlebox.annotate_run(&note);
                (WireReply::Accepted, FrameOutcome::Continue)
            }
            WireRequest::Advance { micros } => {
                state
                    .middlebox
                    .advance(rad_core::SimDuration::from_micros(micros));
                (WireReply::Accepted, FrameOutcome::Continue)
            }
            WireRequest::Sync => {
                let flushed = tenant
                    .flush_state(&mut state, self.config.batch_rows, true)
                    .and_then(|()| tenant.sync_sink());
                let reply = match flushed {
                    Ok(()) => WireReply::Accepted,
                    Err(e) => WireReply::Failed {
                        message: format!("sync failed: {e}"),
                    },
                };
                (reply, FrameOutcome::Continue)
            }
            WireRequest::Bye => {
                let _ = tenant.flush_state(&mut state, self.config.batch_rows, true);
                (
                    WireReply::Goodbye {
                        issues_done: state.issues_done,
                    },
                    FrameOutcome::Close(SessionEnd::Bye),
                )
            }
            WireRequest::Hello { .. } => unreachable!("Hello handled by caller"),
        };
        // Expired replies are not cached: the retry re-evaluates with
        // a fresh budget instead of being stuck with the stale verdict.
        let cacheable = !matches!(reply, WireReply::Expired);
        let start = append_reply(batch, id, &reply, binary);
        if cacheable {
            let framed = Bytes::copy_from_slice(&batch[start..]);
            for _ in 0..state.dedup.insert(id, framed) {
                self.stats.note_dedup_eviction();
            }
        }
        outcome
    }
}

enum FrameOutcome {
    Continue,
    Close(SessionEnd),
}

// ---------------------------------------------------------------------------
// The handle and graceful drain
// ---------------------------------------------------------------------------

/// A running [`LabService`]: join handles, tenancy registry, stats.
///
/// Dropping the handle signals shutdown but does not wait; call
/// [`ServerHandle::drain`] for the graceful, zero-loss path.
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    tenants: Arc<Mutex<HashMap<String, Arc<Tenant>>>>,
    stats: ServerStats,
    config: ServerConfig,
    local_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl ServerHandle {
    /// The bound TCP address (None for Unix-domain servers).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// The live server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The configuration the server runs under.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Graceful drain: stop accepting, let in-flight sessions finish,
    /// flush every tenant's sink stack (durable stores synced and
    /// checkpointed), and report per-tenant accounting. No buffered
    /// trace or gap is lost.
    ///
    /// # Errors
    ///
    /// [`RadError::Store`] when a tenant's final durable flush fails;
    /// remaining tenants are still drained first.
    pub fn drain(mut self) -> Result<DrainReport, RadError> {
        let started = Instant::now();
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let mut report = DrainReport {
            tenants: Vec::new(),
            flush_time: Duration::ZERO,
            stats: self.stats.snapshot(),
        };
        let mut first_err = None;
        let tenants: Vec<Arc<Tenant>> = {
            let mut registry = self.tenants.lock();
            let mut all: Vec<Arc<Tenant>> = registry.values().cloned().collect();
            all.sort_by(|a, b| a.name.cmp(&b.name));
            registry.clear();
            all
        };
        for tenant in tenants {
            // Push any remaining buffered work into the channel, then
            // close it and wait for the consumer to apply everything.
            {
                let mut state = tenant.state.lock();
                if let Err(e) = tenant.flush_state(&mut state, self.config.batch_rows, true) {
                    first_err.get_or_insert(e);
                }
            }
            *tenant.sink_tx.lock() = None;
            let consumer = tenant.consumer.lock().take();
            if let Some(handle) = consumer {
                if let Ok(mut sink) = handle.join() {
                    if let Err(e) = sink.finish() {
                        first_err.get_or_insert(e);
                    }
                }
            }
            if let Some(durable) = &tenant.durable {
                if let Err(e) = durable.sync().and_then(|()| durable.checkpoint()) {
                    first_err.get_or_insert(e);
                }
            }
            let state = tenant.state.lock();
            report.tenants.push(TenantDrain {
                tenant: tenant.name.clone(),
                issues: state.issues_done,
                rows_flushed: tenant.rows_flushed.load(Ordering::Relaxed),
                gaps_flushed: tenant.gaps_flushed.load(Ordering::Relaxed),
                peak_queued_rows: tenant.peak_queued_rows.load(Ordering::Relaxed),
            });
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        report.flush_time = started.elapsed();
        report.stats = self.stats.snapshot();
        match first_err {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

/// Per-tenant accounting from a graceful drain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantDrain {
    /// Tenant name.
    pub tenant: String,
    /// Lifetime executed issues.
    pub issues: u64,
    /// Trace rows that reached the sink stack.
    pub rows_flushed: u64,
    /// Gaps that reached the sink stack.
    pub gaps_flushed: u64,
    /// High-water mark of the tenant's queued-row gauge — bounded by
    /// [`ServerConfig::queue_bound_rows`] no matter how slow the sink.
    pub peak_queued_rows: u64,
}

/// What a graceful drain observed.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Per-tenant accounting, sorted by tenant name.
    pub tenants: Vec<TenantDrain>,
    /// Wall-clock time the full drain (join + flush + checkpoint)
    /// took.
    pub flush_time: Duration,
    /// Final server counters.
    pub stats: ServerStatsSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rad_core::CommandType;

    fn test_config() -> ServerConfig {
        ServerConfig {
            max_sessions: 2,
            backlog: 1,
            sink_queue_batches: 2,
            batch_rows: 8,
            idle_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        }
    }

    fn collecting_factory(sink: CollectingSink) -> SinkFactory {
        Arc::new(move |_tenant: &str| {
            Ok(TenantSinkStack {
                sink: Box::new(sink.clone()),
                durable: None,
            })
        })
    }

    /// Minimal hand-rolled client for the unit tests (the full driver
    /// lives in rad-workloads).
    struct TestClient {
        transport: SocketTransport,
        codec: FrameCodec,
        next_id: u64,
    }

    impl TestClient {
        fn connect_tcp(addr: SocketAddr) -> Self {
            TestClient {
                transport: SocketTransport::connect_tcp(&addr.to_string()).unwrap(),
                codec: FrameCodec::new(),
                next_id: 0,
            }
        }

        fn connect_unix(path: &Path) -> Self {
            TestClient {
                transport: SocketTransport::connect_unix(path).unwrap(),
                codec: FrameCodec::new(),
                next_id: 0,
            }
        }

        fn request(&mut self, body: WireRequest) -> WireReply {
            let id = self.next_id;
            self.next_id += 1;
            let payload = serde_json::to_vec(&WireFrame { id, body }).unwrap();
            self.transport.send(FrameCodec::encode(&payload)).unwrap();
            self.await_reply(id)
        }

        fn await_reply(&mut self, id: u64) -> WireReply {
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                if let Ok(Some(frame)) = self.codec.next_frame() {
                    let reply: ReplyFrame = serde_json::from_slice(&frame).unwrap();
                    if reply.id == id {
                        return reply.body;
                    }
                    continue;
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                assert!(!remaining.is_zero(), "no reply to request {id}");
                if let Ok(chunk) = self.transport.recv(remaining) {
                    self.codec.push(&chunk);
                }
            }
        }

        fn hello(&mut self, tenant: &str) -> WireReply {
            self.request(WireRequest::Hello {
                tenant: tenant.into(),
            })
        }

        fn issue(&mut self, ct: CommandType) -> WireReply {
            self.request(WireRequest::Issue {
                deadline_ms: 0,
                command: Command::nullary(ct),
            })
        }
    }

    #[test]
    fn tcp_session_executes_commands_on_the_tenant_rig() {
        let sink = CollectingSink::new();
        let server = LabService::new(test_config())
            .with_sink_factory(collecting_factory(sink.clone()))
            .serve_tcp("127.0.0.1:0")
            .unwrap();
        let addr = server.local_addr().unwrap();
        let mut client = TestClient::connect_tcp(addr);
        assert!(matches!(
            client.hello("alice"),
            WireReply::Welcome { issues_done: 0, .. }
        ));
        assert!(matches!(
            client.issue(CommandType::InitC9),
            WireReply::Done {
                value: Some(Value::Unit),
                fault: None
            }
        ));
        assert!(matches!(
            client.issue(CommandType::Home),
            WireReply::Done { fault: None, .. }
        ));
        // Device faults cross the wire as exception strings.
        let reply = client.request(WireRequest::Issue {
            deadline_ms: 0,
            command: Command::new(
                CommandType::Arm,
                vec![Value::Location {
                    x: 650.0,
                    y: 280.0,
                    z: 100.0,
                }],
            ),
        });
        match reply {
            WireReply::Done {
                value: None,
                fault: Some(msg),
            } => assert!(
                msg.contains("collision") || msg.contains("invalid"),
                "{msg}"
            ),
            other => panic!("expected a faulted Done, got {other:?}"),
        }
        assert!(matches!(
            client.request(WireRequest::Bye),
            WireReply::Goodbye { issues_done: 3 }
        ));
        let report = server.drain().unwrap();
        assert_eq!(report.tenants.len(), 1);
        assert_eq!(report.tenants[0].issues, 3);
        assert_eq!(report.tenants[0].rows_flushed, 3);
        assert_eq!(sink.len(), 3, "every trace reached the sink stack");
    }

    #[test]
    fn unix_session_round_trips() {
        let path = std::env::temp_dir().join(format!("radd-test-{}.sock", std::process::id()));
        let server = LabService::new(test_config()).serve_unix(&path).unwrap();
        let mut client = TestClient::connect_unix(&path);
        assert!(matches!(client.hello("bob"), WireReply::Welcome { .. }));
        assert!(matches!(
            client.issue(CommandType::InitIka),
            WireReply::Done { fault: None, .. }
        ));
        drop(client);
        server.drain().unwrap();
        assert!(!path.exists(), "drain removes the socket file");
    }

    #[test]
    fn second_session_on_a_busy_tenant_is_rejected_typed() {
        let server = LabService::new(test_config())
            .serve_tcp("127.0.0.1:0")
            .unwrap();
        let addr = server.local_addr().unwrap();
        let mut first = TestClient::connect_tcp(addr);
        assert!(matches!(first.hello("alice"), WireReply::Welcome { .. }));
        let mut second = TestClient::connect_tcp(addr);
        match second.hello("alice") {
            WireReply::Rejected { reason } => assert!(reason.contains("active session")),
            other => panic!("expected Rejected, got {other:?}"),
        }
        // A different tenant is admitted fine.
        let mut other = TestClient::connect_tcp(addr);
        assert!(matches!(other.hello("carol"), WireReply::Welcome { .. }));
        drop((first, second, other));
        server.drain().unwrap();
    }

    #[test]
    fn pool_exhaustion_rejects_new_connections() {
        let config = ServerConfig {
            max_sessions: 1,
            backlog: 1,
            ..test_config()
        };
        let server = LabService::new(config).serve_tcp("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        // Occupy the only worker and the only backlog slot.
        let mut active = TestClient::connect_tcp(addr);
        assert!(matches!(active.hello("a"), WireReply::Welcome { .. }));
        let _queued = TestClient::connect_tcp(addr);
        std::thread::sleep(Duration::from_millis(100));
        // The next connection must be rejected at the accept edge.
        let mut rejected = TestClient::connect_tcp(addr);
        let reply = rejected.await_reply(0);
        match reply {
            WireReply::Rejected { reason } => assert!(reason.contains("full"), "{reason}"),
            other => panic!("expected Rejected, got {other:?}"),
        }
        assert!(server.stats().rejected() >= 1);
        drop((active, rejected));
        server.drain().unwrap();
    }

    #[test]
    fn lapsed_deadline_expires_without_execution() {
        let server = LabService::new(test_config())
            .serve_tcp("127.0.0.1:0")
            .unwrap();
        let addr = server.local_addr().unwrap();
        let mut client = TestClient::connect_tcp(addr);
        client.hello("alice");
        // deadline_ms is checked against time since frame decode; a
        // 0ms-elapsed frame with a generous budget executes...
        assert!(matches!(
            client.request(WireRequest::Issue {
                deadline_ms: 5_000,
                command: Command::nullary(CommandType::InitC9),
            }),
            WireReply::Done { .. }
        ));
        let issues_before = server.stats().issues();
        // ...while a zero-budget... we can't force decode latency from
        // here, so drive the check directly through a 1ns-equivalent:
        // deadline_ms=0 disables the check, so use the smallest budget
        // and stall the session first with a Sync (cheap but nonzero).
        // The deterministic unit for the lapse path is exercised in
        // the backpressure test below; here we pin that a generous
        // budget never expires.
        assert_eq!(server.stats().expired(), 0);
        assert_eq!(server.stats().issues(), issues_before);
        drop(client);
        server.drain().unwrap();
    }

    #[test]
    fn slow_sink_backpressure_bounds_queued_rows_and_deadline_expires() {
        /// A sink that sleeps per batch — deliberately slower than the
        /// producer.
        struct SlowSink {
            inner: CollectingSink,
            delay: Duration,
        }
        impl TraceSink for SlowSink {
            fn accept(&mut self, batch: &TraceBatch) -> Result<(), RadError> {
                std::thread::sleep(self.delay);
                self.inner.accept(batch)
            }
            fn accept_gap(&mut self, gap: &TraceGap) -> Result<(), RadError> {
                self.inner.accept_gap(gap)
            }
        }

        let collected = CollectingSink::new();
        let sink = collected.clone();
        let factory: SinkFactory = Arc::new(move |_t: &str| {
            Ok(TenantSinkStack {
                sink: Box::new(SlowSink {
                    inner: sink.clone(),
                    delay: Duration::from_millis(40),
                }),
                durable: None,
            })
        });
        let config = ServerConfig {
            batch_rows: 4,
            sink_queue_batches: 2,
            ..test_config()
        };
        let bound = config.queue_bound_rows();
        let server = LabService::new(config)
            .with_sink_factory(factory)
            .serve_tcp("127.0.0.1:0")
            .unwrap();
        let addr = server.local_addr().unwrap();
        let mut client = TestClient::connect_tcp(addr);
        client.hello("slow");
        client.issue(CommandType::InitC9);
        let mut expired = 0u32;
        for _ in 0..60 {
            // A tight budget: once the session blocks at the bounded
            // channel, decode-to-execute latency crosses it and the
            // server answers Expired instead of executing late.
            match client.request(WireRequest::Issue {
                deadline_ms: 20,
                command: Command::nullary(CommandType::Mvng),
            }) {
                WireReply::Expired => expired += 1,
                WireReply::Done { .. } => {}
                other => panic!("unexpected reply {other:?}"),
            }
        }
        client.request(WireRequest::Bye);
        let report = server.drain().unwrap();
        let tenant = &report.tenants[0];
        assert!(
            tenant.peak_queued_rows <= bound,
            "peak {} exceeds configured bound {}",
            tenant.peak_queued_rows,
            bound
        );
        assert!(expired > 0, "backpressure must surface as Expired replies");
        assert_eq!(report.stats.expired as u32, expired);
        // Zero loss: everything that executed reached the sink.
        assert_eq!(tenant.rows_flushed, tenant.issues);
        assert_eq!(collected.len() as u64, tenant.issues);
    }

    #[test]
    fn idle_sessions_are_reaped() {
        let config = ServerConfig {
            idle_timeout: Duration::from_millis(120),
            ..test_config()
        };
        let server = LabService::new(config).serve_tcp("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let mut client = TestClient::connect_tcp(addr);
        client.hello("alice");
        client.issue(CommandType::InitC9);
        // Go quiet past the idle timeout: the server reaps the session
        // and frees the tenant for the next client.
        std::thread::sleep(Duration::from_millis(400));
        assert_eq!(server.stats().reaped(), 1);
        let mut next = TestClient::connect_tcp(addr);
        match next.hello("alice") {
            WireReply::Welcome { issues_done, .. } => assert_eq!(issues_done, 1),
            other => panic!("expected Welcome after reap, got {other:?}"),
        }
        drop((client, next));
        server.drain().unwrap();
    }

    #[test]
    fn oversized_client_frame_quarantines_the_session() {
        let config = ServerConfig {
            max_client_frame: 1024,
            ..test_config()
        };
        let server = LabService::new(config).serve_tcp("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let mut client = TestClient::connect_tcp(addr);
        client.hello("alice");
        // A length prefix past the server's cap: framing is lost.
        client
            .transport
            .send(Bytes::copy_from_slice(&(64 * 1024u32).to_be_bytes()))
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.stats().quarantined() == 0 {
            assert!(Instant::now() < deadline, "session was never quarantined");
            std::thread::sleep(Duration::from_millis(10));
        }
        // The tenant survives quarantine; a fresh session resumes it.
        let mut next = TestClient::connect_tcp(addr);
        assert!(matches!(next.hello("alice"), WireReply::Welcome { .. }));
        drop((client, next));
        server.drain().unwrap();
    }

    #[test]
    fn malformed_payload_is_skipped_not_fatal() {
        let server = LabService::new(test_config())
            .serve_tcp("127.0.0.1:0")
            .unwrap();
        let addr = server.local_addr().unwrap();
        let mut client = TestClient::connect_tcp(addr);
        client.hello("alice");
        // Well-framed garbage: the frame is skipped, the session
        // lives, and the next valid request succeeds.
        client
            .transport
            .send(FrameCodec::encode(b"not json at all"))
            .unwrap();
        assert!(matches!(
            client.issue(CommandType::InitC9),
            WireReply::Done { fault: None, .. }
        ));
        drop(client);
        server.drain().unwrap();
    }

    #[test]
    fn duplicate_request_ids_replay_without_reexecution() {
        let server = LabService::new(test_config())
            .serve_tcp("127.0.0.1:0")
            .unwrap();
        let addr = server.local_addr().unwrap();
        let mut client = TestClient::connect_tcp(addr);
        client.hello("alice");
        client.issue(CommandType::InitC9);
        // Replay the Issue frame by hand, as a retry would.
        let payload = serde_json::to_vec(&WireFrame {
            id: 1,
            body: WireRequest::Issue {
                deadline_ms: 0,
                command: Command::nullary(CommandType::InitC9),
            },
        })
        .unwrap();
        client.transport.send(FrameCodec::encode(&payload)).unwrap();
        let replay = client.await_reply(1);
        assert!(matches!(replay, WireReply::Done { .. }));
        assert_eq!(server.stats().dedup_hits(), 1);
        assert_eq!(server.stats().issues(), 1, "no double execution");
        drop(client);
        server.drain().unwrap();
    }

    #[test]
    fn durable_tenants_survive_drain_and_reopen() {
        let dir = std::env::temp_dir().join(format!("radd-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServerConfig {
            data_dir: Some(dir.clone()),
            ..test_config()
        };
        let server = LabService::new(config).serve_tcp("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let mut client = TestClient::connect_tcp(addr);
        client.hello("alice");
        client.issue(CommandType::InitC9);
        client.issue(CommandType::Home);
        client.request(WireRequest::Bye);
        let report = server.drain().unwrap();
        assert_eq!(report.tenants[0].rows_flushed, 2);
        // A fresh process recovers the flushed traces from disk.
        let (store, _) = DurableStore::open(&dir.join("alice"), DurableOptions::default()).unwrap();
        assert_eq!(store.count("traces", &rad_store::Filter::all()), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tenant_seeds_differ_per_name_and_reproduce() {
        assert_eq!(tenant_seed(7, "alice"), tenant_seed(7, "alice"));
        assert_ne!(tenant_seed(7, "alice"), tenant_seed(7, "bob"));
        assert_ne!(tenant_seed(7, "alice"), tenant_seed(8, "alice"));
    }
}
