//! Transport latency models for the three deployment modes.
//!
//! Fig. 4 of the paper reports the response-time distributions of N9
//! `ARM` commands: DIRECT mode sits under 10 ms, REMOTE adds ~2 ms with
//! occasional spikes past 30 ms, and the Azure replay (footnote 1)
//! averages ~60 ms. [`LatencyModel`] reproduces those distributions
//! with a log-normal body plus a configurable heavy tail.

use rad_core::{SimDuration, TraceMode};
use rand::Rng;
use rand::RngCore;

/// Deterministic latency cost of one failed relay attempt: the client
/// waits out its per-attempt response timeout, then backs off
/// exponentially (2 ms, 4 ms, 8 ms, ...) before resending.
///
/// Mirrors the wall-clock [`RetryPolicy`](crate::rpc::RetryPolicy)
/// defaults on the simulated clock, so fault-injected campaigns show
/// the latency signature a real lossy deployment would.
pub fn retry_penalty(attempt: u32) -> SimDuration {
    let backoff_ms = 2u64 << attempt.min(8);
    SimDuration::from_millis(250) + SimDuration::from_millis(backoff_ms)
}

/// A latency distribution for one transport hop.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// A fixed latency; used by ablation benches and tests.
    Constant(SimDuration),
    /// Uniform between two bounds.
    Uniform {
        /// Lower bound.
        low: SimDuration,
        /// Upper bound (inclusive-ish; sampling is continuous).
        high: SimDuration,
    },
    /// Log-normal body with an optional heavy tail: with probability
    /// `tail_prob` the sample is multiplied by `tail_scale` (queueing
    /// hiccups, Windows driver stalls).
    LogNormal {
        /// Median of the body, in milliseconds.
        median_ms: f64,
        /// Log-space standard deviation (shape).
        sigma: f64,
        /// Probability of a tail event.
        tail_prob: f64,
        /// Multiplier applied on tail events.
        tail_scale: f64,
    },
}

impl LatencyModel {
    /// DIRECT mode: lab computer to device, with passive tracing.
    /// Median ≈ 4 ms, essentially no tail.
    pub fn direct() -> Self {
        LatencyModel::LogNormal {
            median_ms: 4.0,
            sigma: 0.25,
            tail_prob: 0.002,
            tail_scale: 3.0,
        }
    }

    /// REMOTE mode: one extra middlebox hop. Median ≈ 6 ms with an
    /// occasional > 30 ms spike, matching Fig. 4's outliers.
    pub fn remote() -> Self {
        LatencyModel::LogNormal {
            median_ms: 6.0,
            sigma: 0.30,
            tail_prob: 0.02,
            tail_scale: 7.0,
        }
    }

    /// CLOUD replay (footnote 1): WAN round trip to an Azure F16s v2.
    /// Average ≈ 60 ms.
    pub fn cloud() -> Self {
        LatencyModel::LogNormal {
            median_ms: 58.0,
            sigma: 0.18,
            tail_prob: 0.01,
            tail_scale: 3.0,
        }
    }

    /// The paper-calibrated model for a trace mode.
    pub fn for_mode(mode: TraceMode) -> Self {
        match mode {
            TraceMode::Direct => LatencyModel::direct(),
            TraceMode::Remote => LatencyModel::remote(),
            TraceMode::Cloud => LatencyModel::cloud(),
        }
    }

    /// Draws one latency sample.
    pub fn sample(&self, rng: &mut dyn RngCore) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { low, high } => {
                let lo = low.as_micros();
                let hi = high.as_micros().max(lo + 1);
                SimDuration::from_micros(rng.gen_range(lo..hi))
            }
            LatencyModel::LogNormal {
                median_ms,
                sigma,
                tail_prob,
                tail_scale,
            } => {
                // Box-Muller standard normal from two uniforms.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let mut ms = median_ms * (sigma * z).exp();
                if rng.gen_bool((*tail_prob).clamp(0.0, 1.0)) {
                    ms *= tail_scale;
                }
                SimDuration::from_secs_f64(ms / 1e3)
            }
        }
    }

    /// Mean of `n` samples, in milliseconds (handy for calibration
    /// tests and the Fig. 4 harness).
    pub fn mean_ms(&self, rng: &mut dyn RngCore, n: usize) -> f64 {
        assert!(n > 0, "need at least one sample");
        (0..n)
            .map(|_| self.sample(rng).as_millis_f64())
            .sum::<f64>()
            / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn constant_model_is_constant() {
        let m = LatencyModel::Constant(SimDuration::from_millis(5));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), SimDuration::from_millis(5));
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let m = LatencyModel::Uniform {
            low: SimDuration::from_millis(1),
            high: SimDuration::from_millis(3),
        };
        let mut r = rng();
        for _ in 0..1000 {
            let s = m.sample(&mut r);
            assert!(s >= SimDuration::from_millis(1) && s <= SimDuration::from_millis(3));
        }
    }

    #[test]
    fn remote_adds_about_two_ms_over_direct() {
        // §III: "REMOTE mode increases average response time by around
        // 2 ms".
        let mut r = rng();
        let direct = LatencyModel::direct().mean_ms(&mut r, 20_000);
        let remote = LatencyModel::remote().mean_ms(&mut r, 20_000);
        let delta = remote - direct;
        assert!(
            (1.0..4.0).contains(&delta),
            "remote-direct delta {delta} ms"
        );
    }

    #[test]
    fn both_local_modes_stay_under_10ms_on_average() {
        let mut r = rng();
        assert!(LatencyModel::direct().mean_ms(&mut r, 10_000) < 10.0);
        assert!(LatencyModel::remote().mean_ms(&mut r, 10_000) < 10.0);
    }

    #[test]
    fn remote_occasionally_exceeds_30ms() {
        // Fig. 4 shows outliers beyond 30 ms in REMOTE mode.
        let m = LatencyModel::remote();
        let mut r = rng();
        let spikes = (0..20_000)
            .filter(|_| m.sample(&mut r) > SimDuration::from_millis(30))
            .count();
        assert!(spikes > 0, "expected at least one >30 ms spike");
        assert!(spikes < 2_000, "spikes should be rare, got {spikes}");
    }

    #[test]
    fn cloud_averages_an_order_of_magnitude_higher() {
        // Footnote 1: ~60 ms cloud vs <10 ms local.
        let mut r = rng();
        let cloud = LatencyModel::cloud().mean_ms(&mut r, 20_000);
        assert!((45.0..80.0).contains(&cloud), "cloud mean {cloud} ms");
    }

    #[test]
    fn for_mode_maps_all_modes() {
        assert_eq!(
            LatencyModel::for_mode(TraceMode::Direct),
            LatencyModel::direct()
        );
        assert_eq!(
            LatencyModel::for_mode(TraceMode::Remote),
            LatencyModel::remote()
        );
        assert_eq!(
            LatencyModel::for_mode(TraceMode::Cloud),
            LatencyModel::cloud()
        );
    }
}
