//! Campaign-over-socket driver: replays a seeded campaign's command
//! schedule against a live [`rad_middlebox::server`] lab service.
//!
//! The in-process campaign synthesizer owns its middlebox directly;
//! this module is the client half of the deployment story — it speaks
//! the framed wire protocol over any [`Transport`] (in-process duplex,
//! TCP, Unix-domain socket), retries with the jittered [`RetryPolicy`]
//! so lockstep clients don't stampede an overloaded server, and
//! survives the two failures a real lab sees:
//!
//! - **Kill + reconnect** — every `Welcome` carries the tenant's
//!   executed-issue cursor; [`RemoteCampaign::resume_from`] skips the
//!   already-executed prefix (re-opening the interrupted run — the
//!   server's idempotent `BeginRun` makes that safe) and continues
//!   where the dead session stopped. No command is re-executed, no
//!   command is lost.
//! - **Degraded mode** — when the link dies for good and the policy is
//!   [`DisconnectPolicy::Degrade`], remaining commands execute on the
//!   local shadow rig (the lab computer falling back to DIRECT) and
//!   each is recorded as a client-side [`TraceGap`], exactly like the
//!   in-process middlebox's degradation path.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use bytes::Bytes;
use rad_core::{
    spec, Command, DeviceId, Label, ProcedureKind, RadError, RunId, TraceGap, TraceMode, Value,
};
use rad_devices::LabRig;
use rad_middlebox::rpc::{FrameCodec, RetryPolicy, Transport};
use rad_middlebox::server::{WireFrame, WireReply, WireRequest};
use rad_middlebox::wire::{self, WireCodecKind};
use serde::Serialize;

use crate::campaign::CampaignBuilder;

/// Why a client-side gap was recorded (mirrors the middlebox's fixed
/// degradation reason, but names the remote service).
const GAP_REASON: &str = "lab service unreachable";

/// Simulated time the client clock advances per degraded command —
/// keeps client-side gap timestamps deterministic and ordered.
const DEGRADED_STEP_MICROS: u64 = 10_000;

/// What to do when the server link dies mid-campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisconnectPolicy {
    /// Fall back to direct execution on the local shadow rig and record
    /// a [`TraceGap`] per remaining command — the experiment survives,
    /// the interception point is lost.
    Degrade,
    /// Stop driving and surface the error — the caller reconnects and
    /// resumes.
    Fail,
}

/// One step of a replayable campaign schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptStep {
    /// Open a labelled procedure run.
    Begin {
        /// Run identifier.
        run: u32,
        /// Procedure being run.
        procedure: ProcedureKind,
        /// Ground-truth label.
        label: Label,
    },
    /// Issue one device command.
    Command(Command),
    /// Close the open run.
    End,
}

/// A campaign's command schedule, flattened into replayable steps.
///
/// Extracted from a seeded in-process campaign: the same seed always
/// yields the same script, so a remote replay is comparable
/// command-for-command with the in-process dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignScript {
    steps: Vec<ScriptStep>,
}

impl CampaignScript {
    /// The supervised portion of the seeded campaign as a script:
    /// every run boundary and every traced command, in time order.
    pub fn supervised(seed: u64) -> Self {
        let dataset = CampaignBuilder::new(seed).supervised_only().build();
        let mut traces = dataset.command().traces();
        traces.sort_by_key(|t| t.timestamp());
        let runs = dataset.command().runs().to_vec();
        let mut steps = Vec::with_capacity(traces.len() + runs.len() * 2);
        let mut open: Option<RunId> = None;
        for trace in &traces {
            if trace.run_id() != open {
                if open.is_some() {
                    steps.push(ScriptStep::End);
                }
                open = trace.run_id();
                if let Some(run) = trace.run_id() {
                    steps.push(ScriptStep::Begin {
                        run: run.0,
                        procedure: trace.procedure(),
                        label: trace.label(),
                    });
                }
            }
            steps.push(ScriptStep::Command(trace.command().clone()));
        }
        if open.is_some() {
            steps.push(ScriptStep::End);
        }
        CampaignScript { steps }
    }

    /// A script from explicit steps (tests, hand-built workloads).
    pub fn from_steps(steps: Vec<ScriptStep>) -> Self {
        CampaignScript { steps }
    }

    /// Truncates the script to its first `max_commands` command steps
    /// (run boundaries within the kept prefix survive; an interrupted
    /// run stays open, like a kill mid-run would leave it).
    #[must_use]
    pub fn truncated(mut self, max_commands: usize) -> Self {
        let mut commands = 0usize;
        let mut keep = 0usize;
        for (i, step) in self.steps.iter().enumerate() {
            if matches!(step, ScriptStep::Command(_)) {
                commands += 1;
            }
            keep = i + 1;
            if commands == max_commands {
                break;
            }
        }
        self.steps.truncate(keep);
        CampaignScript { steps: self.steps }
    }

    /// Total command steps in the script.
    pub fn command_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, ScriptStep::Command(_)))
            .count()
    }

    /// The steps, in replay order.
    pub fn steps(&self) -> &[ScriptStep] {
        &self.steps
    }
}

/// One framed protocol session over any [`Transport`].
///
/// Handles correlation ids (doubling as idempotency tokens), the
/// jittered retry schedule, and the typed reply mapping: `Rejected`
/// surfaces as [`RadError::Overloaded`], `Expired` as
/// [`RadError::RpcTimeout`], `Failed` as [`RadError::Rpc`].
#[derive(Debug)]
pub struct RemoteSession<T: Transport> {
    transport: T,
    codec: FrameCodec,
    codec_kind: WireCodecKind,
    next_id: u64,
    policy: RetryPolicy,
    cursor: u64,
    scratch: Vec<u8>,
}

impl<T: Transport> RemoteSession<T> {
    /// Opens a session for `tenant` over `transport`: sends `Hello`
    /// (retrying through overload rejects per `policy`) and records
    /// the server's resume cursor.
    ///
    /// # Errors
    ///
    /// [`RadError::Overloaded`] when admission keeps failing past the
    /// policy's attempts; transport errors pass through.
    pub fn connect(transport: T, tenant: &str, policy: RetryPolicy) -> Result<Self, RadError> {
        Self::connect_with(transport, tenant, policy, WireCodecKind::Json)
    }

    /// [`RemoteSession::connect`] with an explicit data-plane codec.
    /// The handshake and control frames always travel as JSON; `codec`
    /// selects the encoding of the pipelined `Issue` hot path (every
    /// frame is self-describing, so no negotiation round-trip exists).
    ///
    /// # Errors
    ///
    /// Same as [`RemoteSession::connect`].
    pub fn connect_with(
        transport: T,
        tenant: &str,
        policy: RetryPolicy,
        codec_kind: WireCodecKind,
    ) -> Result<Self, RadError> {
        let mut session = RemoteSession {
            transport,
            codec: FrameCodec::new(),
            codec_kind,
            next_id: 0,
            policy,
            cursor: 0,
            scratch: Vec::new(),
        };
        match session.request(WireRequest::Hello {
            tenant: tenant.to_string(),
        })? {
            WireReply::Welcome { issues_done, .. } => {
                session.cursor = issues_done;
                Ok(session)
            }
            other => Err(RadError::Rpc(format!("expected Welcome, got {other:?}"))),
        }
    }

    /// The tenant's executed-issue count at connect time — how many
    /// commands a resumed campaign must skip.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Executes one command remotely. Device faults come back as the
    /// logged exception string, like the in-process trace records them.
    ///
    /// # Errors
    ///
    /// Transport and protocol failures; the command itself failing is
    /// the `Err` arm of the *inner* result.
    pub fn issue(&mut self, command: &Command) -> Result<Result<Value, String>, RadError> {
        let deadline_ms = u64::try_from(self.policy.attempt_timeout.as_millis()).unwrap_or(0);
        match self.request(WireRequest::Issue {
            deadline_ms,
            command: command.clone(),
        })? {
            WireReply::Done {
                value: Some(value),
                fault: None,
            } => Ok(Ok(value)),
            WireReply::Done {
                fault: Some(fault), ..
            } => Ok(Err(fault)),
            other => Err(RadError::Rpc(format!("expected Done, got {other:?}"))),
        }
    }

    /// Executes a batch of commands with up to `depth` requests in
    /// flight: the window is topped up with one coalesced write +
    /// flush, replies are reconciled head-of-line against their
    /// correlation ids, and a retryable failure re-sends *every*
    /// pending request in one chunk — the ids double as idempotency
    /// tokens, so the server replays cached replies instead of
    /// re-executing. Device faults come back in-order as the inner
    /// `Err` arm, exactly like [`RemoteSession::issue`].
    ///
    /// # Errors
    ///
    /// [`PipelineError`] carries the results completed before the
    /// failure, so a resuming caller knows how far the batch got.
    pub fn issue_pipelined(
        &mut self,
        commands: &[&Command],
        depth: usize,
    ) -> Result<Vec<Result<Value, String>>, PipelineError> {
        let depth = depth.max(1);
        let deadline_ms = u64::try_from(self.policy.attempt_timeout.as_millis()).unwrap_or(0);
        let mut results: Vec<Result<Value, String>> = Vec::with_capacity(commands.len());
        let mut pending: VecDeque<(u64, usize)> = VecDeque::new();
        let mut next = 0usize;
        let mut attempts = 0u32;
        let mut head_deadline = Instant::now() + self.policy.deadline;
        let fail = |results: Vec<Result<Value, String>>, error: RadError| PipelineError {
            completed: results,
            error,
        };
        while results.len() < commands.len() {
            if pending.len() < depth && next < commands.len() {
                self.scratch.clear();
                while pending.len() < depth && next < commands.len() {
                    let id = self.next_id;
                    self.next_id += 1;
                    self.encode_issue(id, deadline_ms, commands[next]);
                    pending.push_back((id, next));
                    next += 1;
                }
                if let Err(e) = self.flush_scratch() {
                    return Err(fail(results, e));
                }
            }
            let (head, _) = *pending
                .front()
                .expect("incomplete batch has requests in flight");
            let remaining = head_deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(fail(
                    results,
                    RadError::RpcTimeout("pipelined head passed its deadline".into()),
                ));
            }
            let wait = remaining.min(self.policy.attempt_timeout);
            match self.await_reply(head, wait) {
                Ok(WireReply::Done {
                    value: Some(value),
                    fault: None,
                }) => {
                    results.push(Ok(value));
                    pending.pop_front();
                    attempts = 0;
                    head_deadline = Instant::now() + self.policy.deadline;
                }
                Ok(WireReply::Done {
                    fault: Some(fault), ..
                }) => {
                    results.push(Err(fault));
                    pending.pop_front();
                    attempts = 0;
                    head_deadline = Instant::now() + self.policy.deadline;
                }
                Ok(other) => {
                    return Err(fail(
                        results,
                        RadError::Rpc(format!("expected Done, got {other:?}")),
                    ));
                }
                Err(e) if e.is_retryable() => {
                    attempts += 1;
                    if attempts >= self.policy.max_attempts.max(1) {
                        return Err(fail(results, e));
                    }
                    std::thread::sleep(self.policy.backoff_for(attempts));
                    // Re-send the whole in-flight window in one chunk;
                    // anything that executed before the loss replays
                    // from the server's dedup cache.
                    self.scratch.clear();
                    for &(id, index) in &pending {
                        self.encode_issue(id, deadline_ms, commands[index]);
                    }
                    if let Err(e) = self.flush_scratch() {
                        return Err(fail(results, e));
                    }
                }
                Err(e) => return Err(fail(results, e)),
            }
        }
        Ok(results)
    }

    /// Appends one framed `Issue` request to the scratch buffer in the
    /// session's data-plane codec, borrowing the command — no
    /// per-issue clone on either path.
    fn encode_issue(&mut self, id: u64, deadline_ms: u64, command: &Command) {
        let start = FrameCodec::begin_frame(&mut self.scratch);
        match self.codec_kind {
            WireCodecKind::Binary => {
                wire::encode_issue_frame(&mut self.scratch, id, deadline_ms, command);
            }
            WireCodecKind::Json => {
                let payload = serde_json::to_vec(&IssueFrameRef {
                    id,
                    deadline_ms,
                    command,
                })
                .expect("issue frames always serialize");
                self.scratch.extend_from_slice(&payload);
            }
        }
        FrameCodec::finish_frame(&mut self.scratch, start);
    }

    /// Sends everything accumulated in the scratch buffer as one
    /// write + flush.
    fn flush_scratch(&mut self) -> Result<(), RadError> {
        if self.scratch.is_empty() {
            return Ok(());
        }
        self.transport.send(Bytes::copy_from_slice(&self.scratch))
    }

    /// Opens (or idempotently re-opens) a labelled run.
    ///
    /// # Errors
    ///
    /// Transport and protocol failures.
    pub fn begin_run(
        &mut self,
        run: u32,
        procedure: ProcedureKind,
        label: Label,
    ) -> Result<(), RadError> {
        self.expect_accepted(WireRequest::BeginRun {
            run,
            procedure,
            label,
        })
    }

    /// Closes the open run (no-op when none is open).
    ///
    /// # Errors
    ///
    /// Transport and protocol failures.
    pub fn end_run(&mut self) -> Result<(), RadError> {
        self.expect_accepted(WireRequest::EndRun)
    }

    /// Attaches an operator note to the open run.
    ///
    /// # Errors
    ///
    /// Transport and protocol failures.
    pub fn annotate(&mut self, note: &str) -> Result<(), RadError> {
        self.expect_accepted(WireRequest::Annotate { note: note.into() })
    }

    /// Advances the tenant's simulated clock.
    ///
    /// # Errors
    ///
    /// Transport and protocol failures.
    pub fn advance(&mut self, micros: u64) -> Result<(), RadError> {
        self.expect_accepted(WireRequest::Advance { micros })
    }

    /// Flushes the tenant's sink stack through to durable storage.
    ///
    /// # Errors
    ///
    /// Transport failures, or the server reporting the flush failed.
    pub fn sync(&mut self) -> Result<(), RadError> {
        self.expect_accepted(WireRequest::Sync)
    }

    /// Ends the session cleanly; returns the tenant's lifetime
    /// executed-issue count.
    ///
    /// # Errors
    ///
    /// Transport and protocol failures.
    pub fn bye(mut self) -> Result<u64, RadError> {
        match self.request(WireRequest::Bye)? {
            WireReply::Goodbye { issues_done } => Ok(issues_done),
            other => Err(RadError::Rpc(format!("expected Goodbye, got {other:?}"))),
        }
    }

    fn expect_accepted(&mut self, body: WireRequest) -> Result<(), RadError> {
        match self.request(body)? {
            WireReply::Accepted => Ok(()),
            WireReply::Failed { message } => Err(RadError::Rpc(message)),
            other => Err(RadError::Rpc(format!("expected Accepted, got {other:?}"))),
        }
    }

    /// One request under the retry policy: the id is the idempotency
    /// token, so a retried request that actually executed the first
    /// time replays the server's cached reply.
    fn request(&mut self, body: WireRequest) -> Result<WireReply, RadError> {
        let id = self.next_id;
        self.next_id += 1;
        let payload = serde_json::to_vec(&WireFrame { id, body })
            .map_err(|e| RadError::Rpc(format!("encode failure: {e}")))?;
        let framed = FrameCodec::encode(&payload);
        let overall_deadline = Instant::now() + self.policy.deadline;
        let mut last_err = RadError::RpcTimeout("no response before deadline".into());
        for attempt in 0..self.policy.max_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.policy.backoff_for(attempt));
            }
            let remaining = overall_deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            self.transport.send(framed.clone())?;
            let wait = remaining.min(self.policy.attempt_timeout);
            match self.await_reply(id, wait) {
                Ok(reply) => return Ok(reply),
                Err(e) if e.is_retryable() => last_err = e,
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    fn await_reply(&mut self, id: u64, timeout: Duration) -> Result<WireReply, RadError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.codec.next_frame() {
                Ok(Some(frame)) => {
                    // Self-describing payloads: binary replies carry
                    // the codec tag, anything else decodes as JSON.
                    let Ok(reply) = wire::decode_reply_frame(&frame) else {
                        // Corrupt reply: treated as lost; the retry
                        // machinery re-requests under the same token.
                        self.codec.reset();
                        continue;
                    };
                    if reply.id != id && reply.id != 0 {
                        // Stale reply from a timed-out earlier attempt.
                        continue;
                    }
                    return match reply.body {
                        WireReply::Rejected { reason } => Err(RadError::Overloaded(reason)),
                        WireReply::Expired => {
                            Err(RadError::RpcTimeout("server-side budget lapsed".into()))
                        }
                        WireReply::Failed { message } => Err(RadError::Rpc(message)),
                        body => Ok(body),
                    };
                }
                Ok(None) => {}
                Err(_) => self.codec.reset(),
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RadError::RpcTimeout("receive timed out".into()));
            }
            match self.transport.recv(remaining) {
                Ok(chunk) => self.codec.push(&chunk),
                Err(RadError::RpcTimeout(_)) => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// A pipelined batch that could not run to completion: everything
/// reconciled before the failure, plus the error that stopped it.
///
/// `completed` holds in-order per-command results (device faults are
/// the inner `Err` arm and do *not* stop a batch); the commands at
/// `completed.len()..` never resolved.
#[derive(Debug)]
pub struct PipelineError {
    /// In-order results for the commands that resolved.
    pub completed: Vec<Result<Value, String>>,
    /// The terminal transport/protocol error.
    pub error: RadError,
}

/// Borrowed `Issue` frame serializing byte-identically to
/// `WireFrame { id, body: WireRequest::Issue { deadline_ms, command } }`
/// without cloning the command (the derive shim rejects lifetimes, so
/// the externally-tagged shape is spelled out by hand; a test pins
/// the equivalence).
struct IssueFrameRef<'a> {
    id: u64,
    deadline_ms: u64,
    command: &'a Command,
}

impl Serialize for IssueFrameRef<'_> {
    fn to_content(&self) -> serde::Content {
        serde::Content::Map(vec![
            ("id".to_owned(), self.id.to_content()),
            (
                "body".to_owned(),
                serde::Content::Map(vec![(
                    "Issue".to_owned(),
                    serde::Content::Map(vec![
                        ("deadline_ms".to_owned(), self.deadline_ms.to_content()),
                        ("command".to_owned(), self.command.to_content()),
                    ]),
                )]),
            ),
        ])
    }
}

/// What one [`RemoteCampaign`] drive observed.
#[derive(Debug, Clone, PartialEq)]
pub struct DriveReport {
    /// Commands executed remotely *by this session* (skipped prefix
    /// excluded).
    pub executed: u64,
    /// The resume cursor the server reported at connect: commands
    /// already executed by earlier sessions.
    pub resumed_at: u64,
    /// Client-side gaps recorded while degraded (empty unless the link
    /// died under [`DisconnectPolicy::Degrade`]).
    pub gaps: Vec<TraceGap>,
    /// Whether the script ran to completion (remotely or degraded).
    pub completed: bool,
    /// The terminal transport error, when the drive stopped early
    /// under [`DisconnectPolicy::Fail`].
    pub error: Option<RadError>,
}

/// Replays a [`CampaignScript`] against a live lab service.
#[derive(Debug, Clone)]
pub struct RemoteCampaign {
    script: CampaignScript,
    tenant: String,
    policy: RetryPolicy,
    disconnect: DisconnectPolicy,
    codec: WireCodecKind,
    pipeline_depth: usize,
}

impl RemoteCampaign {
    /// A campaign replaying `script` as `tenant`.
    pub fn new(script: CampaignScript, tenant: &str) -> Self {
        RemoteCampaign {
            script,
            tenant: tenant.to_string(),
            policy: RetryPolicy::default(),
            disconnect: DisconnectPolicy::Fail,
            codec: WireCodecKind::Json,
            pipeline_depth: 1,
        }
    }

    /// Replaces the per-request retry policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the link-death behavior.
    #[must_use]
    pub fn on_disconnect(mut self, policy: DisconnectPolicy) -> Self {
        self.disconnect = policy;
        self
    }

    /// Selects the data-plane codec ([`WireCodecKind::Json`] by
    /// default). Binary engages the pipelined issue path even at
    /// depth 1.
    #[must_use]
    pub fn with_codec(mut self, codec: WireCodecKind) -> Self {
        self.codec = codec;
        self
    }

    /// Sets the pipelining window: how many `Issue` requests ride the
    /// wire before the first reply is awaited. Depth 1 with the JSON
    /// codec is the classic lock-step drive; anything else batches
    /// consecutive script commands through
    /// [`RemoteSession::issue_pipelined`].
    #[must_use]
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth.max(1);
        self
    }

    /// Drives the script from the beginning of the *tenant's* history:
    /// identical to [`RemoteCampaign::resume_from`] — the server's
    /// cursor decides how much prefix to skip, which is zero for a
    /// fresh tenant.
    ///
    /// # Errors
    ///
    /// Connect failures (admission kept rejecting, transport died
    /// before `Welcome`); after connect, errors are folded into the
    /// report per the disconnect policy.
    pub fn drive<T: Transport>(&self, transport: T) -> Result<DriveReport, RadError> {
        self.resume_from(transport)
    }

    /// Connects, reads the tenant's executed-command cursor from the
    /// `Welcome`, skips the already-executed script prefix (re-opening
    /// an interrupted run via the server's idempotent `BeginRun`), and
    /// drives the remainder.
    ///
    /// # Errors
    ///
    /// Connect failures. Post-connect link death is folded into the
    /// report: [`DisconnectPolicy::Degrade`] finishes the script on
    /// the local shadow rig with client-side [`TraceGap`]s;
    /// [`DisconnectPolicy::Fail`] stops with `report.error` set so the
    /// caller can reconnect and resume.
    pub fn resume_from<T: Transport>(&self, transport: T) -> Result<DriveReport, RadError> {
        let session =
            RemoteSession::connect_with(transport, &self.tenant, self.policy.clone(), self.codec)?;
        if self.pipeline_depth <= 1 && self.codec == WireCodecKind::Json {
            self.drive_lock_step(session)
        } else {
            self.drive_pipelined(session)
        }
    }

    /// The classic drive: one round-trip per script step.
    fn drive_lock_step<T: Transport>(
        &self,
        mut session: RemoteSession<T>,
    ) -> Result<DriveReport, RadError> {
        let cursor = session.cursor();
        let mut report = DriveReport {
            executed: 0,
            resumed_at: cursor,
            gaps: Vec::new(),
            completed: false,
            error: None,
        };
        // The local shadow rig mirrors every command so degraded mode
        // picks up with consistent device state.
        let mut shadow = LabRig::new(0);
        let mut issued = 0u64;
        let mut open_run: Option<(u32, ProcedureKind, Label)> = None;
        let mut resumed_open_run = cursor == 0;
        let mut degraded = false;
        for step in self.script.steps() {
            match step {
                ScriptStep::Begin {
                    run,
                    procedure,
                    label,
                } => {
                    open_run = Some((*run, *procedure, *label));
                    if issued < cursor || degraded {
                        continue;
                    }
                    resumed_open_run = true;
                    if let Err(e) = session.begin_run(*run, *procedure, *label) {
                        if self.fold_error(e, &mut report, &mut degraded) {
                            continue;
                        }
                        return Ok(report);
                    }
                }
                ScriptStep::End => {
                    open_run = None;
                    if issued < cursor || degraded {
                        continue;
                    }
                    if let Err(e) = session.end_run() {
                        if self.fold_error(e, &mut report, &mut degraded) {
                            continue;
                        }
                        return Ok(report);
                    }
                }
                ScriptStep::Command(command) => {
                    // Every command replays on the shadow rig, even the
                    // skipped prefix — device state must match where
                    // the dead session left off.
                    let _ = shadow.execute(command);
                    if issued < cursor {
                        issued += 1;
                        continue;
                    }
                    if degraded {
                        issued += 1;
                        report
                            .gaps
                            .push(self.degraded_gap(command, issued, open_run));
                        continue;
                    }
                    if !resumed_open_run {
                        // Resuming mid-run: re-open it first. The
                        // server's BeginRun is idempotent, so this is a
                        // no-op when the run is still open from the
                        // killed session.
                        resumed_open_run = true;
                        if let Some((run, procedure, label)) = open_run {
                            if let Err(e) = session.begin_run(run, procedure, label) {
                                if !self.fold_error(e, &mut report, &mut degraded) {
                                    return Ok(report);
                                }
                            }
                        }
                    }
                    if degraded {
                        issued += 1;
                        report
                            .gaps
                            .push(self.degraded_gap(command, issued, open_run));
                        continue;
                    }
                    match session.issue(command) {
                        Ok(_device_result) => {
                            issued += 1;
                            report.executed += 1;
                        }
                        Err(e) => {
                            if self.fold_error(e, &mut report, &mut degraded) {
                                issued += 1;
                                report
                                    .gaps
                                    .push(self.degraded_gap(command, issued, open_run));
                            } else {
                                return Ok(report);
                            }
                        }
                    }
                }
            }
        }
        if !degraded {
            let _ = session.bye();
        }
        report.completed = true;
        Ok(report)
    }

    /// The pipelined drive: consecutive command steps batch through
    /// [`RemoteSession::issue_pipelined`]; run boundaries flush the
    /// batch first, so the server observes the exact step order of the
    /// lock-step drive — the golden suite pins the exports
    /// byte-identical at every depth.
    fn drive_pipelined<T: Transport>(
        &self,
        mut session: RemoteSession<T>,
    ) -> Result<DriveReport, RadError> {
        let cursor = session.cursor();
        let mut report = DriveReport {
            executed: 0,
            resumed_at: cursor,
            gaps: Vec::new(),
            completed: false,
            error: None,
        };
        let mut shadow = LabRig::new(0);
        let mut issued = 0u64;
        let mut open_run: Option<(u32, ProcedureKind, Label)> = None;
        let mut resumed_open_run = cursor == 0;
        let mut degraded = false;
        let mut batch: Vec<&Command> = Vec::new();
        for step in self.script.steps() {
            match step {
                ScriptStep::Begin {
                    run,
                    procedure,
                    label,
                } => {
                    if !self.flush_batch(
                        &mut session,
                        &mut batch,
                        open_run,
                        &mut issued,
                        &mut report,
                        &mut degraded,
                    ) {
                        return Ok(report);
                    }
                    open_run = Some((*run, *procedure, *label));
                    if issued < cursor || degraded {
                        continue;
                    }
                    resumed_open_run = true;
                    if let Err(e) = session.begin_run(*run, *procedure, *label) {
                        if self.fold_error(e, &mut report, &mut degraded) {
                            continue;
                        }
                        return Ok(report);
                    }
                }
                ScriptStep::End => {
                    if !self.flush_batch(
                        &mut session,
                        &mut batch,
                        open_run,
                        &mut issued,
                        &mut report,
                        &mut degraded,
                    ) {
                        return Ok(report);
                    }
                    open_run = None;
                    if issued < cursor || degraded {
                        continue;
                    }
                    if let Err(e) = session.end_run() {
                        if self.fold_error(e, &mut report, &mut degraded) {
                            continue;
                        }
                        return Ok(report);
                    }
                }
                ScriptStep::Command(command) => {
                    // Every command replays on the shadow rig, even the
                    // skipped prefix — device state must match where
                    // the dead session left off.
                    let _ = shadow.execute(command);
                    // The already-executed prefix and degraded-mode
                    // commands never batch, so `issued` is exact here:
                    // batched commands only settle inside flush_batch.
                    if issued < cursor {
                        issued += 1;
                        continue;
                    }
                    if degraded {
                        issued += 1;
                        report
                            .gaps
                            .push(self.degraded_gap(command, issued, open_run));
                        continue;
                    }
                    if !resumed_open_run {
                        // Resuming mid-run: re-open it first. The
                        // server's BeginRun is idempotent, so this is a
                        // no-op when the run is still open from the
                        // killed session.
                        resumed_open_run = true;
                        if let Some((run, procedure, label)) = open_run {
                            if let Err(e) = session.begin_run(run, procedure, label) {
                                if !self.fold_error(e, &mut report, &mut degraded) {
                                    return Ok(report);
                                }
                            }
                        }
                    }
                    if degraded {
                        issued += 1;
                        report
                            .gaps
                            .push(self.degraded_gap(command, issued, open_run));
                        continue;
                    }
                    batch.push(command);
                }
            }
        }
        if !self.flush_batch(
            &mut session,
            &mut batch,
            open_run,
            &mut issued,
            &mut report,
            &mut degraded,
        ) {
            return Ok(report);
        }
        if !degraded {
            let _ = session.bye();
        }
        report.completed = true;
        Ok(report)
    }

    /// Drains the pending command batch through the pipelined window,
    /// folding a mid-batch failure exactly like the lock-step drive:
    /// completed commands count as executed, the remainder degrade
    /// into gaps or stop the drive per the disconnect policy. Returns
    /// `false` when the drive must stop.
    fn flush_batch<T: Transport>(
        &self,
        session: &mut RemoteSession<T>,
        batch: &mut Vec<&Command>,
        open_run: Option<(u32, ProcedureKind, Label)>,
        issued: &mut u64,
        report: &mut DriveReport,
        degraded: &mut bool,
    ) -> bool {
        if batch.is_empty() {
            return true;
        }
        match session.issue_pipelined(batch, self.pipeline_depth) {
            Ok(results) => {
                *issued += results.len() as u64;
                report.executed += results.len() as u64;
                batch.clear();
                true
            }
            Err(PipelineError { completed, error }) => {
                *issued += completed.len() as u64;
                report.executed += completed.len() as u64;
                let unresolved: Vec<&Command> = batch.split_off(completed.len());
                batch.clear();
                if self.fold_error(error, report, degraded) {
                    for command in unresolved {
                        *issued += 1;
                        report
                            .gaps
                            .push(self.degraded_gap(command, *issued, open_run));
                    }
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Folds a drive error into the report. Returns `true` when the
    /// campaign should continue in degraded mode.
    fn fold_error(&self, e: RadError, report: &mut DriveReport, degraded: &mut bool) -> bool {
        match self.disconnect {
            DisconnectPolicy::Degrade => {
                *degraded = true;
                true
            }
            DisconnectPolicy::Fail => {
                report.error = Some(e);
                false
            }
        }
    }

    fn degraded_gap(
        &self,
        command: &Command,
        issued: u64,
        open_run: Option<(u32, ProcedureKind, Label)>,
    ) -> TraceGap {
        let at = rad_core::SimInstant::from_micros(issued * DEGRADED_STEP_MICROS);
        let mut gap = TraceGap::new(
            at,
            DeviceId::primary(command.command_type().device()),
            command.command_type(),
            TraceMode::Remote,
            TraceGap::intern_reason(GAP_REASON),
        );
        if let Some((run, _, _)) = open_run {
            gap = gap.with_run(RunId(run));
        }
        gap
    }
}

/// The declarative form of a [`RemoteCampaign`] tenant — one entry of
/// the `transport.tenants` array of a scenario document:
///
/// ```json
/// {
///   "tenant": "alice",
///   "max_commands": 40,
///   "on_disconnect": "degrade",
///   "retry": {"max_attempts": 6, "deadline_ms": 5000}
/// }
/// ```
///
/// Only `tenant` is required. `max_commands` truncates the replayed
/// script ([`CampaignScript::truncated`]); `on_disconnect` is
/// `"fail"` (default) or `"degrade"`; `retry` is a
/// [`RetrySpec`](rad_middlebox::rpc::RetrySpec) section.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name the session connects as.
    pub tenant: String,
    /// Truncate the script to this many command steps, if set.
    pub max_commands: Option<usize>,
    /// Per-request retry policy override, if set.
    pub retry: Option<rad_middlebox::rpc::RetrySpec>,
    /// Link-death behavior.
    pub on_disconnect: DisconnectPolicy,
}

impl TenantSpec {
    const FIELDS: &'static [&'static str] = &["tenant", "max_commands", "retry", "on_disconnect"];

    /// Builds the [`RemoteCampaign`] this spec describes over a
    /// replayable script (truncating it first when `max_commands` is
    /// set).
    pub fn to_campaign(&self, script: CampaignScript) -> RemoteCampaign {
        let script = match self.max_commands {
            Some(max) => script.truncated(max),
            None => script,
        };
        let mut campaign =
            RemoteCampaign::new(script, &self.tenant).on_disconnect(self.on_disconnect);
        if let Some(retry) = &self.retry {
            campaign = campaign.with_policy(retry.to_policy());
        }
        campaign
    }

    /// Parses one tenant entry of a scenario document. `ctx` is the
    /// dotted path of `value` for error messages.
    ///
    /// # Errors
    ///
    /// [`RadError::Spec`] on unknown fields, ill-typed values, an
    /// empty tenant name, or an unknown disconnect policy.
    pub fn from_json(value: &serde_json::Value, ctx: &str) -> Result<Self, RadError> {
        let map = spec::obj(value, ctx)?;
        spec::known_fields(map, ctx, Self::FIELDS)?;
        let tenant = spec::req_str(map, ctx, "tenant")?;
        if tenant.is_empty() {
            return Err(RadError::spec(
                spec::path(ctx, "tenant"),
                "must not be empty",
            ));
        }
        let max_commands = match spec::opt_u64(map, ctx, "max_commands")? {
            None => None,
            Some(n) => Some(usize::try_from(n).map_err(|_| {
                RadError::spec(spec::path(ctx, "max_commands"), "exceeds usize range")
            })?),
        };
        let retry = match map.get("retry") {
            None | Some(serde_json::Value::Null) => None,
            Some(v) => Some(rad_middlebox::rpc::RetrySpec::from_json(
                v,
                &spec::path(ctx, "retry"),
            )?),
        };
        let on_disconnect = match spec::opt_str(map, ctx, "on_disconnect")? {
            None | Some("fail") => DisconnectPolicy::Fail,
            Some("degrade") => DisconnectPolicy::Degrade,
            Some(other) => {
                return Err(RadError::spec(
                    spec::path(ctx, "on_disconnect"),
                    format!("unknown policy `{other}` (accepted: fail, degrade)"),
                ))
            }
        };
        Ok(TenantSpec {
            tenant: tenant.to_string(),
            max_commands,
            retry,
            on_disconnect,
        })
    }

    /// Serializes the spec back to its JSON form. Optional sections
    /// are omitted when absent.
    pub fn to_json(&self) -> serde_json::Value {
        let mut map = serde_json::Map::new();
        map.insert(
            "tenant".into(),
            serde_json::Value::from(self.tenant.clone()),
        );
        if let Some(max) = self.max_commands {
            map.insert("max_commands".into(), serde_json::Value::from(max as u64));
        }
        if let Some(retry) = &self.retry {
            map.insert("retry".into(), retry.to_json());
        }
        map.insert(
            "on_disconnect".into(),
            serde_json::Value::from(match self.on_disconnect {
                DisconnectPolicy::Fail => "fail",
                DisconnectPolicy::Degrade => "degrade",
            }),
        );
        serde_json::Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rad_core::CommandType;
    use rad_middlebox::server::{LabService, ServerConfig};

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            initial_backoff: Duration::from_millis(1),
            backoff_factor: 2,
            attempt_timeout: Duration::from_millis(250),
            deadline: Duration::from_secs(5),
            ..RetryPolicy::default()
        }
        .with_jitter(7, 500)
    }

    fn tiny_script() -> CampaignScript {
        CampaignScript::from_steps(vec![
            ScriptStep::Begin {
                run: 1,
                procedure: ProcedureKind::JoystickMovements,
                label: Label::Benign,
            },
            ScriptStep::Command(Command::nullary(CommandType::InitC9)),
            ScriptStep::Command(Command::nullary(CommandType::Home)),
            ScriptStep::Command(Command::nullary(CommandType::Mvng)),
            ScriptStep::End,
        ])
    }

    #[test]
    fn borrowed_issue_frame_serializes_identically() {
        let command = Command::new(
            CommandType::Move,
            vec![Value::Float(1.5), Value::Str("axis".into())],
        );
        let borrowed = serde_json::to_vec(&IssueFrameRef {
            id: 7,
            deadline_ms: 250,
            command: &command,
        })
        .unwrap();
        let owned = serde_json::to_vec(&WireFrame {
            id: 7,
            body: WireRequest::Issue {
                deadline_ms: 250,
                command: command.clone(),
            },
        })
        .unwrap();
        assert_eq!(borrowed, owned, "borrowed frame must match the derive");
    }

    #[test]
    fn pipelined_binary_drive_matches_lock_step() {
        let config = ServerConfig::default();
        let server = LabService::new(config.clone())
            .serve_tcp("127.0.0.1:0")
            .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let lock_step = RemoteCampaign::new(tiny_script(), "json")
            .with_policy(fast_policy())
            .drive(rad_middlebox::SocketTransport::connect_tcp(&addr).unwrap())
            .unwrap();
        let pipelined = RemoteCampaign::new(tiny_script(), "binary")
            .with_policy(fast_policy())
            .with_codec(WireCodecKind::Binary)
            .with_pipeline_depth(8)
            .drive(rad_middlebox::SocketTransport::connect_tcp(&addr).unwrap())
            .unwrap();
        assert_eq!(pipelined.executed, lock_step.executed);
        assert!(pipelined.completed && lock_step.completed);
        let report = server.drain().unwrap();
        let issues: Vec<u64> = report.tenants.iter().map(|t| t.issues).collect();
        assert_eq!(issues, vec![3, 3], "both drives executed every command");
    }

    #[test]
    fn pipelined_drive_resumes_from_the_cursor() {
        let server = LabService::new(ServerConfig::default())
            .serve_tcp("127.0.0.1:0")
            .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let script = tiny_script();
        let prefix = RemoteCampaign::new(script.clone().truncated(2), "t")
            .with_policy(fast_policy())
            .with_codec(WireCodecKind::Binary)
            .with_pipeline_depth(4);
        let first = prefix
            .drive(rad_middlebox::SocketTransport::connect_tcp(&addr).unwrap())
            .unwrap();
        assert_eq!(first.executed, 2);
        let full = RemoteCampaign::new(script, "t")
            .with_policy(fast_policy())
            .with_codec(WireCodecKind::Binary)
            .with_pipeline_depth(4);
        let second = full
            .resume_from(rad_middlebox::SocketTransport::connect_tcp(&addr).unwrap())
            .unwrap();
        assert_eq!(second.resumed_at, 2);
        assert_eq!(second.executed, 1, "only the unexecuted suffix runs");
        let report = server.drain().unwrap();
        assert_eq!(report.tenants[0].issues, 3, "no overlap, no loss");
    }

    #[test]
    fn pipelined_degrade_records_gaps_for_the_unresolved_tail() {
        use std::sync::Arc;

        use rad_middlebox::{FaultPlan, FaultProfile, FaultStats, Faulty, Lane, SocketTransport};

        let server = LabService::new(ServerConfig::default())
            .serve_tcp("127.0.0.1:0")
            .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        // The link dies after 2 sent chunks: Hello and BeginRun get
        // through; the whole pipelined command batch is unresolved and
        // degrades into client-side gaps.
        let plan = Arc::new(FaultPlan::new(1, FaultProfile::disconnect_after(2)));
        let transport = Faulty::new(
            SocketTransport::connect_tcp(&addr).unwrap(),
            plan,
            Lane::Request,
            FaultStats::new(),
        );
        let report = RemoteCampaign::new(tiny_script(), "t")
            .with_policy(fast_policy())
            .with_codec(WireCodecKind::Binary)
            .with_pipeline_depth(8)
            .on_disconnect(DisconnectPolicy::Degrade)
            .drive(transport)
            .unwrap();
        assert!(report.completed, "degraded mode finishes the script");
        assert_eq!(report.executed, 0, "no command resolved remotely");
        assert_eq!(report.gaps.len(), 3, "every command is gap-marked");
        assert!(report.gaps.iter().all(|g| g.reason == GAP_REASON));
        assert!(report.gaps.iter().all(|g| g.run_id == Some(RunId(1))));
    }

    #[test]
    fn script_extraction_is_deterministic_and_run_bracketed() {
        let a = CampaignScript::supervised(11);
        let b = CampaignScript::supervised(11);
        assert_eq!(a, b, "same seed, same script");
        assert!(a.command_count() > 100, "supervised campaign is nontrivial");
        // Every Begin has a matching End and commands only appear
        // between them or outside any run.
        let mut depth = 0i32;
        for step in a.steps() {
            match step {
                ScriptStep::Begin { .. } => {
                    depth += 1;
                    assert_eq!(depth, 1, "runs never nest");
                }
                ScriptStep::End => {
                    depth -= 1;
                    assert_eq!(depth, 0);
                }
                ScriptStep::Command(_) => {}
            }
        }
        assert_eq!(depth, 0, "every run closes");
    }

    #[test]
    fn truncation_counts_commands_not_steps() {
        let script = tiny_script().truncated(2);
        assert_eq!(script.command_count(), 2);
        assert!(matches!(script.steps()[0], ScriptStep::Begin { .. }));
        assert_eq!(script.steps().len(), 3, "Begin + 2 commands");
    }

    #[test]
    fn drive_and_resume_split_the_script_without_overlap() {
        let server = LabService::new(ServerConfig::default())
            .serve_tcp("127.0.0.1:0")
            .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let script = tiny_script();
        // First session runs a 2-command prefix (simulating a kill
        // right after).
        let prefix =
            RemoteCampaign::new(script.clone().truncated(2), "t").with_policy(fast_policy());
        let transport = rad_middlebox::SocketTransport::connect_tcp(&addr).unwrap();
        let first = prefix.drive(transport).unwrap();
        assert_eq!(first.executed, 2);
        assert_eq!(first.resumed_at, 0);
        assert!(first.completed);
        // Second session resumes the full script: skips 2, runs 1.
        let full = RemoteCampaign::new(script, "t").with_policy(fast_policy());
        let transport = rad_middlebox::SocketTransport::connect_tcp(&addr).unwrap();
        let second = full.resume_from(transport).unwrap();
        assert_eq!(second.resumed_at, 2);
        assert_eq!(second.executed, 1, "only the unexecuted suffix runs");
        assert!(second.completed);
        let report = server.drain().unwrap();
        assert_eq!(report.tenants[0].issues, 3, "no overlap, no loss");
    }

    #[test]
    fn degrade_policy_records_client_side_gaps_with_run_attribution() {
        use std::sync::Arc;

        use rad_middlebox::{FaultPlan, FaultProfile, FaultStats, Faulty, Lane, SocketTransport};

        let server = LabService::new(ServerConfig::default())
            .serve_tcp("127.0.0.1:0")
            .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        // The client-side link dies deterministically after 3 sent
        // chunks: Hello, BeginRun, and the first Issue get through;
        // the remaining two commands degrade into client-side gaps.
        let plan = Arc::new(FaultPlan::new(1, FaultProfile::disconnect_after(3)));
        let transport = Faulty::new(
            SocketTransport::connect_tcp(&addr).unwrap(),
            plan,
            Lane::Request,
            FaultStats::new(),
        );
        let report = RemoteCampaign::new(tiny_script(), "t")
            .with_policy(fast_policy())
            .on_disconnect(DisconnectPolicy::Degrade)
            .drive(transport)
            .unwrap();
        assert!(report.completed, "degraded mode finishes the script");
        assert_eq!(report.executed, 1, "one command made it out remotely");
        assert_eq!(report.gaps.len(), 2, "the rest are gap-marked");
        assert!(report.gaps.iter().all(|g| g.reason == GAP_REASON));
        assert!(report.gaps.iter().all(|g| g.run_id == Some(RunId(1))));
        assert!(
            report.gaps[0].timestamp < report.gaps[1].timestamp,
            "client-side gap clock is monotone"
        );
        // The server never saw the degraded commands: its tenant count
        // stops at what was executed remotely.
        let drained = server.drain().unwrap();
        assert_eq!(drained.tenants[0].issues, 1);
    }

    #[test]
    fn fail_policy_surfaces_the_error_and_resume_completes() {
        use std::sync::Arc;

        use rad_middlebox::{FaultPlan, FaultProfile, FaultStats, Faulty, Lane, SocketTransport};

        let server = LabService::new(ServerConfig::default())
            .serve_tcp("127.0.0.1:0")
            .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let campaign = RemoteCampaign::new(tiny_script(), "t").with_policy(fast_policy());
        // Kill the link after 3 chunks (mid-campaign, inside run 1).
        let plan = Arc::new(FaultPlan::new(1, FaultProfile::disconnect_after(3)));
        let dying = Faulty::new(
            SocketTransport::connect_tcp(&addr).unwrap(),
            plan,
            Lane::Request,
            FaultStats::new(),
        );
        let first = campaign.drive(dying).unwrap();
        assert!(!first.completed);
        assert!(first.error.is_some(), "Fail policy surfaces the error");
        assert_eq!(first.executed, 1);
        // Reconnect over a clean link: resume_from skips the executed
        // prefix (server cursor = 1) and finishes the script.
        let clean = SocketTransport::connect_tcp(&addr).unwrap();
        let second = campaign.resume_from(clean).unwrap();
        assert!(second.completed);
        assert_eq!(second.resumed_at, 1);
        assert_eq!(second.executed, 2);
        let drained = server.drain().unwrap();
        assert_eq!(drained.tenants[0].issues, 3, "no loss, no double execution");
    }
}
