//! Workload generation: the procedures of §IV and the three-month
//! campaign behind RAD.
//!
//! - [`session`] — the glue layer between procedure scripts and the
//!   middlebox: busy-poll loops (`MVNG`, `Q`), power-monitored UR3e
//!   moves, operator think time.
//! - [`procedures`] — P1 (Automated Solubility with N9), P2 (with N9
//!   and UR3e), P3 (Crystal Solubility), P4 (joystick), P5/P6 (the
//!   velocity and payload power experiments), each with the run
//!   variants §V narrates (the joystick-heavy run 12, the crashes of
//!   runs 16/17/22, the operator stop of run 18).
//! - [`campaign`] — the synthesizer that reproduces the 25 supervised
//!   runs plus the unsupervised long tail with Fig. 5(a)'s per-device
//!   trace mix.
//! - [`remote`] — the campaign-over-socket driver: replays a seeded
//!   campaign script against a live lab service over any transport,
//!   with jittered retries, kill-and-reconnect resume, and degraded
//!   mode ([`rad_core::TraceGap`] per command) when the link dies.
//! - [`scenario`] — the declarative plane: whole campaigns as strict
//!   JSON documents ([`ScenarioSpec`]), executed headless by
//!   [`run_scenario`] and the `rad` binary, with golden parity pinning
//!   spec-built campaigns byte-identical to hand-wired ones.
//! - [`cli`] — the minimal argv parsing the `rad` and `radd` binaries
//!   share.
//!
//! # Examples
//!
//! ```
//! use rad_workloads::CampaignBuilder;
//!
//! let dataset = CampaignBuilder::new(7).supervised_only().build();
//! assert_eq!(dataset.supervised_runs().len(), 25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod campaign;
pub mod cli;
pub mod detect;
pub mod procedures;
pub mod remote;
pub mod scenario;
pub mod session;

pub use attacks::{AttackKind, AttackTrace};
pub use campaign::{CampaignBuilder, CampaignDataset, CampaignSpec, ProcedureRun};
pub use detect::{
    benchmark_streaming_detector, detect_campaign, detect_campaign_spec, detect_segments,
    detect_segments_spec, export_detected, fit_detector, DetectSpec, DetectionOutcome,
    PowerAlertConfig,
};
pub use procedures::{P1Variant, P2Variant, P3Variant, SOLIDS};
pub use remote::{
    CampaignScript, DisconnectPolicy, DriveReport, RemoteCampaign, RemoteSession, ScriptStep,
    TenantSpec,
};
pub use scenario::{run_scenario, RunOptions, ScenarioReport, ScenarioSpec, TransportSpec};
pub use session::{RunEnd, Session};
