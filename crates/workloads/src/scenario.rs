//! The declarative scenario plane: whole campaigns as JSON documents.
//!
//! A scenario document names everything a campaign run needs — seed,
//! scale, fault/crash plans, streaming-detector stack, transport, and
//! replay window — so the scenario matrix grows by committing files,
//! not by writing Rust. [`ScenarioSpec`] is the parsed form;
//! [`run_scenario`] executes one headless and returns a
//! [`ScenarioReport`] (the per-scenario bench JSON the CI matrix
//! uploads). The `rad` binary is a thin shell around these two.
//!
//! Parsing is strict everywhere: unknown fields are rejected with
//! their dotted path, seeds must be non-negative integers, and
//! probabilities are range-checked — see [`rad_core::spec`]. A
//! spec-built campaign is *the same code path* as a hand-wired one
//! ([`CampaignBuilder::from_spec`] feeds the same `CampaignSpec` the
//! setters populate), which is what the golden parity suite pins.
//!
//! # Examples
//!
//! ```
//! use rad_workloads::scenario::ScenarioSpec;
//!
//! let spec = ScenarioSpec::from_json_str(
//!     r#"{
//!         "name": "smoke",
//!         "seed": 7,
//!         "campaign": {"supervised_only": true}
//!     }"#,
//! )?;
//! assert_eq!(spec.name, "smoke");
//! assert!(!spec.fillers);
//! // Canonical serialization round-trips losslessly.
//! let again = ScenarioSpec::from_json_str(&spec.to_json_string())?;
//! assert_eq!(spec, again);
//! # Ok::<(), rad_core::RadError>(())
//! ```

use std::path::Path;
use std::time::Instant;

use rad_core::{spec, RadError};
use rad_middlebox::server::SocketTransport;
use rad_middlebox::{FaultSpec, WireCodecKind};
use rad_store::export::export_rad_alerted;
use rad_store::segment::{SegmentOptions, SegmentSet, SegmentWriter};
use rad_store::DurableSpec;
use serde_json::{Map, Value as Json};

use crate::campaign::{CampaignBuilder, CampaignSpec};
use crate::detect::{detect_campaign_spec, fit_detector, DetectSpec};
use crate::remote::{CampaignScript, DriveReport, TenantSpec};

/// How a scenario reaches its lab devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMode {
    /// Simulate in this process — the default, and the only mode that
    /// yields a local dataset/export bundle.
    InProcess,
    /// Replay the campaign script against a live `radd` server over
    /// TCP.
    Tcp,
    /// Replay over a Unix-domain socket.
    Unix,
}

/// The `transport` section of a scenario document.
///
/// ```json
/// {"mode": "tcp", "addr": "127.0.0.1:7171", "tenants": [{"tenant": "alice"}]}
/// ```
///
/// Absent, the scenario runs in-process. Socket modes require at
/// least one [`TenantSpec`]; `addr` (a TCP address or a socket path)
/// may be omitted and supplied at run time instead (`rad run --tcp` /
/// `--unix`).
#[derive(Debug, Clone, PartialEq)]
pub struct TransportSpec {
    /// How the campaign reaches its devices.
    pub mode: TransportMode,
    /// TCP address or Unix socket path, when pinned by the document.
    pub addr: Option<String>,
    /// Tenants to drive over the wire (socket modes only).
    pub tenants: Vec<TenantSpec>,
    /// Data-plane codec for the issue hot path (`"json"` default,
    /// `"binary"` for the columnar frame encoding; socket modes only).
    pub codec: WireCodecKind,
    /// In-flight request window for the issue hot path (socket modes
    /// only; 1 — lock-step — when omitted).
    pub pipeline_depth: Option<usize>,
}

impl TransportSpec {
    const FIELDS: &'static [&'static str] = &["mode", "addr", "tenants", "codec", "pipeline_depth"];

    fn in_process() -> Self {
        TransportSpec {
            mode: TransportMode::InProcess,
            addr: None,
            tenants: Vec::new(),
            codec: WireCodecKind::Json,
            pipeline_depth: None,
        }
    }

    fn from_json(value: &Json, ctx: &str) -> Result<Self, RadError> {
        let map = spec::obj(value, ctx)?;
        spec::known_fields(map, ctx, Self::FIELDS)?;
        let mode = match spec::opt_str(map, ctx, "mode")? {
            None | Some("in_process") => TransportMode::InProcess,
            Some("tcp") => TransportMode::Tcp,
            Some("unix") => TransportMode::Unix,
            Some(other) => {
                return Err(RadError::spec(
                    spec::path(ctx, "mode"),
                    format!("unknown mode `{other}` (accepted: in_process, tcp, unix)"),
                ))
            }
        };
        let addr = spec::opt_str(map, ctx, "addr")?.map(str::to_string);
        let tenants = match map.get("tenants") {
            None | Some(Json::Null) => Vec::new(),
            Some(v) => {
                let tctx = spec::path(ctx, "tenants");
                let list = v
                    .as_array()
                    .ok_or_else(|| RadError::spec(&tctx, format!("expected an array, got {v}")))?;
                list.iter()
                    .enumerate()
                    .map(|(i, t)| TenantSpec::from_json(t, &format!("{tctx}[{i}]")))
                    .collect::<Result<Vec<_>, _>>()?
            }
        };
        let codec = match spec::opt_str(map, ctx, "codec")? {
            None => WireCodecKind::Json,
            Some(name) => WireCodecKind::from_name(name).ok_or_else(|| {
                RadError::spec(
                    spec::path(ctx, "codec"),
                    format!("unknown codec `{name}` (accepted: json, binary)"),
                )
            })?,
        };
        let pipeline_depth = match spec::opt_u64(map, ctx, "pipeline_depth")? {
            None => None,
            Some(0) => {
                return Err(RadError::spec(
                    spec::path(ctx, "pipeline_depth"),
                    "must be at least 1",
                ))
            }
            Some(n) => Some(usize::try_from(n).map_err(|_| {
                RadError::spec(spec::path(ctx, "pipeline_depth"), "exceeds usize range")
            })?),
        };
        match mode {
            TransportMode::InProcess => {
                if !tenants.is_empty() {
                    return Err(RadError::spec(
                        spec::path(ctx, "tenants"),
                        "tenants require a socket mode (tcp or unix)",
                    ));
                }
                if addr.is_some() {
                    return Err(RadError::spec(
                        spec::path(ctx, "addr"),
                        "addr requires a socket mode (tcp or unix)",
                    ));
                }
                if codec != WireCodecKind::Json {
                    return Err(RadError::spec(
                        spec::path(ctx, "codec"),
                        "codec requires a socket mode (tcp or unix)",
                    ));
                }
                if pipeline_depth.is_some() {
                    return Err(RadError::spec(
                        spec::path(ctx, "pipeline_depth"),
                        "pipeline_depth requires a socket mode (tcp or unix)",
                    ));
                }
            }
            TransportMode::Tcp | TransportMode::Unix => {
                if tenants.is_empty() {
                    return Err(RadError::spec(
                        spec::path(ctx, "tenants"),
                        "socket modes require at least one tenant",
                    ));
                }
            }
        }
        Ok(TransportSpec {
            mode,
            addr,
            tenants,
            codec,
            pipeline_depth,
        })
    }

    fn to_json(&self) -> Json {
        let mut map = Map::new();
        map.insert(
            "mode".into(),
            Json::from(match self.mode {
                TransportMode::InProcess => "in_process",
                TransportMode::Tcp => "tcp",
                TransportMode::Unix => "unix",
            }),
        );
        if let Some(addr) = &self.addr {
            map.insert("addr".into(), Json::from(addr.clone()));
        }
        if !self.tenants.is_empty() {
            map.insert(
                "tenants".into(),
                Json::Array(self.tenants.iter().map(TenantSpec::to_json).collect()),
            );
        }
        if self.codec != WireCodecKind::Json {
            map.insert("codec".into(), Json::from(self.codec.as_name()));
        }
        if let Some(depth) = self.pipeline_depth {
            map.insert("pipeline_depth".into(), Json::from(depth as u64));
        }
        Json::Object(map)
    }
}

/// The `replay` section: after the campaign, seal it into columnar
/// segments and scan back only the rows whose timestamp falls in the
/// window — [`SegmentSet::scan_time_range`] as a scenario step.
///
/// ```json
/// {"window": {"start_us": 0, "end_us": 60000000}}
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplaySpec {
    /// Window start, microseconds (inclusive).
    pub start_us: u64,
    /// Window end, microseconds (inclusive).
    pub end_us: u64,
}

impl ReplaySpec {
    fn from_json(value: &Json, ctx: &str) -> Result<Self, RadError> {
        let map = spec::obj(value, ctx)?;
        spec::known_fields(map, ctx, &["window"])?;
        let wctx = spec::path(ctx, "window");
        let wmap = spec::obj(spec::req(map, ctx, "window")?, &wctx)?;
        spec::known_fields(wmap, &wctx, &["start_us", "end_us"])?;
        let start_us = spec::req_u64(wmap, &wctx, "start_us")?;
        let end_us = spec::req_u64(wmap, &wctx, "end_us")?;
        if start_us > end_us {
            return Err(RadError::spec(
                wctx,
                format!("start_us {start_us} exceeds end_us {end_us}"),
            ));
        }
        Ok(ReplaySpec { start_us, end_us })
    }

    fn to_json(self) -> Json {
        let mut wmap = Map::new();
        wmap.insert("start_us".into(), Json::from(self.start_us));
        wmap.insert("end_us".into(), Json::from(self.end_us));
        let mut map = Map::new();
        map.insert("window".into(), Json::Object(wmap));
        Json::Object(map)
    }
}

/// A parsed scenario document — everything one campaign run needs.
///
/// See the module docs for the schema; DESIGN.md §14 is the reference.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (stamped on reports and bench JSON).
    pub name: String,
    /// Master seed of the campaign.
    pub seed: u64,
    /// Unsupervised-filler scale factor.
    pub scale: f64,
    /// Whether the unsupervised filler runs.
    pub fillers: bool,
    /// Whether the P5/P6 power experiments run.
    pub power_experiments: bool,
    /// Seeded wire-fault schedule, if any.
    pub faults: Option<FaultSpec>,
    /// Durable persistence (and optional crash injection), if any.
    pub durable: Option<DurableSpec>,
    /// Streaming detection stack, if any.
    pub detect: Option<DetectSpec>,
    /// How the campaign reaches its devices.
    pub transport: TransportSpec,
    /// Post-campaign time-window replay, if any.
    pub replay: Option<ReplaySpec>,
}

impl ScenarioSpec {
    const FIELDS: &'static [&'static str] = &[
        "name",
        "seed",
        "campaign",
        "faults",
        "durable",
        "detect",
        "transport",
        "replay",
    ];
    const CAMPAIGN_FIELDS: &'static [&'static str] =
        &["supervised_only", "scale", "fillers", "power_experiments"];

    /// Parses a scenario document from its JSON text.
    ///
    /// # Errors
    ///
    /// [`RadError::Spec`] on malformed JSON or any schema violation —
    /// every error names the dotted path of the offending field.
    pub fn from_json_str(text: &str) -> Result<Self, RadError> {
        let value: Json = serde_json::from_str(text)
            .map_err(|e| RadError::spec("", format!("not valid JSON: {e:?}")))?;
        Self::from_json(&value)
    }

    /// Parses a scenario document from a JSON value.
    ///
    /// # Errors
    ///
    /// [`RadError::Spec`] on any schema violation.
    pub fn from_json(value: &Json) -> Result<Self, RadError> {
        let map = spec::obj(value, "")?;
        spec::known_fields(map, "", Self::FIELDS)?;
        let name = spec::req_str(map, "", "name")?;
        if name.is_empty() {
            return Err(RadError::spec("name", "must not be empty"));
        }
        let seed = spec::req_u64(map, "", "seed")?;

        let defaults = CampaignSpec::new(seed);
        let (mut scale, mut fillers, mut power_experiments) =
            (defaults.scale, defaults.fillers, defaults.power_experiments);
        if let Some(c) = map.get("campaign").filter(|v| !v.is_null()) {
            let cctx = "campaign";
            let cmap = spec::obj(c, cctx)?;
            spec::known_fields(cmap, cctx, Self::CAMPAIGN_FIELDS)?;
            let supervised_only = spec::opt_bool(cmap, cctx, "supervised_only")?.unwrap_or(false);
            if supervised_only {
                // The shorthand IS the fillers/power toggle; naming
                // both invites silent contradiction.
                for key in ["fillers", "power_experiments"] {
                    if cmap.get(key).is_some_and(|v| !v.is_null()) {
                        return Err(RadError::spec(
                            spec::path(cctx, key),
                            "conflicts with supervised_only",
                        ));
                    }
                }
                fillers = false;
                power_experiments = false;
            } else {
                fillers = spec::opt_bool(cmap, cctx, "fillers")?.unwrap_or(fillers);
                power_experiments =
                    spec::opt_bool(cmap, cctx, "power_experiments")?.unwrap_or(power_experiments);
            }
            if let Some(s) = spec::opt_f64(cmap, cctx, "scale")? {
                if !s.is_finite() || s <= 0.0 {
                    return Err(RadError::spec(
                        spec::path(cctx, "scale"),
                        format!("scale {s} must be finite and positive"),
                    ));
                }
                scale = s;
            }
        }

        let faults = match map.get("faults") {
            None | Some(Json::Null) => None,
            Some(v) => Some(FaultSpec::from_json(v, "faults", seed)?),
        };
        let durable = match map.get("durable") {
            None | Some(Json::Null) => None,
            Some(v) => Some(DurableSpec::from_json(v, "durable")?),
        };
        let detect = match map.get("detect") {
            None | Some(Json::Null) => None,
            Some(v) => Some(DetectSpec::from_json(v, "detect")?),
        };
        let transport = match map.get("transport") {
            None | Some(Json::Null) => TransportSpec::in_process(),
            Some(v) => TransportSpec::from_json(v, "transport")?,
        };
        let replay = match map.get("replay") {
            None | Some(Json::Null) => None,
            Some(v) => Some(ReplaySpec::from_json(v, "replay")?),
        };
        if transport.mode != TransportMode::InProcess {
            // A socket scenario's data lives on the server; these
            // sections would silently do nothing over there.
            for (key, present) in [
                ("durable", durable.is_some()),
                ("detect", detect.is_some()),
                ("replay", replay.is_some()),
            ] {
                if present {
                    return Err(RadError::spec(
                        key,
                        "only in_process scenarios run this section locally",
                    ));
                }
            }
        }
        Ok(ScenarioSpec {
            name: name.to_string(),
            seed,
            scale,
            fillers,
            power_experiments,
            faults,
            durable,
            detect,
            transport,
            replay,
        })
    }

    /// Serializes the spec to its canonical JSON value: the
    /// `supervised_only` shorthand is expanded, every campaign toggle
    /// is explicit, and optional sections appear only when set —
    /// `from_json(to_json(s)) == s` always.
    pub fn to_json(&self) -> Json {
        let mut campaign = Map::new();
        campaign.insert("scale".into(), Json::from(self.scale));
        campaign.insert("fillers".into(), Json::from(self.fillers));
        campaign.insert(
            "power_experiments".into(),
            Json::from(self.power_experiments),
        );
        let mut map = Map::new();
        map.insert("name".into(), Json::from(self.name.clone()));
        map.insert("seed".into(), Json::from(self.seed));
        map.insert("campaign".into(), Json::Object(campaign));
        if let Some(faults) = &self.faults {
            map.insert("faults".into(), faults.to_json());
        }
        if let Some(durable) = &self.durable {
            map.insert("durable".into(), durable.to_json());
        }
        if let Some(detect) = &self.detect {
            map.insert("detect".into(), detect.to_json());
        }
        if self.transport != TransportSpec::in_process() {
            map.insert("transport".into(), self.transport.to_json());
        }
        if let Some(replay) = &self.replay {
            map.insert("replay".into(), replay.to_json());
        }
        Json::Object(map)
    }

    /// [`ScenarioSpec::to_json`] pretty-printed.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(&self.to_json()).unwrap_or_default()
    }

    /// The campaign configuration this scenario describes — feed it to
    /// [`CampaignBuilder::from_spec`].
    pub fn to_campaign_spec(&self) -> CampaignSpec {
        CampaignSpec {
            seed: self.seed,
            scale: self.scale,
            fillers: self.fillers,
            power_experiments: self.power_experiments,
            fault_plan: self.faults.as_ref().map(FaultSpec::to_plan),
            crash_plan: None,
            durable_options: self.durable.as_ref().map(DurableSpec::to_options),
        }
    }

    /// Whether the scenario's durable section schedules a crash — the
    /// kill/resume scenarios the runner completes via
    /// [`CampaignBuilder::resume_from`].
    pub fn injects_crash(&self) -> bool {
        self.durable.as_ref().is_some_and(|d| d.crash.is_some())
    }
}

/// What one tenant's remote drive reported, named.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantOutcome {
    /// The tenant that drove.
    pub tenant: String,
    /// The drive's report.
    pub report: DriveReport,
}

/// Everything one scenario run produced — the per-scenario bench JSON.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Campaign seed.
    pub seed: u64,
    /// Trace objects in the dataset (in-process scenarios).
    pub traces: u64,
    /// Trace gaps recorded.
    pub gaps: u64,
    /// Supervised runs journaled.
    pub supervised_runs: u64,
    /// Whether a scheduled crash fired and the build was resumed.
    pub resumed_after_crash: bool,
    /// Alerts raised by the detection stack.
    pub alerts: u64,
    /// Files written to the export bundle (0 = no export requested).
    pub exported_files: u64,
    /// Rows inside the replay window, when a `replay` section ran.
    pub window_rows: Option<u64>,
    /// Segments the windowed scan pruned without opening, when a
    /// `replay` section ran.
    pub window_pruned: Option<u64>,
    /// Per-tenant drive outcomes (socket scenarios).
    pub tenants: Vec<TenantOutcome>,
    /// Wall-clock milliseconds for the whole scenario.
    pub elapsed_ms: u64,
}

impl ScenarioReport {
    /// The report as the bench JSON object the CI matrix uploads.
    pub fn to_json(&self) -> Json {
        let mut map = Map::new();
        map.insert("name".into(), Json::from(self.name.clone()));
        map.insert("seed".into(), Json::from(self.seed));
        map.insert("traces".into(), Json::from(self.traces));
        map.insert("gaps".into(), Json::from(self.gaps));
        map.insert("supervised_runs".into(), Json::from(self.supervised_runs));
        map.insert(
            "resumed_after_crash".into(),
            Json::from(self.resumed_after_crash),
        );
        map.insert("alerts".into(), Json::from(self.alerts));
        map.insert("exported_files".into(), Json::from(self.exported_files));
        if let Some(rows) = self.window_rows {
            map.insert("window_rows".into(), Json::from(rows));
        }
        if let Some(pruned) = self.window_pruned {
            map.insert("window_pruned".into(), Json::from(pruned));
        }
        if !self.tenants.is_empty() {
            let tenants: Vec<Json> = self
                .tenants
                .iter()
                .map(|t| {
                    let mut tm = Map::new();
                    tm.insert("tenant".into(), Json::from(t.tenant.clone()));
                    tm.insert("executed".into(), Json::from(t.report.executed));
                    tm.insert("resumed_at".into(), Json::from(t.report.resumed_at));
                    tm.insert("gaps".into(), Json::from(t.report.gaps.len() as u64));
                    tm.insert("completed".into(), Json::from(t.report.completed));
                    Json::Object(tm)
                })
                .collect();
            map.insert("tenants".into(), Json::Array(tenants));
        }
        map.insert("elapsed_ms".into(), Json::from(self.elapsed_ms));
        Json::Object(map)
    }
}

/// Where a scenario run may write.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Export-bundle directory (in-process scenarios; `None` = no
    /// export). Durable/kill-resume scenarios persist their store
    /// under `<out>/store`, or a temp directory when no out dir is
    /// given.
    pub out_dir: Option<std::path::PathBuf>,
    /// Overrides the document's `transport.addr` (the `rad run --tcp`
    /// / `--unix` flags).
    pub addr_override: Option<String>,
}

/// Executes a scenario headless: build (or build-crash-resume) the
/// campaign, run the detection stack, write the export bundle, replay
/// the time window — or, for socket scenarios, drive every tenant's
/// script against the live server.
///
/// # Errors
///
/// Propagates build, detection, export, scan, and transport failures.
/// A socket scenario with neither a document `addr` nor an override
/// is a [`RadError::Spec`].
pub fn run_scenario(spec: &ScenarioSpec, options: &RunOptions) -> Result<ScenarioReport, RadError> {
    let started = Instant::now();
    let mut report = ScenarioReport {
        name: spec.name.clone(),
        seed: spec.seed,
        ..ScenarioReport::default()
    };
    match spec.transport.mode {
        TransportMode::InProcess => run_in_process(spec, options, &mut report)?,
        TransportMode::Tcp | TransportMode::Unix => run_remote(spec, options, &mut report)?,
    }
    report.elapsed_ms = started.elapsed().as_millis() as u64;
    Ok(report)
}

fn run_in_process(
    spec: &ScenarioSpec,
    options: &RunOptions,
    report: &mut ScenarioReport,
) -> Result<(), RadError> {
    let builder = CampaignBuilder::from_spec(spec.to_campaign_spec());
    let dataset = if spec.durable.is_some() {
        let tmp;
        let store_dir = match &options.out_dir {
            Some(out) => out.join("store"),
            None => {
                tmp = std::env::temp_dir().join(format!(
                    "rad-scenario-{}-{}",
                    spec.name,
                    std::process::id()
                ));
                tmp.clone()
            }
        };
        let _ = std::fs::remove_dir_all(&store_dir);
        if spec.injects_crash() {
            // The scheduled crash kills the persisting build; a fresh
            // process (builder sans crash plan) recovers and finishes.
            match builder.build_resumable(&store_dir) {
                Ok(dataset) => dataset, // schedule never fired
                Err(_crash) => {
                    report.resumed_after_crash = true;
                    builder.resume_from(&store_dir)?
                }
            }
        } else {
            builder.build_resumable(&store_dir)?
        }
    } else {
        builder.build()
    };

    report.traces = dataset.command().traces().len() as u64;
    report.gaps = dataset.command().gaps().len() as u64;
    report.supervised_runs = dataset.supervised_runs().len() as u64;

    let alerts = match &spec.detect {
        Some(detect) => {
            let detector = fit_detector(&dataset, detect.perplexity.order)?;
            let outcome = detect_campaign_spec(&dataset, &detector, detect)?;
            outcome.alerts
        }
        None => Vec::new(),
    };
    report.alerts = alerts.len() as u64;

    if let Some(out) = &options.out_dir {
        let files = export_rad_alerted(dataset.command(), dataset.power(), &alerts, out, None)?;
        report.exported_files = files as u64;
    }

    if let Some(replay) = &spec.replay {
        let seg_dir = match &options.out_dir {
            Some(out) => out.join("segments"),
            None => std::env::temp_dir().join(format!(
                "rad-scenario-seg-{}-{}",
                spec.name,
                std::process::id()
            )),
        };
        let _ = std::fs::remove_dir_all(&seg_dir);
        let mut writer = SegmentWriter::create(&seg_dir, SegmentOptions::default())?;
        writer.seal_traces(dataset.command().batch())?;
        let set = SegmentSet::open(&seg_dir)?;
        let scan = set.scan_time_range(replay.start_us, replay.end_us)?;
        report.window_pruned = Some(scan.pruned() as u64);
        let mut scan = scan;
        let mut rows = 0u64;
        while let Some(batch) = rad_core::TraceSource::next_batch(&mut scan)? {
            rows += batch.len() as u64;
        }
        report.window_rows = Some(rows);
        if options.out_dir.is_none() {
            let _ = std::fs::remove_dir_all(&seg_dir);
        }
    }
    Ok(())
}

fn run_remote(
    spec: &ScenarioSpec,
    options: &RunOptions,
    report: &mut ScenarioReport,
) -> Result<(), RadError> {
    let addr = options
        .addr_override
        .clone()
        .or_else(|| spec.transport.addr.clone())
        .ok_or_else(|| {
            RadError::spec(
                "transport.addr",
                "socket scenario needs an address (in the document or via --tcp/--unix)",
            )
        })?;
    let script = CampaignScript::supervised(spec.seed);
    for tenant in &spec.transport.tenants {
        let transport = match spec.transport.mode {
            TransportMode::Tcp => SocketTransport::connect_tcp(&addr)?,
            TransportMode::Unix => SocketTransport::connect_unix(Path::new(&addr))?,
            TransportMode::InProcess => unreachable!("run_remote is socket-only"),
        };
        let mut campaign = tenant
            .to_campaign(script.clone())
            .with_codec(spec.transport.codec);
        if let Some(depth) = spec.transport.pipeline_depth {
            campaign = campaign.with_pipeline_depth(depth);
        }
        let drive = campaign.resume_from(transport)?;
        report.tenants.push(TenantOutcome {
            tenant: tenant.tenant.clone(),
            report: drive,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal(text: &str) -> Result<ScenarioSpec, RadError> {
        ScenarioSpec::from_json_str(text)
    }

    #[test]
    fn minimal_document_takes_full_scale_defaults() {
        let spec = minimal(r#"{"name": "m", "seed": 3}"#).unwrap();
        assert_eq!(spec.seed, 3);
        assert!(spec.fillers && spec.power_experiments);
        assert_eq!(spec.scale, 1.0);
        assert_eq!(spec.transport.mode, TransportMode::InProcess);
    }

    #[test]
    fn unknown_top_level_field_is_rejected_with_its_path() {
        let err = minimal(r#"{"name": "m", "seed": 3, "sed": 1}"#).unwrap_err();
        assert!(
            matches!(err, RadError::Spec { ref field, .. } if field == "sed"),
            "{err}"
        );
    }

    #[test]
    fn supervised_only_conflicts_with_explicit_toggles() {
        let err = minimal(
            r#"{"name": "m", "seed": 3,
                "campaign": {"supervised_only": true, "fillers": true}}"#,
        )
        .unwrap_err();
        assert!(
            matches!(err, RadError::Spec { ref field, .. } if field == "campaign.fillers"),
            "{err}"
        );
    }

    #[test]
    fn socket_mode_requires_tenants_and_rejects_local_sections() {
        let err = minimal(r#"{"name": "m", "seed": 3, "transport": {"mode": "tcp"}}"#).unwrap_err();
        assert!(err.to_string().contains("at least one tenant"), "{err}");

        let err = minimal(
            r#"{"name": "m", "seed": 3,
                "detect": {"perplexity": {"order": 2}},
                "transport": {"mode": "tcp", "tenants": [{"tenant": "a"}]}}"#,
        )
        .unwrap_err();
        assert!(
            matches!(err, RadError::Spec { ref field, .. } if field == "detect"),
            "{err}"
        );
    }

    #[test]
    fn canonical_serialization_round_trips() {
        let text = r#"{
            "name": "full",
            "seed": 21,
            "campaign": {"scale": 0.05, "fillers": true, "power_experiments": false},
            "faults": {"profile": {"drop": 0.1, "delay": 0.2, "delay_chunks": 3}},
            "durable": {"sync_every": 8,
                        "crash": {"at": {"site": "pre-fsync", "occurrence": 3}}},
            "detect": {"perplexity": {"order": 2,
                                      "policy": {"crossing": {"window": 16}},
                                      "threshold": {"fixed": 4.5}},
                       "power": {"lane": "robot_current", "rms_threshold": 0.8},
                       "chunk": 128},
            "replay": {"window": {"start_us": 0, "end_us": 1000000}}
        }"#;
        let spec = minimal(text).unwrap();
        let again = ScenarioSpec::from_json_str(&spec.to_json_string()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn spec_built_builder_matches_hand_wired_fingerprint() {
        let spec =
            minimal(r#"{"name": "m", "seed": 9, "campaign": {"supervised_only": true}}"#).unwrap();
        let from_spec = CampaignBuilder::from_spec(spec.to_campaign_spec());
        let hand = CampaignBuilder::new(9).supervised_only();
        assert_eq!(format!("{from_spec:?}"), format!("{hand:?}"));
    }

    #[test]
    fn in_process_scenario_runs_headless() {
        let spec = minimal(
            r#"{"name": "headless", "seed": 5,
                "campaign": {"supervised_only": true},
                "detect": {"perplexity": {"order": 2}},
                "replay": {"window": {"start_us": 0, "end_us": 18446744073709551615}}}"#,
        )
        .unwrap();
        let report = run_scenario(&spec, &RunOptions::default()).unwrap();
        assert_eq!(report.supervised_runs, 25);
        assert!(report.traces > 0);
        // The all-time window sees every sealed row.
        assert_eq!(report.window_rows, Some(report.traces));
    }
}
