//! Wiring the streaming detection plane to campaigns.
//!
//! The analysis crate provides the detector *stages*
//! ([`StreamingPerplexity`],
//! [`rad_analysis::streaming::StreamingPowerStats`]); this module
//! plugs them into the campaign artifacts: fit a detector from a
//! campaign's benign supervised runs, stream a finished campaign (or
//! its sealed segments) through the stages, and publish the export
//! bundle with the resulting `alerts.csv`. Replaying the in-memory
//! dataset and replaying the sealed segments walk the same rows in the
//! same order, so [`detect_campaign`] and [`detect_segments`] produce
//! identical alert sets — the conformance suite pins that.

use rad_analysis::detector::FittedDetector;
use rad_analysis::{
    AlertPolicy, PerplexitySpec, PowerStatsSpec, RecordingStats, RunScore, StreamingPerplexity,
    ThresholdSpec,
};
use rad_core::sink::SliceSource;
use rad_core::{
    spec, Alert, Command, CommandType, DeviceId, DeviceKind, Label, ProcedureKind, RadError, RunId,
    SimInstant, TraceId, TraceObject, TraceSink, TraceSource,
};
use rad_power::{BlockSource, PowerSink, RecordingMeta};
use rad_store::export::export_rad_alerted;
use rad_store::segment::SegmentSet;
use std::path::Path;

use crate::attacks::AttackTrace;
use crate::campaign::CampaignDataset;

/// How the power half of a detection pass is monitored.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerAlertConfig {
    /// Minimum prominence for the streaming peak counter.
    pub min_prominence: f64,
    /// RMS alarm threshold for the monitored lane. The default is
    /// `f64::INFINITY`: statistics are still collected per recording,
    /// but no power alert ever fires until a threshold is chosen.
    pub rms_threshold: f64,
}

impl Default for PowerAlertConfig {
    fn default() -> Self {
        PowerAlertConfig {
            min_prominence: 0.05,
            rms_threshold: f64::INFINITY,
        }
    }
}

/// The declarative form of one detection pass — the `detect` section
/// of a scenario document:
///
/// ```json
/// {
///   "perplexity": {"order": 2},
///   "power": {"lane": "robot_current", "rms_threshold": 0.6},
///   "chunk": 256
/// }
/// ```
///
/// `perplexity` is required (its `order` is the fit-time knob for
/// [`fit_detector`]); `power` defaults to the conventional
/// robot-current watch with [`PowerAlertConfig::default`]'s
/// prominence and an infinite (never-alarming) RMS threshold; `chunk`
/// defaults to [`rad_power::DEFAULT_CHUNK_TICKS`].
#[derive(Debug, Clone, PartialEq)]
pub struct DetectSpec {
    /// Trace-side perplexity stage configuration.
    pub perplexity: PerplexitySpec,
    /// Power-side statistics stage configuration.
    pub power: PowerStatsSpec,
    /// Rows/ticks per streamed batch.
    pub chunk: usize,
}

impl DetectSpec {
    const FIELDS: &'static [&'static str] = &["perplexity", "power", "chunk"];

    /// The default power watch: robot supply current, default
    /// prominence, alarm threshold disabled.
    fn default_power() -> PowerStatsSpec {
        let defaults = PowerAlertConfig::default();
        PowerStatsSpec {
            lane: rad_power::block::lane::ROBOT_CURRENT,
            min_prominence: defaults.min_prominence,
            rms_threshold: defaults.rms_threshold,
        }
    }

    /// Parses the `detect` section of a scenario document. `ctx` is
    /// the dotted path of `value` for error messages.
    ///
    /// # Errors
    ///
    /// [`RadError::Spec`] on unknown fields, ill-typed values, a
    /// missing `perplexity` section, or a zero `chunk`.
    pub fn from_json(value: &serde_json::Value, ctx: &str) -> Result<Self, RadError> {
        let map = spec::obj(value, ctx)?;
        spec::known_fields(map, ctx, Self::FIELDS)?;
        let perplexity = PerplexitySpec::from_json(
            spec::req(map, ctx, "perplexity")?,
            &spec::path(ctx, "perplexity"),
        )?;
        let power = match map.get("power") {
            None | Some(serde_json::Value::Null) => Self::default_power(),
            Some(v) => PowerStatsSpec::from_json(v, &spec::path(ctx, "power"))?,
        };
        let chunk =
            spec::opt_u64(map, ctx, "chunk")?.unwrap_or(rad_power::DEFAULT_CHUNK_TICKS as u64);
        if chunk == 0 {
            return Err(RadError::spec(
                spec::path(ctx, "chunk"),
                "must be at least 1",
            ));
        }
        let chunk = usize::try_from(chunk)
            .map_err(|_| RadError::spec(spec::path(ctx, "chunk"), "exceeds usize range"))?;
        Ok(DetectSpec {
            perplexity,
            power,
            chunk,
        })
    }

    /// Serializes the spec back to its JSON form, every field explicit.
    pub fn to_json(&self) -> serde_json::Value {
        let mut map = serde_json::Map::new();
        map.insert("perplexity".into(), self.perplexity.to_json());
        map.insert("power".into(), self.power.to_json());
        map.insert("chunk".into(), serde_json::Value::from(self.chunk as u64));
        serde_json::Value::Object(map)
    }
}

/// Everything one detection pass over a campaign produced.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionOutcome {
    /// Alerts raised, trace detectors first, then power.
    pub alerts: Vec<Alert>,
    /// Final per-run perplexity scores, in run-id order.
    pub runs: Vec<RunScore>,
    /// Per-recording power statistics, in recording order.
    pub recordings: Vec<RecordingStats>,
}

/// Fits a perplexity detector from a campaign's benign supervised
/// runs, splitting them interleaved into a training and a calibration
/// half (a tail split would leave whole procedures out of training and
/// inflate the Jenks threshold).
///
/// # Errors
///
/// Returns [`RadError::Analysis`] (via the underlying fit) when the
/// campaign holds too few benign supervised runs.
pub fn fit_detector(
    dataset: &CampaignDataset,
    order: usize,
) -> Result<FittedDetector<CommandType>, RadError> {
    let benign: Vec<Vec<CommandType>> = dataset
        .command()
        .supervised_sequences()
        .into_iter()
        .filter(|(meta, _)| !meta.label().is_anomalous())
        .map(|(_, seq)| seq)
        .collect();
    let train: Vec<Vec<CommandType>> = benign.iter().step_by(2).cloned().collect();
    let calibrate: Vec<Vec<CommandType>> = benign.iter().skip(1).step_by(2).cloned().collect();
    rad_analysis::PerplexityDetector::new(order).fit(&train, &calibrate)
}

/// Streams a finished campaign through the detection stages: every
/// trace through [`StreamingPerplexity`] (run-end policy — the batch
/// verdicts, bit for bit) and every power recording through
/// [`rad_analysis::streaming::StreamingPowerStats`], `chunk` rows/ticks
/// at a time.
///
/// # Errors
///
/// Propagates the first stage error.
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn detect_campaign(
    dataset: &CampaignDataset,
    detector: &FittedDetector<CommandType>,
    power: PowerAlertConfig,
    chunk: usize,
) -> Result<DetectionOutcome, RadError> {
    detect_campaign_spec(dataset, detector, &hand_wired_spec(power, chunk))
}

/// Lifts the hand-wired `(PowerAlertConfig, chunk)` signature into the
/// equivalent [`DetectSpec`]: run-end perplexity with the calibrated
/// threshold over the conventional robot-current watch. The spec's
/// `order` is irrelevant here — it only matters at [`fit_detector`]
/// time and the detector is already fitted.
fn hand_wired_spec(power: PowerAlertConfig, chunk: usize) -> DetectSpec {
    DetectSpec {
        perplexity: PerplexitySpec {
            order: 2,
            policy: AlertPolicy::RunEnd,
            threshold: ThresholdSpec::Calibrated,
        },
        power: PowerStatsSpec {
            lane: rad_power::block::lane::ROBOT_CURRENT,
            min_prominence: power.min_prominence,
            rms_threshold: power.rms_threshold,
        },
        chunk,
    }
}

/// [`detect_campaign`] with the stages built from a [`DetectSpec`] —
/// the scenario plane's detection path. The hand-wired entry points
/// are thin wrappers over this.
///
/// # Errors
///
/// Propagates the first stage error.
///
/// # Panics
///
/// Panics if `spec.chunk` is zero.
pub fn detect_campaign_spec(
    dataset: &CampaignDataset,
    detector: &FittedDetector<CommandType>,
    spec: &DetectSpec,
) -> Result<DetectionOutcome, RadError> {
    let mut stage = spec.perplexity.build(detector, Vec::new());
    let traces = dataset.command().traces();
    let mut source = SliceSource::new(&traces, spec.chunk);
    while let Some(batch) = source.next_batch()? {
        stage.accept(&batch)?;
    }
    stage.finish()?;
    let runs = stage.completed_runs().to_vec();
    let mut alerts = stage.into_sink();

    let mut watt = spec.power.build(Vec::new());
    for recording in dataset.power().recordings() {
        watt.begin_recording(&RecordingMeta {
            procedure: recording.procedure,
            run_id: recording.run_id,
            description: recording.description.clone(),
        })?;
        let mut blocks = BlockSource::new(recording.profile.block(), spec.chunk);
        while let Some(piece) = rad_power::PowerSource::next_block(&mut blocks)? {
            watt.accept(&piece)?;
        }
    }
    watt.finish()?;
    let recordings = watt.recordings().to_vec();
    alerts.extend(watt.into_sink());

    Ok(DetectionOutcome {
        alerts,
        runs,
        recordings,
    })
}

/// [`detect_campaign`] over sealed segments instead of the in-memory
/// dataset: the trace scan and the power recordings replay through the
/// same stages, in seal order. A campaign sealed in dataset order
/// produces an outcome identical to [`detect_campaign`] of the
/// dataset it came from.
///
/// # Errors
///
/// Propagates scan and stage errors, including
/// [`RadError::SegmentCorrupt`] on quarantined segments.
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn detect_segments(
    segments: &SegmentSet,
    detector: &FittedDetector<CommandType>,
    power: PowerAlertConfig,
    chunk: usize,
) -> Result<DetectionOutcome, RadError> {
    detect_segments_spec(segments, detector, &hand_wired_spec(power, chunk))
}

/// [`detect_segments`] with the stages built from a [`DetectSpec`] —
/// the scenario plane's replay-side detection path.
///
/// # Errors
///
/// Propagates scan and stage errors, including
/// [`RadError::SegmentCorrupt`] on quarantined segments.
///
/// # Panics
///
/// Panics if `spec.chunk` is zero.
pub fn detect_segments_spec(
    segments: &SegmentSet,
    detector: &FittedDetector<CommandType>,
    spec: &DetectSpec,
) -> Result<DetectionOutcome, RadError> {
    let mut stage = spec.perplexity.build(detector, Vec::new());
    let mut scan = segments.read_all()?;
    if let Some(q) = scan.quarantined().first() {
        return Err(RadError::SegmentCorrupt {
            segment: q.segment.clone(),
            offset: q.offset,
            reason: format!("cannot detect over a quarantined segment: {}", q.reason),
        });
    }
    while let Some(batch) = scan.next_batch()? {
        stage.accept(&batch)?;
    }
    stage.finish()?;
    let runs = stage.completed_runs().to_vec();
    let mut alerts = stage.into_sink();

    let mut watt = spec.power.build(Vec::new());
    segments
        .power_recordings()?
        .replay_into(&mut watt, spec.chunk)?;
    let recordings = watt.recordings().to_vec();
    alerts.extend(watt.into_sink());

    Ok(DetectionOutcome {
        alerts,
        runs,
        recordings,
    })
}

/// Finalizes a campaign into a published bundle with its detection
/// verdicts: streams the dataset through the detection stages and
/// writes the export with `alerts.csv` (and the manifest's alert
/// count) included. Returns the number of files written and the
/// outcome that was persisted.
///
/// # Errors
///
/// Propagates detection and export failures.
pub fn export_detected(
    dataset: &CampaignDataset,
    detector: &FittedDetector<CommandType>,
    power: PowerAlertConfig,
    dir: &Path,
) -> Result<(usize, DetectionOutcome), RadError> {
    let outcome = detect_campaign(dataset, detector, power, rad_power::DEFAULT_CHUNK_TICKS)?;
    let files = export_rad_alerted(
        dataset.command(),
        dataset.power(),
        &outcome.alerts,
        dir,
        None,
    )?;
    Ok((files, outcome))
}

/// Lifts bare command sequences into one-run-per-sequence trace
/// streams so they can drive the row-oriented streaming stages. Run
/// ids are assigned in order; the rows carry no ground-truth label —
/// the streaming stages never read one.
fn sequences_to_traces(sequences: &[Vec<CommandType>]) -> Vec<TraceObject> {
    let mut traces = Vec::new();
    let mut id = 0u64;
    for (run, sequence) in sequences.iter().enumerate() {
        for &ct in sequence {
            traces.push(
                TraceObject::builder(
                    TraceId(id),
                    SimInstant::from_micros(id * 1000),
                    DeviceId::primary(DeviceKind::C9),
                    Command::nullary(ct),
                )
                .run(ProcedureKind::Unknown, RunId(run as u32), Label::Unknown)
                .build(),
            );
            id += 1;
        }
    }
    traces
}

/// Evaluates the *streaming* perplexity stage against a benign/attack
/// test mix — the sink-stage counterpart of
/// [`benchmark_detector`](crate::attacks::benchmark_detector). Every
/// sequence becomes its own run in one interleaved trace stream; the
/// confusion matrix records each run's end-of-run verdict.
///
/// # Errors
///
/// Propagates stage failures.
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn benchmark_streaming_detector(
    detector: &FittedDetector<CommandType>,
    benign: &[Vec<CommandType>],
    attacks: &[AttackTrace],
    chunk: usize,
) -> Result<rad_analysis::ConfusionMatrix, RadError> {
    let mut sequences: Vec<Vec<CommandType>> = benign.to_vec();
    sequences.extend(attacks.iter().map(|a| a.sequence.clone()));
    let traces = sequences_to_traces(&sequences);

    let mut stage = StreamingPerplexity::new(detector, AlertPolicy::RunEnd, Vec::new());
    let mut source = SliceSource::new(&traces, chunk);
    while let Some(batch) = source.next_batch()? {
        stage.accept(&batch)?;
    }
    stage.finish()?;

    let mut cm = rad_analysis::ConfusionMatrix::new();
    for score in stage.completed_runs() {
        let run = score.run_id.expect("every synthesized row carries a run").0 as usize;
        cm.record(run >= benign.len(), score.alarmed);
    }
    Ok(cm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CampaignBuilder;

    fn small_campaign() -> CampaignDataset {
        CampaignBuilder::new(42).scale(0.01).build()
    }

    #[test]
    fn campaign_and_segment_detection_agree() {
        use rad_store::segment::{SegmentOptions, SegmentWriter};
        let dataset = small_campaign();
        let detector = fit_detector(&dataset, 2).unwrap();
        let live = detect_campaign(&dataset, &detector, PowerAlertConfig::default(), 256).unwrap();

        let dir = std::env::temp_dir().join(format!("rad-detect-seg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut writer = SegmentWriter::create(&dir, SegmentOptions::default()).unwrap();
        writer.seal_traces(dataset.command().batch()).unwrap();
        for r in dataset.power().recordings() {
            let meta = RecordingMeta {
                procedure: r.procedure,
                run_id: r.run_id,
                description: r.description.clone(),
            };
            writer.seal_power(&meta, r.profile.block()).unwrap();
        }
        let set = SegmentSet::open(&dir).unwrap();
        // Different chunking on purpose: replay granularity must not
        // change a single verdict or byte of the outcome.
        let replay = detect_segments(&set, &detector, PowerAlertConfig::default(), 7).unwrap();
        assert_eq!(live.alerts, replay.alerts);
        assert_eq!(live.runs, replay.runs);
        // Segment replay knows recording metadata; the in-memory pass
        // reconstructs the same one from the dataset.
        assert_eq!(live.recordings, replay.recordings);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_detected_publishes_the_alert_table() {
        let dataset = small_campaign();
        let detector = fit_detector(&dataset, 2).unwrap();
        let dir = std::env::temp_dir().join(format!("rad-detect-export-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (files, outcome) =
            export_detected(&dataset, &detector, PowerAlertConfig::default(), &dir).unwrap();
        assert!(files >= 3);
        let back = rad_store::export::import_alerts(&dir).unwrap();
        assert_eq!(back, outcome.alerts);
        if outcome.alerts.is_empty() {
            assert!(!dir.join("alerts.csv").exists());
        } else {
            assert!(dir.join("alerts.csv").exists());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
