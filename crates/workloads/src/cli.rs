//! Hand-rolled argv parsing shared by the `radd` and `rad` binaries.
//!
//! Deliberately minimal — `--flag value` pairs and boolean switches —
//! so the binaries stay dependency-free. Parse failures print to
//! stderr and exit 2, the conventional usage-error status both
//! binaries use.

/// Pulls `--flag value` out of argv; `None` when absent.
pub fn opt(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Whether a boolean `--flag` switch is present.
pub fn has(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parses `--flag value` as a `T`, falling back to `default` when the
/// flag is absent. An unparseable value prints a usage error naming
/// `program` and exits 2.
pub fn parse<T: std::str::FromStr>(program: &str, args: &[String], flag: &str, default: T) -> T {
    match opt(args, flag) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("{program}: invalid value for {flag}: {v}");
            std::process::exit(2);
        }),
        None => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| w.to_string()).collect()
    }

    #[test]
    fn opt_finds_flag_values_and_tolerates_absence() {
        let args = argv(&["--tcp", "127.0.0.1:7171", "--detect"]);
        assert_eq!(opt(&args, "--tcp").as_deref(), Some("127.0.0.1:7171"));
        assert_eq!(opt(&args, "--unix"), None);
        // A trailing flag with no value is absent, not a panic.
        assert_eq!(opt(&args, "--detect"), None);
    }

    #[test]
    fn has_detects_switches() {
        let args = argv(&["--degrade"]);
        assert!(has(&args, "--degrade"));
        assert!(!has(&args, "--detect"));
    }

    #[test]
    fn parse_falls_back_to_the_default() {
        let args = argv(&["--seed", "9"]);
        assert_eq!(parse::<u64>("test", &args, "--seed", 0), 9);
        assert_eq!(parse::<u64>("test", &args, "--scale", 3), 3);
    }
}
