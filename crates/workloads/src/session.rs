//! A lab session: the glue between procedure scripts and the
//! middlebox.
//!
//! [`Session`] wraps a [`Middlebox`] plus the UR3e [`PowerMonitor`] and
//! exposes the idioms the Hein Lab's Python wrappers use: issue a
//! command and poll the device's completion flag (`MVNG` on the N9,
//! `Q` on the Tecan), wait out a heater ramp, or run a UR3e move while
//! the 25 Hz power monitor records it.

use rad_core::{Command, CommandType, Label, ProcedureKind, RadError, RunId, SimDuration, Value};
use rad_middlebox::{Middlebox, PowerMonitor};
use rad_power::{TrajectorySegment, Ur3e};
use rad_store::{CommandDataset, PowerDataset};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The result of running one procedure script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunEnd {
    /// The script ran to completion.
    Completed,
    /// The operator stopped the run early (benign, §IV: e.g. wrong
    /// vials staged).
    OperatorStop,
    /// A collision aborted the run (anomalous).
    Crashed,
}

/// An in-progress simulated lab session.
#[derive(Debug)]
pub struct Session {
    middlebox: Middlebox,
    monitor: PowerMonitor,
    rng: ChaCha8Rng,
    ur3e_joints: [f64; 6],
    current_run: Option<RunId>,
    current_procedure: ProcedureKind,
}

impl Session {
    /// Starts a session over a fresh rig.
    pub fn new(seed: u64) -> Self {
        Session {
            middlebox: Middlebox::new(seed),
            monitor: PowerMonitor::new(seed.wrapping_mul(0x5851_f42d_4c95_7f2d)),
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xdead_beef),
            ur3e_joints: Ur3e::named_pose(0),
            current_run: None,
            current_procedure: ProcedureKind::Unknown,
        }
    }

    /// Starts a session over an existing middlebox (custom modes or
    /// latency models).
    pub fn with_middlebox(middlebox: Middlebox, seed: u64) -> Self {
        Session {
            middlebox,
            monitor: PowerMonitor::new(seed.wrapping_mul(0x5851_f42d_4c95_7f2d)),
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0xdead_beef),
            ur3e_joints: Ur3e::named_pose(0),
            current_run: None,
            current_procedure: ProcedureKind::Unknown,
        }
    }

    /// The wrapped middlebox.
    pub fn middlebox(&self) -> &Middlebox {
        &self.middlebox
    }

    /// Mutable middlebox access (anomaly staging).
    pub fn middlebox_mut(&mut self) -> &mut Middlebox {
        &mut self.middlebox
    }

    /// Session RNG (workload parameter jitter).
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.rng
    }

    /// Opens a labelled run.
    pub fn begin_run(&mut self, run_id: RunId, procedure: ProcedureKind, label: Label) {
        self.middlebox.begin_run(run_id, procedure, label);
        self.current_run = Some(run_id);
        self.current_procedure = procedure;
    }

    /// Attaches an operator note to the active run.
    pub fn annotate(&mut self, note: &str) {
        self.middlebox.annotate_run(note);
    }

    /// Closes the active run.
    pub fn end_run(&mut self) {
        self.middlebox.end_run();
        self.current_run = None;
        self.current_procedure = ProcedureKind::Unknown;
    }

    /// Issues a command, propagating any fault.
    ///
    /// # Errors
    ///
    /// Propagates device faults (which are still traced).
    pub fn issue(&mut self, command: Command) -> Result<Value, RadError> {
        Ok(self.middlebox.issue(&command)?.value)
    }

    /// Issues a command and waits out the device busy period.
    ///
    /// # Errors
    ///
    /// Propagates device faults.
    pub fn issue_blocking(&mut self, command: Command) -> Result<Value, RadError> {
        Ok(self.middlebox.issue_blocking(&command)?.value)
    }

    /// Idles the lab for `delta` (operator think time, overnight gaps).
    pub fn wait(&mut self, delta: SimDuration) {
        self.middlebox.advance(delta);
    }

    /// Issues an N9 motion and busy-polls `MVNG` until the controller
    /// reports idle — the loop that litters RAD with `ARM MVNG MVNG`
    /// n-grams.
    ///
    /// # Errors
    ///
    /// Propagates device faults from the motion or the polls.
    pub fn n9_move_and_poll(&mut self, command: Command) -> Result<(), RadError> {
        let outcome = self.middlebox.issue(&command)?;
        let poll_gap = outcome
            .busy_for
            .mul_f64(0.2)
            .max(SimDuration::from_millis(200));
        loop {
            self.middlebox.advance(poll_gap);
            let polled = self.middlebox.issue(&Command::nullary(CommandType::Mvng))?;
            if polled.value == Value::Bool(false) {
                return Ok(());
            }
        }
    }

    /// Issues a Tecan command and polls `Q` until the pump reports
    /// idle — the source of the `Q Q Q` runs of Fig. 5(b).
    ///
    /// # Errors
    ///
    /// Propagates device faults.
    pub fn tecan_and_poll(&mut self, command: Command) -> Result<(), RadError> {
        let outcome = self.middlebox.issue(&command)?;
        let poll_gap = outcome
            .busy_for
            .mul_f64(0.3)
            .max(SimDuration::from_millis(150));
        loop {
            self.middlebox.advance(poll_gap);
            let polled = self
                .middlebox
                .issue(&Command::nullary(CommandType::TecanGetStatus))?;
            if polled.value == Value::Str("idle".into()) {
                return Ok(());
            }
        }
    }

    /// Executes a UR3e `move_joints` to `target` while the 25 Hz power
    /// monitor records the trajectory, carrying `payload_kg`.
    ///
    /// # Errors
    ///
    /// Propagates device faults (nothing is recorded for a refused
    /// move).
    pub fn ur3e_move_joints(
        &mut self,
        target: [f64; 6],
        speed_rad_s: f64,
        payload_kg: f64,
        description: &str,
    ) -> Result<(), RadError> {
        let command = Command::new(CommandType::MoveJoints, vec![Value::Joints(target)]);
        let outcome = self.middlebox.issue(&command)?;
        let segment = TrajectorySegment::joint_move(self.ur3e_joints, target, speed_rad_s);
        self.monitor.record_motion(
            self.current_procedure,
            self.current_run.unwrap_or(RunId(u32::MAX)),
            description,
            &[segment],
            payload_kg,
        );
        self.ur3e_joints = target;
        self.middlebox.advance(outcome.busy_for);
        Ok(())
    }

    /// Executes a UR3e `move_to_location` while the power monitor
    /// records the IK-derived joint trajectory — Cartesian moves get
    /// the same telemetry coverage as joint moves.
    ///
    /// # Errors
    ///
    /// Propagates device faults; unreachable targets surface as the
    /// device's own validation fault.
    pub fn ur3e_move_to_location(
        &mut self,
        target: rad_devices::Location,
        velocity_mm_s: f64,
        payload_kg: f64,
        description: &str,
    ) -> Result<(), RadError> {
        let command = Command::new(
            CommandType::MoveToLocation,
            vec![Value::Location {
                x: target.x,
                y: target.y,
                z: target.z,
            }],
        );
        let outcome = self.middlebox.issue(&command)?;
        // Power telemetry: invert the Cartesian target to a joint pose
        // and record that trajectory. Unreachable-but-accepted targets
        // (the deck model is looser than the planar chain) are skipped
        // rather than faked.
        let kin = rad_power::Ur3eKinematics::default();
        if let Some(joints) = kin
            .inverse([target.x, target.y, target.z], rad_power::Elbow::Up)
            .or_else(|| kin.inverse([target.x, target.y, target.z], rad_power::Elbow::Down))
        {
            let speed_rad_s = (velocity_mm_s / 240.0).max(0.05);
            let segment =
                rad_power::TrajectorySegment::joint_move(self.ur3e_joints, joints, speed_rad_s);
            self.monitor.record_motion(
                self.current_procedure,
                self.current_run.unwrap_or(RunId(u32::MAX)),
                description,
                &[segment],
                payload_kg,
            );
            self.ur3e_joints = joints;
        }
        self.middlebox.advance(outcome.busy_for);
        Ok(())
    }

    /// The UR3e's current joint pose as tracked by the session.
    pub fn ur3e_joints(&self) -> [f64; 6] {
        self.ur3e_joints
    }

    /// Draws a uniform float from the session RNG.
    pub fn jitter(&mut self, low: f64, high: f64) -> f64 {
        self.rng.gen_range(low..high)
    }

    /// Draws a uniform integer from the session RNG (inclusive bounds).
    pub fn jitter_int(&mut self, low: i64, high: i64) -> i64 {
        self.rng.gen_range(low..=high)
    }

    /// Finishes the session, yielding both halves of the dataset.
    pub fn finish(self) -> (CommandDataset, PowerDataset) {
        (self.middlebox.into_dataset(), self.monitor.into_dataset())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n9_poll_loop_generates_arm_mvng_pattern() {
        let mut s = Session::new(0);
        s.issue(Command::nullary(CommandType::InitC9)).unwrap();
        s.issue(Command::nullary(CommandType::Home)).unwrap();
        // Drain homing polls so the next pattern is clean.
        while s.issue(Command::nullary(CommandType::Mvng)).unwrap() != Value::Bool(false) {}
        s.n9_move_and_poll(Command::new(
            CommandType::Arm,
            vec![Value::Location {
                x: 250.0,
                y: 150.0,
                z: 60.0,
            }],
        ))
        .unwrap();
        let (ds, _) = s.finish();
        let seq: Vec<CommandType> = ds.corpus();
        let arm_pos = seq.iter().rposition(|c| *c == CommandType::Arm).unwrap();
        assert!(seq[arm_pos + 1..].iter().all(|c| *c == CommandType::Mvng));
        assert!(
            seq[arm_pos + 1..].len() >= 2,
            "several polls follow the move"
        );
    }

    #[test]
    fn tecan_poll_loop_generates_q_runs() {
        let mut s = Session::new(0);
        s.issue(Command::nullary(CommandType::InitTecan)).unwrap();
        s.tecan_and_poll(Command::nullary(CommandType::TecanSetHomePosition))
            .unwrap();
        let (ds, _) = s.finish();
        let seq = ds.corpus();
        let q_count = seq
            .iter()
            .filter(|c| **c == CommandType::TecanGetStatus)
            .count();
        assert!(
            q_count >= 2,
            "homing keeps Q busy for several polls, saw {q_count}"
        );
    }

    #[test]
    fn ur3e_moves_are_power_monitored() {
        let mut s = Session::new(0);
        s.issue(Command::nullary(CommandType::InitUr3Arm)).unwrap();
        s.ur3e_move_joints(Ur3e::named_pose(1), 1.0, 0.0, "test-move")
            .unwrap();
        let (_, power) = s.finish();
        assert_eq!(power.recordings().len(), 1);
        assert!(!power.recordings()[0].profile.is_empty());
    }

    #[test]
    fn cartesian_moves_are_power_monitored_via_ik() {
        let mut s = Session::new(0);
        s.issue(Command::nullary(CommandType::InitUr3Arm)).unwrap();
        s.ur3e_move_to_location(
            rad_devices::Location::new(1000.0, 100.0, 250.0),
            200.0,
            0.0,
            "cartesian-move",
        )
        .unwrap();
        let (_, power) = s.finish();
        assert_eq!(power.recordings().len(), 1);
        assert_eq!(power.recordings()[0].description, "cartesian-move");
        assert!(power.recordings()[0].profile.len() > 5);
    }

    #[test]
    fn faults_propagate_but_stay_traced() {
        let mut s = Session::new(0);
        let err = s.issue(Command::nullary(CommandType::Home)).unwrap_err();
        assert!(matches!(err, RadError::Device(_)));
        let (ds, _) = s.finish();
        assert_eq!(ds.len(), 1);
        assert!(ds.traces()[0].exception().is_some());
    }
}
