//! The three-month campaign synthesizer.
//!
//! §IV: RAD was collected over three months of real lab activity — 25
//! supervised procedure runs plus a long tail of prototyping scripts
//! and unsupervised experiments, 128,785 trace objects in total with
//! the per-device mix of Fig. 5(a). [`CampaignBuilder`] reproduces
//! that: it executes the 25 supervised runs in Fig. 6's id order (P4
//! first, then P1, P2, P3, with the narrated anomalies planted at runs
//! 16, 17, and 22), optionally runs the P5/P6 power experiments, and
//! then synthesizes unsupervised filler activity until each device's
//! trace count matches its Fig. 5(a) share.

use rad_core::{
    AnomalyCause, Command, CommandType, DeviceKind, Label, ProcedureKind, RunId, RunMetadata,
    SimDuration, Value,
};
use rad_middlebox::{FaultPlan, Middlebox};
use rad_store::{CommandDataset, PowerDataset};

use crate::procedures::{self, P1Variant, P2Variant, P3Variant, SOLIDS};
use crate::session::{RunEnd, Session};

/// Description of one supervised run executed by the campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcedureRun {
    /// Fig. 6 run id (0–24).
    pub run_id: RunId,
    /// Procedure type.
    pub kind: ProcedureKind,
    /// Ground-truth label.
    pub label: Label,
    /// How the run ended.
    pub end: RunEnd,
}

/// The synthesized RAD: both halves plus the supervised-run journal.
#[derive(Debug)]
pub struct CampaignDataset {
    command: CommandDataset,
    power: PowerDataset,
    journal: Vec<ProcedureRun>,
}

impl CampaignDataset {
    /// The command dataset (trace objects + run metadata).
    pub fn command(&self) -> &CommandDataset {
        &self.command
    }

    /// The power dataset (25 Hz UR3e telemetry).
    pub fn power(&self) -> &PowerDataset {
        &self.power
    }

    /// The journal of supervised runs in execution (= Fig. 6 id)
    /// order.
    pub fn journal(&self) -> &[ProcedureRun] {
        &self.journal
    }

    /// Metadata of the supervised runs (delegates to the command
    /// dataset).
    pub fn supervised_runs(&self) -> Vec<&RunMetadata> {
        self.command.supervised_runs()
    }

    /// Consumes the campaign into its parts.
    pub fn into_parts(self) -> (CommandDataset, PowerDataset, Vec<ProcedureRun>) {
        (self.command, self.power, self.journal)
    }
}

/// Builds RAD-shaped campaigns.
///
/// # Examples
///
/// ```
/// use rad_workloads::CampaignBuilder;
///
/// // A miniature campaign: the 25 supervised runs only.
/// let dataset = CampaignBuilder::new(7).supervised_only().build();
/// assert_eq!(dataset.supervised_runs().len(), 25);
/// let anomalies = dataset
///     .journal()
///     .iter()
///     .filter(|r| r.label.is_anomalous())
///     .count();
/// assert_eq!(anomalies, 3);
/// ```
#[derive(Debug, Clone)]
pub struct CampaignBuilder {
    seed: u64,
    scale: f64,
    fillers: bool,
    power_experiments: bool,
    fault_plan: Option<FaultPlan>,
}

impl CampaignBuilder {
    /// A full-scale campaign (≈128,785 traces) with power experiments.
    pub fn new(seed: u64) -> Self {
        CampaignBuilder {
            seed,
            scale: 1.0,
            fillers: true,
            power_experiments: true,
            fault_plan: None,
        }
    }

    /// Keep only the 25 supervised runs: no filler, no P5/P6. The
    /// cheapest configuration, used by tests and the Fig. 6 / Table I
    /// benches.
    #[must_use]
    pub fn supervised_only(mut self) -> Self {
        self.fillers = false;
        self.power_experiments = false;
        self
    }

    /// Scales the unsupervised filler: per-device targets become
    /// `round(paper_count * scale)`. `scale(1.0)` reproduces the full
    /// 128,785-trace corpus; smaller values make faster corpora with
    /// the same mix.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite or not positive.
    #[must_use]
    pub fn scale(mut self, scale: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        self.scale = scale;
        self
    }

    /// Enables/disables the P5/P6 power experiments.
    #[must_use]
    pub fn power_experiments(mut self, on: bool) -> Self {
        self.power_experiments = on;
        self
    }

    /// Runs the campaign's relay traffic through a seeded
    /// [`FaultPlan`]: REMOTE/CLOUD commands suffer the plan's drop /
    /// corrupt / reorder / disconnect schedule, retries cost simulated
    /// latency, and commands the middlebox never sees are degraded to
    /// DIRECT with a [`rad_core::TraceGap`] marker in the dataset.
    ///
    /// The plan is part of the builder, so [`CampaignBuilder::build_many`]
    /// replays the same fault campaign under every seed. Pair it with
    /// [`CampaignBuilder::supervised_only`]: the unsupervised filler
    /// steers by *delivered* trace counts, so a plan that converts
    /// traces into gaps can keep the filler from converging.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The fault plan, if one is configured.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Replaces the seed, keeping every other knob. Used by
    /// [`CampaignBuilder::build_many`] to derive per-campaign builders.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds one campaign per seed, in parallel (one scoped thread
    /// per seed). Each campaign is an independent simulation, so the
    /// result at index `i` is identical to
    /// `self.clone().with_seed(seeds[i]).build()` — only wall-clock
    /// time changes. This is the fast path for multi-seed experiment
    /// sweeps (ablations, robustness-over-seeds runs).
    pub fn build_many(&self, seeds: &[u64]) -> Vec<CampaignDataset> {
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = seeds
                .iter()
                .map(|&seed| {
                    let builder = self.clone().with_seed(seed);
                    s.spawn(move || builder.build())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("campaign worker panicked"))
                .collect()
        })
    }

    /// Runs the campaign.
    ///
    /// # Panics
    ///
    /// Panics if a staged supervised run deviates from its script
    /// (which would indicate a bug in the simulators, not bad input).
    pub fn build(&self) -> CampaignDataset {
        let mut session = match &self.fault_plan {
            Some(plan) => Session::with_middlebox(
                Middlebox::new(self.seed).with_fault_plan(plan.clone()),
                self.seed,
            ),
            None => Session::new(self.seed),
        };
        let mut journal = Vec::new();

        // ---- The 25 supervised runs, Fig. 6 id order. ----
        let mut next_id = 0u32;
        for i in 0..12 {
            journal.push(run_p4(&mut session, RunId(next_id), 8 + (i % 4) * 3));
            next_id += 1;
        }
        let p1_variants = [
            P1Variant::JoystickStart, // run 12
            P1Variant::Normal,        // 13
            P1Variant::Normal,        // 14
            P1Variant::Normal,        // 15
            P1Variant::DoorCrash,     // 16
        ];
        for (i, variant) in p1_variants.into_iter().enumerate() {
            journal.push(run_p1(
                &mut session,
                RunId(next_id),
                variant,
                SOLIDS[i % SOLIDS.len()],
            ));
            next_id += 1;
        }
        let p2_variants = [
            P2Variant::DoorCrashEarly,   // 17
            P2Variant::WrongGripperStop, // 18
            P2Variant::Normal,           // 19
            P2Variant::Normal,           // 20
        ];
        for (i, variant) in p2_variants.into_iter().enumerate() {
            journal.push(run_p2(
                &mut session,
                RunId(next_id),
                variant,
                SOLIDS[i % SOLIDS.len()],
            ));
            next_id += 1;
        }
        let p3_variants = [
            P3Variant::Normal,
            P3Variant::TecanCrash,
            P3Variant::Normal,
            P3Variant::Normal,
        ];
        for variant in p3_variants {
            journal.push(run_p3(&mut session, RunId(next_id), variant));
            next_id += 1;
        }

        // ---- P5/P6 power experiments (not part of the 25). ----
        if self.power_experiments {
            for velocity in [100.0, 200.0, 250.0] {
                session.begin_run(RunId(next_id), ProcedureKind::VelocitySweep, Label::Benign);
                procedures::p5_velocity_run(&mut session, velocity)
                    .expect("velocity sweep runs clean");
                session.annotate(&format!("velocity={velocity}mm/s"));
                session.end_run();
                reset_between_runs(&mut session);
                next_id += 1;
            }
            for payload in [20.0, 500.0, 1000.0] {
                session.begin_run(RunId(next_id), ProcedureKind::PayloadSweep, Label::Benign);
                procedures::p6_payload_run(&mut session, payload)
                    .expect("payload sweep runs clean");
                session.annotate(&format!("payload={payload}g"));
                session.end_run();
                reset_between_runs(&mut session);
                next_id += 1;
            }
        }

        // ---- Unsupervised filler to the Fig. 5(a) mix. ----
        if self.fillers {
            self.fill_to_targets(&mut session);
        }

        let (command, power) = session.finish();
        CampaignDataset {
            command,
            power,
            journal,
        }
    }

    /// Per-device trace-count targets.
    fn targets(&self) -> Vec<(DeviceKind, u64)> {
        DeviceKind::all()
            .iter()
            .map(|&d| {
                (
                    d,
                    (d.paper_trace_count() as f64 * self.scale).round() as u64,
                )
            })
            .collect()
    }

    fn fill_to_targets(&self, session: &mut Session) {
        let targets = self.targets();
        let count_for = |session: &Session, device: DeviceKind| -> u64 {
            session
                .middlebox()
                .traces()
                .iter()
                .filter(|t| t.device().kind() == device)
                .count() as u64
        };

        // Bulk phase: realistic single-device prototyping scripts. Each
        // device's margin is an upper bound on its script's trace count
        // so the bulk phase never overshoots the target.
        for &(device, target) in &targets {
            let margin = match device {
                DeviceKind::C9 => 400,
                DeviceKind::Ika => 120,
                DeviceKind::Tecan => 80,
                DeviceKind::Quantos => 25,
                DeviceKind::Ur3e => 30,
            };
            loop {
                let current = count_for(session, device);
                if current + margin >= target {
                    break;
                }
                match device {
                    DeviceKind::C9 => {
                        procedures::joystick_session(session, 24)
                            .expect("joystick filler runs clean");
                    }
                    DeviceKind::Ika => ika_polling_script(session),
                    DeviceKind::Tecan => tecan_flush_script(session),
                    DeviceKind::Quantos => quantos_prototype_script(session),
                    DeviceKind::Ur3e => ur3e_prototype_script(session),
                }
                reset_between_runs(session);
            }
        }

        // Top-up phase: single safe commands to land exactly on target.
        for &(device, target) in &targets {
            let mut current = count_for(session, device);
            if current >= target {
                continue;
            }
            let (init, query) = match device {
                DeviceKind::C9 => (CommandType::InitC9, CommandType::Mvng),
                DeviceKind::Ika => (CommandType::InitIka, CommandType::IkaReadStirringSpeed),
                DeviceKind::Tecan => (CommandType::InitTecan, CommandType::TecanGetStatus),
                DeviceKind::Quantos => (CommandType::InitQuantos, CommandType::ZeroBalance),
                DeviceKind::Ur3e => (CommandType::InitUr3Arm, CommandType::OpenGripper),
            };
            session
                .issue(Command::nullary(init))
                .expect("init is always accepted");
            current += 1;
            while current < target {
                session
                    .issue(Command::nullary(query))
                    .expect("top-up query is always accepted");
                session.wait(SimDuration::from_millis(500));
                current += 1;
            }
        }
    }
}

fn reset_between_runs(session: &mut Session) {
    session.middlebox_mut().rig_mut().reset();
    // Hours pass between lab activities.
    let gap = 1.0 + session.jitter(0.0, 6.0);
    session.wait(SimDuration::from_secs_f64(gap * 3600.0));
}

fn run_p4(session: &mut Session, run_id: RunId, bursts: usize) -> ProcedureRun {
    session.begin_run(run_id, ProcedureKind::JoystickMovements, Label::Benign);
    procedures::joystick_session(session, bursts).expect("joystick runs clean");
    session.end_run();
    reset_between_runs(session);
    ProcedureRun {
        run_id,
        kind: ProcedureKind::JoystickMovements,
        label: Label::Benign,
        end: RunEnd::Completed,
    }
}

fn run_p1(session: &mut Session, run_id: RunId, variant: P1Variant, solid: &str) -> ProcedureRun {
    let label = match variant {
        P1Variant::DoorCrash => Label::Anomalous(AnomalyCause::QuantosDoorVsN9),
        _ => Label::Benign,
    };
    session.begin_run(run_id, ProcedureKind::AutomatedSolubilityN9, label);
    if variant == P1Variant::JoystickStart {
        session.annotate("joystick used to position N9; stopped midway: solid shortage");
    }
    let end = procedures::p1_automated_solubility(session, variant, solid)
        .expect("p1 script handles its own staged faults");
    session.end_run();
    reset_between_runs(session);
    ProcedureRun {
        run_id,
        kind: ProcedureKind::AutomatedSolubilityN9,
        label,
        end,
    }
}

fn run_p2(session: &mut Session, run_id: RunId, variant: P2Variant, solid: &str) -> ProcedureRun {
    let label = match variant {
        P2Variant::DoorCrashEarly => Label::Anomalous(AnomalyCause::QuantosDoorVsUr3e),
        _ => Label::Benign,
    };
    session.begin_run(run_id, ProcedureKind::AutomatedSolubilityN9Ur3e, label);
    if variant == P2Variant::WrongGripperStop {
        session.annotate("wrong gripper configuration; operator stopped the run");
    }
    let end = procedures::p2_solubility_with_ur3e(session, variant, solid)
        .expect("p2 script handles its own staged faults");
    session.end_run();
    reset_between_runs(session);
    ProcedureRun {
        run_id,
        kind: ProcedureKind::AutomatedSolubilityN9Ur3e,
        label,
        end,
    }
}

fn run_p3(session: &mut Session, run_id: RunId, variant: P3Variant) -> ProcedureRun {
    let label = match variant {
        P3Variant::TecanCrash => Label::Anomalous(AnomalyCause::ArmVsTecan),
        P3Variant::Normal => Label::Benign,
    };
    session.begin_run(run_id, ProcedureKind::CrystalSolubility, label);
    let end = procedures::p3_crystal_solubility(session, variant)
        .expect("p3 script handles its own staged faults");
    session.end_run();
    reset_between_runs(session);
    ProcedureRun {
        run_id,
        kind: ProcedureKind::CrystalSolubility,
        label,
        end,
    }
}

/// An IKA prototyping script: a researcher poking at the stirrer API.
fn ika_polling_script(session: &mut Session) {
    procedures::init_ika(session).expect("ika init runs clean");
    session
        .issue(Command::new(
            CommandType::IkaSetSpeed,
            vec![Value::Float(300.0)],
        ))
        .expect("valid setpoint");
    session
        .issue(Command::nullary(CommandType::IkaStartMotor))
        .expect("speed was set");
    for _ in 0..40 {
        session
            .issue(Command::nullary(CommandType::IkaReadStirringSpeed))
            .expect("reads run clean");
        session
            .issue(Command::nullary(CommandType::IkaReadHotplateSensor))
            .expect("reads run clean");
        session.wait(SimDuration::from_secs(2));
    }
    session
        .issue(Command::nullary(CommandType::IkaStopMotor))
        .expect("stop runs clean");
    session
        .issue(Command::nullary(CommandType::IkaReadRatedSpeed))
        .expect("reads run clean");
    session
        .issue(Command::nullary(CommandType::IkaReadRatedTemp))
        .expect("reads run clean");
}

/// A Tecan maintenance flush: valve cycling with heavy Q polling.
fn tecan_flush_script(session: &mut Session) {
    procedures::init_tecan(session).expect("tecan init runs clean");
    for port in 1..=3 {
        session
            .issue(Command::new(
                CommandType::TecanSetValvePosition,
                vec![Value::Int(port)],
            ))
            .expect("valid port");
        let vol = session.jitter_int(500, 2500);
        session
            .tecan_and_poll(Command::new(
                CommandType::TecanSetPosition,
                vec![Value::Int(vol)],
            ))
            .expect("valid stroke");
        session
            .tecan_and_poll(Command::new(
                CommandType::TecanSetPosition,
                vec![Value::Int(0)],
            ))
            .expect("valid stroke");
    }
}

/// A Quantos dosing-head prototype session.
fn quantos_prototype_script(session: &mut Session) {
    procedures::init_quantos(session).expect("quantos init runs clean");
    session
        .issue(Command::new(
            CommandType::TargetMass,
            vec![Value::Float(25.0)],
        ))
        .expect("valid mass");
    session
        .issue_blocking(Command::nullary(CommandType::StartDosing))
        .expect("dosing preconditions met");
    session
        .issue(Command::new(CommandType::MoveZStage, vec![Value::Int(500)]))
        .expect("z stage homed");
    session
        .issue(Command::new(CommandType::MoveZStage, vec![Value::Int(0)]))
        .expect("z stage homed");
    session
        .issue(Command::nullary(CommandType::UnlockDosingPin))
        .expect("pin toggles");
    session
        .issue(Command::nullary(CommandType::LockDosingPin))
        .expect("pin toggles");
}

/// A UR3e teach-pendant prototyping session.
fn ur3e_prototype_script(session: &mut Session) {
    session
        .issue(Command::nullary(CommandType::InitUr3Arm))
        .expect("ur3e connects");
    for i in 0..3 {
        let pose = rad_power::Ur3e::named_pose(i + 1);
        session
            .ur3e_move_joints(pose, 0.9, 0.0, "prototype-move")
            .expect("named poses are reachable");
        session
            .issue(Command::nullary(CommandType::CloseGripper))
            .expect("gripper works");
        session
            .issue(Command::nullary(CommandType::OpenGripper))
            .expect("gripper works");
    }
    session
        .ur3e_move_joints(rad_power::Ur3e::named_pose(0), 0.9, 0.0, "prototype-home")
        .expect("named poses are reachable");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supervised_only_campaign_matches_the_paper_structure() {
        let campaign = CampaignBuilder::new(7).supervised_only().build();
        let journal = campaign.journal();
        assert_eq!(journal.len(), 25);
        // Block structure: 0-11 P4, 12-16 P1, 17-20 P2, 21-24 P3.
        assert!(journal[..12]
            .iter()
            .all(|r| r.kind == ProcedureKind::JoystickMovements));
        assert!(journal[12..17]
            .iter()
            .all(|r| r.kind == ProcedureKind::AutomatedSolubilityN9));
        assert!(journal[17..21]
            .iter()
            .all(|r| r.kind == ProcedureKind::AutomatedSolubilityN9Ur3e));
        assert!(journal[21..25]
            .iter()
            .all(|r| r.kind == ProcedureKind::CrystalSolubility));
        // Exactly the three narrated anomalies at runs 16, 17, 22.
        let anomalous: Vec<u32> = journal
            .iter()
            .filter(|r| r.label.is_anomalous())
            .map(|r| r.run_id.0)
            .collect();
        assert_eq!(anomalous, vec![16, 17, 22]);
    }

    #[test]
    fn supervised_sequences_are_nonempty_and_labelled() {
        let campaign = CampaignBuilder::new(3).supervised_only().build();
        let sequences = campaign.command().supervised_sequences();
        assert_eq!(sequences.len(), 25);
        for (meta, seq) in &sequences {
            assert!(
                seq.len() >= 10,
                "{} has only {} commands",
                meta.run_id(),
                seq.len()
            );
        }
    }

    #[test]
    fn scaled_filler_hits_the_device_mix_exactly() {
        let campaign = CampaignBuilder::new(1)
            .scale(0.05)
            .power_experiments(false)
            .build();
        let hist = campaign.command().device_histogram();
        for device in DeviceKind::all() {
            let target = (device.paper_trace_count() as f64 * 0.05).round() as u64;
            let got = hist.get(&device).copied().unwrap_or(0);
            assert_eq!(got, target, "{device}: {got} vs target {target}");
        }
    }

    #[test]
    fn power_experiments_record_velocity_and_payload_sweeps() {
        let campaign = CampaignBuilder::new(5)
            .supervised_only()
            .power_experiments(true)
            .build();
        let power = campaign.power();
        let velocities = power.for_procedure(ProcedureKind::VelocitySweep);
        let payloads = power.for_procedure(ProcedureKind::PayloadSweep);
        assert!(velocities.len() >= 3);
        assert!(payloads.len() >= 3);
    }

    #[test]
    fn campaigns_are_reproducible_by_seed() {
        let a = CampaignBuilder::new(9).supervised_only().build();
        let b = CampaignBuilder::new(9).supervised_only().build();
        assert_eq!(a.command().len(), b.command().len());
        let seq_a: Vec<_> = a.command().corpus();
        let seq_b: Vec<_> = b.command().corpus();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn perfect_fault_plan_reproduces_the_baseline_campaign() {
        use rad_middlebox::FaultProfile;
        let baseline = CampaignBuilder::new(13).supervised_only().build();
        let faulted = CampaignBuilder::new(13)
            .supervised_only()
            .with_fault_plan(FaultPlan::new(13, FaultProfile::none()))
            .build();
        assert!(faulted.command().gaps().is_empty());
        assert_eq!(baseline.command().corpus(), faulted.command().corpus());
        assert_eq!(baseline.journal(), faulted.journal());
    }

    #[test]
    fn disconnected_campaign_accounts_for_every_command() {
        use rad_middlebox::FaultProfile;
        let baseline = CampaignBuilder::new(21).supervised_only().build();
        let faulted = CampaignBuilder::new(21)
            .supervised_only()
            .with_fault_plan(FaultPlan::new(21, FaultProfile::disconnect_after(40)))
            .build();
        let traces = faulted.command().len();
        let gaps = faulted.command().gaps().len();
        assert!(gaps > 0, "the disconnect must actually bite");
        assert_eq!(
            traces + gaps,
            baseline.command().len(),
            "every command is either traced or gap-marked"
        );
    }

    #[test]
    fn build_many_matches_sequential_builds() {
        let builder = CampaignBuilder::new(0).supervised_only();
        let seeds = [3u64, 11, 42];
        let parallel = builder.build_many(&seeds);
        assert_eq!(parallel.len(), seeds.len());
        for (campaign, &seed) in parallel.iter().zip(&seeds) {
            let sequential = builder.clone().with_seed(seed).build();
            assert_eq!(campaign.command().corpus(), sequential.command().corpus());
            assert_eq!(campaign.journal(), sequential.journal());
        }
    }
}
