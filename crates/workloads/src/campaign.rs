//! The three-month campaign synthesizer.
//!
//! §IV: RAD was collected over three months of real lab activity — 25
//! supervised procedure runs plus a long tail of prototyping scripts
//! and unsupervised experiments, 128,785 trace objects in total with
//! the per-device mix of Fig. 5(a). [`CampaignBuilder`] reproduces
//! that: it executes the 25 supervised runs in Fig. 6's id order (P4
//! first, then P1, P2, P3, with the narrated anomalies planted at runs
//! 16, 17, and 22), optionally runs the P5/P6 power experiments, and
//! then synthesizes unsupervised filler activity until each device's
//! trace count matches its Fig. 5(a) share.

use std::path::Path;

use rad_core::{
    AnomalyCause, Command, CommandType, DeviceKind, Label, ProcedureKind, RadError, RunId,
    RunMetadata, SimDuration, Value,
};
use rad_middlebox::{FaultPlan, Middlebox};
use rad_store::{
    CommandDataset, CrashPlan, DurableOptions, DurableStore, Filter, PowerDataset, SegmentOptions,
};
use serde_json::{json, Value as Json};

use crate::procedures::{self, P1Variant, P2Variant, P3Variant, SOLIDS};
use crate::session::{RunEnd, Session};

/// Checkpoint the durable sink after this many supervised runs.
const CHECKPOINT_EVERY_RUNS: u32 = 8;

/// Description of one supervised run executed by the campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcedureRun {
    /// Fig. 6 run id (0–24).
    pub run_id: RunId,
    /// Procedure type.
    pub kind: ProcedureKind,
    /// Ground-truth label.
    pub label: Label,
    /// How the run ended.
    pub end: RunEnd,
}

/// The synthesized RAD: both halves plus the supervised-run journal.
#[derive(Debug)]
pub struct CampaignDataset {
    command: CommandDataset,
    power: PowerDataset,
    journal: Vec<ProcedureRun>,
}

impl CampaignDataset {
    /// The command dataset (trace objects + run metadata).
    pub fn command(&self) -> &CommandDataset {
        &self.command
    }

    /// The power dataset (25 Hz UR3e telemetry).
    pub fn power(&self) -> &PowerDataset {
        &self.power
    }

    /// The journal of supervised runs in execution (= Fig. 6 id)
    /// order.
    pub fn journal(&self) -> &[ProcedureRun] {
        &self.journal
    }

    /// Metadata of the supervised runs (delegates to the command
    /// dataset).
    pub fn supervised_runs(&self) -> Vec<&RunMetadata> {
        self.command.supervised_runs()
    }

    /// Consumes the campaign into its parts.
    pub fn into_parts(self) -> (CommandDataset, PowerDataset, Vec<ProcedureRun>) {
        (self.command, self.power, self.journal)
    }
}

/// Builds RAD-shaped campaigns.
///
/// # Examples
///
/// ```
/// use rad_workloads::CampaignBuilder;
///
/// // A miniature campaign: the 25 supervised runs only.
/// let dataset = CampaignBuilder::new(7).supervised_only().build();
/// assert_eq!(dataset.supervised_runs().len(), 25);
/// let anomalies = dataset
///     .journal()
///     .iter()
///     .filter(|r| r.label.is_anomalous())
///     .count();
/// assert_eq!(anomalies, 3);
/// ```
#[derive(Debug, Clone)]
pub struct CampaignBuilder {
    spec: CampaignSpec,
}

/// The resolved configuration of a campaign — every knob
/// [`CampaignBuilder`] exposes, as one plain value.
///
/// This is the canonical construction path: the builder stores a
/// `CampaignSpec` and its setters are thin wrappers over these fields,
/// so a hand-wired builder and [`CampaignBuilder::from_spec`] are the
/// same code path by construction. The scenario plane
/// ([`crate::scenario::ScenarioSpec`]) produces one of these from a
/// JSON document.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Master seed of the campaign.
    pub seed: u64,
    /// Unsupervised-filler scale factor.
    pub scale: f64,
    /// Whether the unsupervised filler runs.
    pub fillers: bool,
    /// Whether the P5/P6 power experiments run.
    pub power_experiments: bool,
    /// Seeded wire-fault schedule, if any.
    pub fault_plan: Option<FaultPlan>,
    /// Seeded persistence-crash schedule, if any.
    pub crash_plan: Option<CrashPlan>,
    /// Durable-store tuning override, if any.
    pub durable_options: Option<DurableOptions>,
}

impl CampaignSpec {
    /// The default full-scale configuration under `seed` — what
    /// [`CampaignBuilder::new`] starts from.
    pub fn new(seed: u64) -> Self {
        CampaignSpec {
            seed,
            scale: 1.0,
            fillers: true,
            power_experiments: true,
            fault_plan: None,
            crash_plan: None,
            durable_options: None,
        }
    }
}

impl CampaignBuilder {
    /// A full-scale campaign (≈128,785 traces) with power experiments.
    pub fn new(seed: u64) -> Self {
        CampaignBuilder {
            spec: CampaignSpec::new(seed),
        }
    }

    /// A builder over an already-resolved configuration — the
    /// scenario plane's entry point. Equivalent to chaining the
    /// hand-wired setters for every populated field.
    ///
    /// # Panics
    ///
    /// Panics if `spec.scale` is not finite or not positive, matching
    /// [`CampaignBuilder::scale`].
    pub fn from_spec(spec: CampaignSpec) -> Self {
        assert!(
            spec.scale.is_finite() && spec.scale > 0.0,
            "scale must be positive"
        );
        CampaignBuilder { spec }
    }

    /// The builder's resolved configuration.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Keep only the 25 supervised runs: no filler, no P5/P6. The
    /// cheapest configuration, used by tests and the Fig. 6 / Table I
    /// benches.
    #[must_use]
    pub fn supervised_only(mut self) -> Self {
        self.spec.fillers = false;
        self.spec.power_experiments = false;
        self
    }

    /// Scales the unsupervised filler: per-device targets become
    /// `round(paper_count * scale)`. `scale(1.0)` reproduces the full
    /// 128,785-trace corpus; smaller values make faster corpora with
    /// the same mix.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite or not positive.
    #[must_use]
    pub fn scale(mut self, scale: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        self.spec.scale = scale;
        self
    }

    /// Enables/disables the P5/P6 power experiments.
    #[must_use]
    pub fn power_experiments(mut self, on: bool) -> Self {
        self.spec.power_experiments = on;
        self
    }

    /// Runs the campaign's relay traffic through a seeded
    /// [`FaultPlan`]: REMOTE/CLOUD commands suffer the plan's drop /
    /// corrupt / reorder / disconnect schedule, retries cost simulated
    /// latency, and commands the middlebox never sees are degraded to
    /// DIRECT with a [`rad_core::TraceGap`] marker in the dataset.
    ///
    /// The plan is part of the builder, so [`CampaignBuilder::build_many`]
    /// replays the same fault campaign under every seed. Pair it with
    /// [`CampaignBuilder::supervised_only`]: the unsupervised filler
    /// steers by *delivered* trace counts, so a plan that converts
    /// traces into gaps can keep the filler from converging.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.spec.fault_plan = Some(plan);
        self
    }

    /// The fault plan, if one is configured.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.spec.fault_plan.as_ref()
    }

    /// Schedules a process crash inside [`CampaignBuilder::build_resumable`]'s
    /// persistence path. Like the fault plan, the crash plan is pure in
    /// `(seed, site, index)`, so the same build dies at the same write
    /// in every run. [`CampaignBuilder::resume_from`] ignores it — a
    /// recovery is a fresh, healthy process.
    #[must_use]
    pub fn with_crash_plan(mut self, plan: CrashPlan) -> Self {
        self.spec.crash_plan = Some(plan);
        self
    }

    /// Overrides the durable store's WAL/checkpoint tuning used by
    /// [`CampaignBuilder::build_resumable`] and
    /// [`CampaignBuilder::resume_from`] (tests shrink `segment_bytes`
    /// so rotation happens within a small campaign).
    #[must_use]
    pub fn with_durable_options(mut self, options: DurableOptions) -> Self {
        self.spec.durable_options = Some(options);
        self
    }

    /// Replaces the seed, keeping every other knob. Used by
    /// [`CampaignBuilder::build_many`] to derive per-campaign builders.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Builds one campaign per seed, fanning out across cores when
    /// the machine has them (one scoped thread per seed). Each
    /// campaign is an independent simulation, so the result at index
    /// `i` is identical to `self.clone().with_seed(seeds[i]).build()`
    /// — only wall-clock time changes. This is the fast path for
    /// multi-seed experiment sweeps (ablations, robustness-over-seeds
    /// runs). On a single-core box (or for a single seed) it runs
    /// sequentially: spawning threads that can never overlap only
    /// adds stack allocation and scheduler churn.
    pub fn build_many(&self, seeds: &[u64]) -> Vec<CampaignDataset> {
        if !rad_core::par::should_fan_out(seeds.len(), seeds.len(), 1) {
            return seeds
                .iter()
                .map(|&seed| self.clone().with_seed(seed).build())
                .collect();
        }
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = seeds
                .iter()
                .map(|&seed| {
                    let builder = self.clone().with_seed(seed);
                    s.spawn(move || builder.build())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("campaign worker panicked"))
                .collect()
        })
    }

    /// Runs the campaign.
    ///
    /// # Panics
    ///
    /// Panics if a staged supervised run deviates from its script
    /// (which would indicate a bug in the simulators, not bad input).
    pub fn build(&self) -> CampaignDataset {
        self.run(None)
            .expect("a campaign without a durable sink cannot fail")
    }

    /// Runs the campaign while persisting every trace, gap, run, and
    /// journal entry through a [`DurableStore`] in `dir`: after each
    /// supervised run the delta is WAL-logged and fsynced, and every
    /// `CHECKPOINT_EVERY_RUNS` runs the log compacts into a
    /// checkpoint. A process killed at any point (for real, or via
    /// [`CampaignBuilder::with_crash_plan`]) leaves a store that
    /// [`CampaignBuilder::resume_from`] completes into a byte-identical
    /// dataset.
    ///
    /// Calling it on a directory that already holds a partial build of
    /// the *same* campaign continues persisting from where it stopped.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Store`] on filesystem failures or injected
    /// crashes, and [`RadError::CheckpointMismatch`] when `dir` holds a
    /// different campaign's data.
    pub fn build_resumable(&self, dir: &Path) -> Result<CampaignDataset, RadError> {
        let mut options = self.spec.durable_options.clone().unwrap_or_default();
        if options.crash_plan.is_none() {
            options.crash_plan = self.spec.crash_plan.clone();
        }
        let (durable, _report) = DurableStore::open(dir, options)?;
        let mut sink = CampaignSink::attach(&durable, self.fingerprint())?;
        let dataset = self.run(Some(&mut sink))?;
        sink.finalize()?;
        Ok(dataset)
    }

    /// Recovers a campaign from a (possibly crashed) durable store in
    /// `dir`: replays the WAL, verifies the persisted prefix against a
    /// deterministic re-simulation, persists whatever the crash cut
    /// off, checkpoints, and returns the dataset **reconstructed from
    /// the store** — byte-identical to an uninterrupted
    /// [`CampaignBuilder::build`] of the same builder.
    ///
    /// The simulation is cheap and seeded; the durable store is the
    /// crash-prone product. Resume therefore re-simulates instead of
    /// snapshotting simulator state, and the prefix comparison turns
    /// any divergence (foreign data, invented or corrupted records)
    /// into a typed error instead of a silently wrong dataset.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::CheckpointMismatch`] when the store's
    /// contents do not match this builder's campaign, and
    /// [`RadError::Store`] on filesystem failures.
    pub fn resume_from(&self, dir: &Path) -> Result<CampaignDataset, RadError> {
        // A recovery is a fresh, healthy process: no crash plan.
        let mut options = self.spec.durable_options.clone().unwrap_or_default();
        options.crash_plan = None;
        let (durable, _report) = DurableStore::open(dir, options)?;

        let fingerprint = self.fingerprint();
        if let Some(cursor) = durable.find("cursor", &Filter::all()).last() {
            let persisted = cursor
                .get("fingerprint")
                .and_then(Json::as_str)
                .unwrap_or("");
            if persisted != fingerprint {
                return Err(RadError::CheckpointMismatch {
                    reason: format!(
                        "store holds campaign `{persisted}`, builder is `{fingerprint}`"
                    ),
                });
            }
        }

        // Deterministic re-simulation of the uninterrupted campaign.
        let sim = self.run(None)?;

        // Verify the persisted prefix record-for-record, then persist
        // the suffix the crash cut off.
        let sim_traces = sim.command.traces();
        verify_and_complete(&durable, "traces", &sim_traces, item_doc)?;
        verify_and_complete(&durable, "gaps", sim.command.gaps(), item_doc)?;
        verify_and_complete(&durable, "runs", sim.command.runs(), item_doc)?;
        verify_and_complete(&durable, "journal", &sim.journal, journal_doc)?;
        durable.delete("cursor", &Filter::all())?;
        durable.insert(
            "cursor",
            cursor_doc(
                sim_traces.len(),
                sim.command.gaps().len(),
                sim.command.runs().len(),
                sim.journal.len(),
                &fingerprint,
            ),
        )?;
        // Same end state as an uninterrupted build: the trace stream
        // sealed into segments (only the unsealed suffix — the
        // manifest remembers what a pre-crash finalize already wrote)
        // and a checkpoint.
        let sealed =
            durable.compact_traces_to_segments("traces", SegmentOptions::default(), false)?;
        if sealed.is_empty() {
            durable.checkpoint()?;
        }

        // Reconstruct the command half from the store — the dataset
        // returned is what disk proves, not what memory remembers.
        let traces = decode_items(&durable, "traces")?;
        let gaps = decode_items(&durable, "gaps")?;
        let runs = decode_items(&durable, "runs")?;
        let journal = decode_journal(&durable)?;
        Ok(CampaignDataset {
            command: CommandDataset::from_parts(traces, runs).with_gaps(gaps),
            power: sim.power,
            journal,
        })
    }

    /// Identity of this campaign's schedule: any two builders with the
    /// same fingerprint simulate byte-identical campaigns. The crash
    /// plan and durable tuning are deliberately excluded — they change
    /// *when persistence dies*, never what the campaign contains.
    fn fingerprint(&self) -> String {
        format!(
            "seed={} scale={} fillers={} power={} faults={:?}",
            self.spec.seed,
            self.spec.scale,
            self.spec.fillers,
            self.spec.power_experiments,
            self.spec.fault_plan
        )
    }

    fn run(&self, mut sink: Option<&mut CampaignSink<'_>>) -> Result<CampaignDataset, RadError> {
        let mut session = match &self.spec.fault_plan {
            Some(plan) => Session::with_middlebox(
                Middlebox::new(self.spec.seed).with_fault_plan(plan.clone()),
                self.spec.seed,
            ),
            None => Session::new(self.spec.seed),
        };
        let mut journal = Vec::new();

        // ---- The 25 supervised runs, Fig. 6 id order. ----
        let mut next_id = 0u32;
        for i in 0..12 {
            journal.push(run_p4(&mut session, RunId(next_id), 8 + (i % 4) * 3));
            next_id += 1;
            flush_sink(&mut sink, &session, &journal)?;
        }
        let p1_variants = [
            P1Variant::JoystickStart, // run 12
            P1Variant::Normal,        // 13
            P1Variant::Normal,        // 14
            P1Variant::Normal,        // 15
            P1Variant::DoorCrash,     // 16
        ];
        for (i, variant) in p1_variants.into_iter().enumerate() {
            journal.push(run_p1(
                &mut session,
                RunId(next_id),
                variant,
                SOLIDS[i % SOLIDS.len()],
            ));
            next_id += 1;
            flush_sink(&mut sink, &session, &journal)?;
        }
        let p2_variants = [
            P2Variant::DoorCrashEarly,   // 17
            P2Variant::WrongGripperStop, // 18
            P2Variant::Normal,           // 19
            P2Variant::Normal,           // 20
        ];
        for (i, variant) in p2_variants.into_iter().enumerate() {
            journal.push(run_p2(
                &mut session,
                RunId(next_id),
                variant,
                SOLIDS[i % SOLIDS.len()],
            ));
            next_id += 1;
            flush_sink(&mut sink, &session, &journal)?;
        }
        let p3_variants = [
            P3Variant::Normal,
            P3Variant::TecanCrash,
            P3Variant::Normal,
            P3Variant::Normal,
        ];
        for variant in p3_variants {
            journal.push(run_p3(&mut session, RunId(next_id), variant));
            next_id += 1;
            flush_sink(&mut sink, &session, &journal)?;
        }

        // ---- P5/P6 power experiments (not part of the 25). ----
        if self.spec.power_experiments {
            for velocity in [100.0, 200.0, 250.0] {
                session.begin_run(RunId(next_id), ProcedureKind::VelocitySweep, Label::Benign);
                procedures::p5_velocity_run(&mut session, velocity)
                    .expect("velocity sweep runs clean");
                session.annotate(&format!("velocity={velocity}mm/s"));
                session.end_run();
                reset_between_runs(&mut session);
                next_id += 1;
                flush_sink(&mut sink, &session, &journal)?;
            }
            for payload in [20.0, 500.0, 1000.0] {
                session.begin_run(RunId(next_id), ProcedureKind::PayloadSweep, Label::Benign);
                procedures::p6_payload_run(&mut session, payload)
                    .expect("payload sweep runs clean");
                session.annotate(&format!("payload={payload}g"));
                session.end_run();
                reset_between_runs(&mut session);
                next_id += 1;
                flush_sink(&mut sink, &session, &journal)?;
            }
        }

        // ---- Unsupervised filler to the Fig. 5(a) mix. ----
        if self.spec.fillers {
            self.fill_to_targets(&mut session);
        }

        flush_sink(&mut sink, &session, &journal)?;
        let (command, power) = session.finish();
        Ok(CampaignDataset {
            command,
            power,
            journal,
        })
    }

    /// Per-device trace-count targets.
    fn targets(&self) -> Vec<(DeviceKind, u64)> {
        DeviceKind::all()
            .iter()
            .map(|&d| {
                (
                    d,
                    (d.paper_trace_count() as f64 * self.spec.scale).round() as u64,
                )
            })
            .collect()
    }

    fn fill_to_targets(&self, session: &mut Session) {
        let targets = self.targets();
        // O(1): the tracer maintains per-device counts on the emit
        // path, so steering no longer rescans the whole trace log per
        // filler iteration.
        let count_for = |session: &Session, device: DeviceKind| -> u64 {
            session.middlebox().device_count(device)
        };

        // Bulk phase: realistic single-device prototyping scripts. Each
        // device's margin is an upper bound on its script's trace count
        // so the bulk phase never overshoots the target.
        for &(device, target) in &targets {
            let margin = match device {
                DeviceKind::C9 => 400,
                DeviceKind::Ika => 120,
                DeviceKind::Tecan => 80,
                DeviceKind::Quantos => 25,
                DeviceKind::Ur3e => 30,
            };
            loop {
                let current = count_for(session, device);
                if current + margin >= target {
                    break;
                }
                match device {
                    DeviceKind::C9 => {
                        procedures::joystick_session(session, 24)
                            .expect("joystick filler runs clean");
                    }
                    DeviceKind::Ika => ika_polling_script(session),
                    DeviceKind::Tecan => tecan_flush_script(session),
                    DeviceKind::Quantos => quantos_prototype_script(session),
                    DeviceKind::Ur3e => ur3e_prototype_script(session),
                }
                reset_between_runs(session);
            }
        }

        // Top-up phase: single safe commands to land exactly on target.
        for &(device, target) in &targets {
            let mut current = count_for(session, device);
            if current >= target {
                continue;
            }
            let (init, query) = match device {
                DeviceKind::C9 => (CommandType::InitC9, CommandType::Mvng),
                DeviceKind::Ika => (CommandType::InitIka, CommandType::IkaReadStirringSpeed),
                DeviceKind::Tecan => (CommandType::InitTecan, CommandType::TecanGetStatus),
                DeviceKind::Quantos => (CommandType::InitQuantos, CommandType::ZeroBalance),
                DeviceKind::Ur3e => (CommandType::InitUr3Arm, CommandType::OpenGripper),
            };
            session
                .issue(Command::nullary(init))
                .expect("init is always accepted");
            current += 1;
            while current < target {
                session
                    .issue(Command::nullary(query))
                    .expect("top-up query is always accepted");
                session.wait(SimDuration::from_millis(500));
                current += 1;
            }
        }
    }
}

/// Incremental persistence for a resumable campaign: tracks how much
/// of each stream (traces, gaps, run metadata, journal) has reached the
/// durable store and writes only the delta at each flush, so a crash
/// loses at most the work since the last supervised run.
struct CampaignSink<'a> {
    durable: &'a DurableStore,
    fingerprint: String,
    traces_done: usize,
    gaps_done: usize,
    runs_done: usize,
    journal_done: usize,
    runs_since_checkpoint: u32,
}

impl<'a> CampaignSink<'a> {
    /// Binds to `durable`, continuing from whatever it already holds.
    /// Records are appended strictly in order and never deleted, so the
    /// per-collection counts *are* the resume cursors — correct even
    /// after a crash between the record inserts and the cursor update.
    fn attach(durable: &'a DurableStore, fingerprint: String) -> Result<Self, RadError> {
        if let Some(cursor) = durable.find("cursor", &Filter::all()).last() {
            let persisted = cursor
                .get("fingerprint")
                .and_then(Json::as_str)
                .unwrap_or("");
            if persisted != fingerprint {
                return Err(RadError::CheckpointMismatch {
                    reason: format!(
                        "store holds campaign `{persisted}`, builder is `{fingerprint}`"
                    ),
                });
            }
        }
        Ok(CampaignSink {
            traces_done: durable.count("traces", &Filter::all()),
            gaps_done: durable.count("gaps", &Filter::all()),
            runs_done: durable.count("runs", &Filter::all()),
            journal_done: durable.count("journal", &Filter::all()),
            runs_since_checkpoint: 0,
            durable,
            fingerprint,
        })
    }

    /// Logs everything new since the last flush — one WAL frame per
    /// stream delta, not one per record — fsyncs, and compacts into a
    /// checkpoint every [`CHECKPOINT_EVERY_RUNS`] supervised runs.
    fn flush(&mut self, session: &Session, journal: &[ProcedureRun]) -> Result<(), RadError> {
        let mb = session.middlebox();
        let batch = mb.batch();
        if batch.len() > self.traces_done {
            // Each new row materializes once, straight out of the
            // columnar store — no whole-log clone per flush.
            let docs: Vec<Json> = (self.traces_done..batch.len())
                .map(|idx| item_doc(idx, &batch.materialize(idx)))
                .collect();
            self.durable.insert_batch("traces", docs)?;
            self.traces_done = batch.len();
        }
        let gaps = mb.gaps();
        if gaps.len() > self.gaps_done {
            let docs: Vec<Json> = gaps
                .iter()
                .enumerate()
                .skip(self.gaps_done)
                .map(|(idx, gap)| item_doc(idx, gap))
                .collect();
            self.durable.insert_batch("gaps", docs)?;
            self.gaps_done = gaps.len();
        }
        let runs = mb.runs();
        if runs.len() > self.runs_done {
            let docs: Vec<Json> = runs
                .iter()
                .enumerate()
                .skip(self.runs_done)
                .map(|(idx, run)| item_doc(idx, run))
                .collect();
            self.durable.insert_batch("runs", docs)?;
            self.runs_done = runs.len();
        }
        let new_runs = journal.len().saturating_sub(self.journal_done) as u32;
        if journal.len() > self.journal_done {
            let docs: Vec<Json> = journal
                .iter()
                .enumerate()
                .skip(self.journal_done)
                .map(|(idx, run)| journal_doc(idx, run))
                .collect();
            self.durable.insert_batch("journal", docs)?;
            self.journal_done = journal.len();
        }
        self.durable.delete("cursor", &Filter::all())?;
        self.durable.insert(
            "cursor",
            cursor_doc(
                self.traces_done,
                self.gaps_done,
                self.runs_done,
                self.journal_done,
                &self.fingerprint,
            ),
        )?;
        self.durable.sync()?;
        self.runs_since_checkpoint += new_runs;
        if self.runs_since_checkpoint >= CHECKPOINT_EVERY_RUNS {
            self.durable.checkpoint()?;
            self.runs_since_checkpoint = 0;
        }
        Ok(())
    }

    /// Final compaction once the campaign is complete: the trace
    /// stream is sealed into immutable columnar segments (incremental,
    /// so re-finalizing a resumed campaign seals only the new suffix)
    /// and the store checkpoints. The documents stay in place — the
    /// segments are the query-optimized copy, not a replacement.
    fn finalize(&mut self) -> Result<(), RadError> {
        let sealed =
            self.durable
                .compact_traces_to_segments("traces", SegmentOptions::default(), false)?;
        if sealed.is_empty() {
            // Nothing new to seal; compaction skipped its checkpoint.
            self.durable.checkpoint()?;
        }
        Ok(())
    }
}

fn flush_sink(
    sink: &mut Option<&mut CampaignSink<'_>>,
    session: &Session,
    journal: &[ProcedureRun],
) -> Result<(), RadError> {
    match sink {
        Some(s) => s.flush(session, journal),
        None => Ok(()),
    }
}

/// Wraps one stream item as a document: `{"i": position, "v": item}`.
/// The position makes order explicit and prefix-comparison exact.
fn item_doc<T: serde::Serialize>(idx: usize, item: &T) -> Json {
    let value = serde_json::to_value(item).expect("campaign items serialize");
    json!({
        "i": idx,
        "v": value,
    })
}

fn journal_doc(idx: usize, run: &ProcedureRun) -> Json {
    let label = serde_json::to_value(run.label).expect("labels serialize");
    let end = run_end_str(&run.end);
    json!({
        "i": idx,
        "run_id": run.run_id.0,
        "kind": run.kind.paper_id(),
        "label": label,
        "end": end,
    })
}

fn cursor_doc(traces: usize, gaps: usize, runs: usize, journal: usize, fingerprint: &str) -> Json {
    json!({
        "traces": traces,
        "gaps": gaps,
        "runs": runs,
        "journal": journal,
        "fingerprint": fingerprint,
    })
}

fn run_end_str(end: &RunEnd) -> &'static str {
    match end {
        RunEnd::Completed => "completed",
        RunEnd::OperatorStop => "operator-stop",
        RunEnd::Crashed => "crashed",
    }
}

fn run_end_from(s: &str) -> Result<RunEnd, RadError> {
    match s {
        "completed" => Ok(RunEnd::Completed),
        "operator-stop" => Ok(RunEnd::OperatorStop),
        "crashed" => Ok(RunEnd::Crashed),
        other => Err(RadError::Store(format!("unknown run end `{other}`"))),
    }
}

/// All documents of `collection`, ordered by their stream position.
fn sorted_docs(durable: &DurableStore, collection: &str) -> Vec<Json> {
    let mut docs = durable.find(collection, &Filter::all());
    docs.sort_by_key(|d| d.get("i").and_then(Json::as_u64).unwrap_or(u64::MAX));
    docs
}

/// Checks that everything persisted in `collection` is a record-exact
/// prefix of the simulated stream `items`, then persists the missing
/// suffix. Any divergence — extra records, corrupted records, a foreign
/// campaign — is a [`RadError::CheckpointMismatch`], never a silently
/// wrong dataset.
fn verify_and_complete<T>(
    durable: &DurableStore,
    collection: &str,
    items: &[T],
    encode: fn(usize, &T) -> Json,
) -> Result<(), RadError> {
    let persisted = sorted_docs(durable, collection);
    if persisted.len() > items.len() {
        return Err(RadError::CheckpointMismatch {
            reason: format!(
                "{collection}: store holds {} records but the simulation produced {}",
                persisted.len(),
                items.len()
            ),
        });
    }
    for (idx, doc) in persisted.iter().enumerate() {
        if *doc != encode(idx, &items[idx]) {
            return Err(RadError::CheckpointMismatch {
                reason: format!("{collection} record {idx} diverges from the simulated campaign"),
            });
        }
    }
    for (idx, item) in items.iter().enumerate().skip(persisted.len()) {
        durable.insert(collection, encode(idx, item))?;
    }
    Ok(())
}

/// Decodes a persisted stream back into typed items — the proof that
/// the store, not the simulation, carries the dataset.
fn decode_items<T: serde::Deserialize>(
    durable: &DurableStore,
    collection: &str,
) -> Result<Vec<T>, RadError> {
    sorted_docs(durable, collection)
        .into_iter()
        .map(|doc| {
            let value = doc
                .get("v")
                .cloned()
                .ok_or_else(|| RadError::Store(format!("{collection} document missing `v`")))?;
            serde_json::from_value(value)
                .map_err(|e| RadError::Store(format!("decoding {collection}: {e}")))
        })
        .collect()
}

fn decode_journal(durable: &DurableStore) -> Result<Vec<ProcedureRun>, RadError> {
    sorted_docs(durable, "journal")
        .into_iter()
        .map(|doc| {
            let run_id = doc
                .get("run_id")
                .and_then(Json::as_u64)
                .ok_or_else(|| RadError::Store("journal document missing run_id".into()))?;
            let kind: ProcedureKind = doc
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| RadError::Store("journal document missing kind".into()))?
                .parse()?;
            let label: Label = serde_json::from_value(
                doc.get("label")
                    .cloned()
                    .ok_or_else(|| RadError::Store("journal document missing label".into()))?,
            )
            .map_err(|e| RadError::Store(format!("decoding journal label: {e}")))?;
            let end = run_end_from(
                doc.get("end")
                    .and_then(Json::as_str)
                    .ok_or_else(|| RadError::Store("journal document missing end".into()))?,
            )?;
            Ok(ProcedureRun {
                run_id: RunId(run_id as u32),
                kind,
                label,
                end,
            })
        })
        .collect()
}

fn reset_between_runs(session: &mut Session) {
    session.middlebox_mut().rig_mut().reset();
    // Hours pass between lab activities.
    let gap = 1.0 + session.jitter(0.0, 6.0);
    session.wait(SimDuration::from_secs_f64(gap * 3600.0));
}

fn run_p4(session: &mut Session, run_id: RunId, bursts: usize) -> ProcedureRun {
    session.begin_run(run_id, ProcedureKind::JoystickMovements, Label::Benign);
    procedures::joystick_session(session, bursts).expect("joystick runs clean");
    session.end_run();
    reset_between_runs(session);
    ProcedureRun {
        run_id,
        kind: ProcedureKind::JoystickMovements,
        label: Label::Benign,
        end: RunEnd::Completed,
    }
}

fn run_p1(session: &mut Session, run_id: RunId, variant: P1Variant, solid: &str) -> ProcedureRun {
    let label = match variant {
        P1Variant::DoorCrash => Label::Anomalous(AnomalyCause::QuantosDoorVsN9),
        _ => Label::Benign,
    };
    session.begin_run(run_id, ProcedureKind::AutomatedSolubilityN9, label);
    if variant == P1Variant::JoystickStart {
        session.annotate("joystick used to position N9; stopped midway: solid shortage");
    }
    let end = procedures::p1_automated_solubility(session, variant, solid)
        .expect("p1 script handles its own staged faults");
    session.end_run();
    reset_between_runs(session);
    ProcedureRun {
        run_id,
        kind: ProcedureKind::AutomatedSolubilityN9,
        label,
        end,
    }
}

fn run_p2(session: &mut Session, run_id: RunId, variant: P2Variant, solid: &str) -> ProcedureRun {
    let label = match variant {
        P2Variant::DoorCrashEarly => Label::Anomalous(AnomalyCause::QuantosDoorVsUr3e),
        _ => Label::Benign,
    };
    session.begin_run(run_id, ProcedureKind::AutomatedSolubilityN9Ur3e, label);
    if variant == P2Variant::WrongGripperStop {
        session.annotate("wrong gripper configuration; operator stopped the run");
    }
    let end = procedures::p2_solubility_with_ur3e(session, variant, solid)
        .expect("p2 script handles its own staged faults");
    session.end_run();
    reset_between_runs(session);
    ProcedureRun {
        run_id,
        kind: ProcedureKind::AutomatedSolubilityN9Ur3e,
        label,
        end,
    }
}

fn run_p3(session: &mut Session, run_id: RunId, variant: P3Variant) -> ProcedureRun {
    let label = match variant {
        P3Variant::TecanCrash => Label::Anomalous(AnomalyCause::ArmVsTecan),
        P3Variant::Normal => Label::Benign,
    };
    session.begin_run(run_id, ProcedureKind::CrystalSolubility, label);
    let end = procedures::p3_crystal_solubility(session, variant)
        .expect("p3 script handles its own staged faults");
    session.end_run();
    reset_between_runs(session);
    ProcedureRun {
        run_id,
        kind: ProcedureKind::CrystalSolubility,
        label,
        end,
    }
}

/// An IKA prototyping script: a researcher poking at the stirrer API.
fn ika_polling_script(session: &mut Session) {
    procedures::init_ika(session).expect("ika init runs clean");
    session
        .issue(Command::new(
            CommandType::IkaSetSpeed,
            vec![Value::Float(300.0)],
        ))
        .expect("valid setpoint");
    session
        .issue(Command::nullary(CommandType::IkaStartMotor))
        .expect("speed was set");
    for _ in 0..40 {
        session
            .issue(Command::nullary(CommandType::IkaReadStirringSpeed))
            .expect("reads run clean");
        session
            .issue(Command::nullary(CommandType::IkaReadHotplateSensor))
            .expect("reads run clean");
        session.wait(SimDuration::from_secs(2));
    }
    session
        .issue(Command::nullary(CommandType::IkaStopMotor))
        .expect("stop runs clean");
    session
        .issue(Command::nullary(CommandType::IkaReadRatedSpeed))
        .expect("reads run clean");
    session
        .issue(Command::nullary(CommandType::IkaReadRatedTemp))
        .expect("reads run clean");
}

/// A Tecan maintenance flush: valve cycling with heavy Q polling.
fn tecan_flush_script(session: &mut Session) {
    procedures::init_tecan(session).expect("tecan init runs clean");
    for port in 1..=3 {
        session
            .issue(Command::new(
                CommandType::TecanSetValvePosition,
                vec![Value::Int(port)],
            ))
            .expect("valid port");
        let vol = session.jitter_int(500, 2500);
        session
            .tecan_and_poll(Command::new(
                CommandType::TecanSetPosition,
                vec![Value::Int(vol)],
            ))
            .expect("valid stroke");
        session
            .tecan_and_poll(Command::new(
                CommandType::TecanSetPosition,
                vec![Value::Int(0)],
            ))
            .expect("valid stroke");
    }
}

/// A Quantos dosing-head prototype session.
fn quantos_prototype_script(session: &mut Session) {
    procedures::init_quantos(session).expect("quantos init runs clean");
    session
        .issue(Command::new(
            CommandType::TargetMass,
            vec![Value::Float(25.0)],
        ))
        .expect("valid mass");
    session
        .issue_blocking(Command::nullary(CommandType::StartDosing))
        .expect("dosing preconditions met");
    session
        .issue(Command::new(CommandType::MoveZStage, vec![Value::Int(500)]))
        .expect("z stage homed");
    session
        .issue(Command::new(CommandType::MoveZStage, vec![Value::Int(0)]))
        .expect("z stage homed");
    session
        .issue(Command::nullary(CommandType::UnlockDosingPin))
        .expect("pin toggles");
    session
        .issue(Command::nullary(CommandType::LockDosingPin))
        .expect("pin toggles");
}

/// A UR3e teach-pendant prototyping session.
fn ur3e_prototype_script(session: &mut Session) {
    session
        .issue(Command::nullary(CommandType::InitUr3Arm))
        .expect("ur3e connects");
    for i in 0..3 {
        let pose = rad_power::Ur3e::named_pose(i + 1);
        session
            .ur3e_move_joints(pose, 0.9, 0.0, "prototype-move")
            .expect("named poses are reachable");
        session
            .issue(Command::nullary(CommandType::CloseGripper))
            .expect("gripper works");
        session
            .issue(Command::nullary(CommandType::OpenGripper))
            .expect("gripper works");
    }
    session
        .ur3e_move_joints(rad_power::Ur3e::named_pose(0), 0.9, 0.0, "prototype-home")
        .expect("named poses are reachable");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supervised_only_campaign_matches_the_paper_structure() {
        let campaign = CampaignBuilder::new(7).supervised_only().build();
        let journal = campaign.journal();
        assert_eq!(journal.len(), 25);
        // Block structure: 0-11 P4, 12-16 P1, 17-20 P2, 21-24 P3.
        assert!(journal[..12]
            .iter()
            .all(|r| r.kind == ProcedureKind::JoystickMovements));
        assert!(journal[12..17]
            .iter()
            .all(|r| r.kind == ProcedureKind::AutomatedSolubilityN9));
        assert!(journal[17..21]
            .iter()
            .all(|r| r.kind == ProcedureKind::AutomatedSolubilityN9Ur3e));
        assert!(journal[21..25]
            .iter()
            .all(|r| r.kind == ProcedureKind::CrystalSolubility));
        // Exactly the three narrated anomalies at runs 16, 17, 22.
        let anomalous: Vec<u32> = journal
            .iter()
            .filter(|r| r.label.is_anomalous())
            .map(|r| r.run_id.0)
            .collect();
        assert_eq!(anomalous, vec![16, 17, 22]);
    }

    #[test]
    fn supervised_sequences_are_nonempty_and_labelled() {
        let campaign = CampaignBuilder::new(3).supervised_only().build();
        let sequences = campaign.command().supervised_sequences();
        assert_eq!(sequences.len(), 25);
        for (meta, seq) in &sequences {
            assert!(
                seq.len() >= 10,
                "{} has only {} commands",
                meta.run_id(),
                seq.len()
            );
        }
    }

    #[test]
    fn scaled_filler_hits_the_device_mix_exactly() {
        let campaign = CampaignBuilder::new(1)
            .scale(0.05)
            .power_experiments(false)
            .build();
        let hist = campaign.command().device_histogram();
        for device in DeviceKind::all() {
            let target = (device.paper_trace_count() as f64 * 0.05).round() as u64;
            let got = hist.get(&device).copied().unwrap_or(0);
            assert_eq!(got, target, "{device}: {got} vs target {target}");
        }
    }

    #[test]
    fn power_experiments_record_velocity_and_payload_sweeps() {
        let campaign = CampaignBuilder::new(5)
            .supervised_only()
            .power_experiments(true)
            .build();
        let power = campaign.power();
        let velocities = power.for_procedure(ProcedureKind::VelocitySweep);
        let payloads = power.for_procedure(ProcedureKind::PayloadSweep);
        assert!(velocities.len() >= 3);
        assert!(payloads.len() >= 3);
    }

    #[test]
    fn campaigns_are_reproducible_by_seed() {
        let a = CampaignBuilder::new(9).supervised_only().build();
        let b = CampaignBuilder::new(9).supervised_only().build();
        assert_eq!(a.command().len(), b.command().len());
        let seq_a: Vec<_> = a.command().corpus();
        let seq_b: Vec<_> = b.command().corpus();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn perfect_fault_plan_reproduces_the_baseline_campaign() {
        use rad_middlebox::FaultProfile;
        let baseline = CampaignBuilder::new(13).supervised_only().build();
        let faulted = CampaignBuilder::new(13)
            .supervised_only()
            .with_fault_plan(FaultPlan::new(13, FaultProfile::none()))
            .build();
        assert!(faulted.command().gaps().is_empty());
        assert_eq!(baseline.command().corpus(), faulted.command().corpus());
        assert_eq!(baseline.journal(), faulted.journal());
    }

    #[test]
    fn disconnected_campaign_accounts_for_every_command() {
        use rad_middlebox::FaultProfile;
        let baseline = CampaignBuilder::new(21).supervised_only().build();
        let faulted = CampaignBuilder::new(21)
            .supervised_only()
            .with_fault_plan(FaultPlan::new(21, FaultProfile::disconnect_after(40)))
            .build();
        let traces = faulted.command().len();
        let gaps = faulted.command().gaps().len();
        assert!(gaps > 0, "the disconnect must actually bite");
        assert_eq!(
            traces + gaps,
            baseline.command().len(),
            "every command is either traced or gap-marked"
        );
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rad-campaign-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn assert_same_dataset(a: &CampaignDataset, b: &CampaignDataset) {
        assert_eq!(a.command().traces(), b.command().traces());
        assert_eq!(a.command().gaps(), b.command().gaps());
        assert_eq!(a.command().runs(), b.command().runs());
        assert_eq!(a.journal(), b.journal());
    }

    #[test]
    fn resumable_build_round_trips_through_the_store() {
        let dir = tmpdir("round-trip");
        let builder = CampaignBuilder::new(17).supervised_only();
        let baseline = builder.build();
        let resumable = builder.build_resumable(&dir).unwrap();
        assert_same_dataset(&baseline, &resumable);
        // A clean store resumes to the same dataset without re-persisting.
        let resumed = builder.resume_from(&dir).unwrap();
        assert_same_dataset(&baseline, &resumed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn finalized_campaign_seals_its_traces_into_segments() {
        let dir = tmpdir("sealed");
        let builder = CampaignBuilder::new(29).supervised_only();
        let dataset = builder.build_resumable(&dir).unwrap();

        let (durable, _) = DurableStore::open(&dir, DurableOptions::default()).unwrap();
        let segments = durable.segments().unwrap();
        assert!(!segments.is_empty(), "finalize must seal segments");
        assert_eq!(segments.trace_rows() as usize, dataset.command().len());
        assert_eq!(
            &segments.read_all().unwrap().into_batch(),
            dataset.command().batch(),
            "sealed segments hold the campaign's exact trace stream"
        );

        // Re-finalizing via resume seals nothing new — the manifest
        // remembers the already-sealed prefix.
        builder.resume_from(&dir).unwrap();
        let (durable, _) = DurableStore::open(&dir, DurableOptions::default()).unwrap();
        let again = durable.segments().unwrap();
        assert_eq!(again.trace_rows(), segments.trace_rows());
        assert_eq!(again.len(), segments.len(), "no duplicate segments");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crashed_campaign_resumes_to_identical_dataset() {
        use rad_store::CrashSite;
        let dir = tmpdir("crash-resume");
        let builder = CampaignBuilder::new(23).supervised_only();
        let baseline = builder.build();
        let err = builder
            .clone()
            .with_crash_plan(CrashPlan::at(CrashSite::MidRecord, 40))
            .build_resumable(&dir)
            .unwrap_err();
        assert!(
            err.to_string().contains("injected crash"),
            "unexpected error: {err}"
        );
        let resumed = builder.resume_from(&dir).unwrap();
        assert_same_dataset(&baseline, &resumed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_refuses_a_foreign_campaign() {
        let dir = tmpdir("foreign");
        CampaignBuilder::new(5)
            .supervised_only()
            .build_resumable(&dir)
            .unwrap();
        let err = CampaignBuilder::new(6)
            .supervised_only()
            .resume_from(&dir)
            .unwrap_err();
        assert!(
            matches!(err, RadError::CheckpointMismatch { .. }),
            "unexpected error: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn build_many_matches_sequential_builds() {
        let builder = CampaignBuilder::new(0).supervised_only();
        let seeds = [3u64, 11, 42];
        let parallel = builder.build_many(&seeds);
        assert_eq!(parallel.len(), seeds.len());
        for (campaign, &seed) in parallel.iter().zip(&seeds) {
            let sequential = builder.clone().with_seed(seed).build();
            assert_eq!(campaign.command().corpus(), sequential.command().corpus());
            assert_eq!(campaign.journal(), sequential.journal());
        }
    }
}
