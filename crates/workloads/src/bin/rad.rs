//! `rad` — the headless scenario runner.
//!
//! Executes a committed scenario document end to end and writes its
//! artifacts, so an experiment is reproduced by naming a file, not by
//! writing Rust:
//!
//! ```text
//! rad run examples/scenarios/supervised_small.json \
//!     --out /tmp/rad-out --bench /tmp/rad-bench.json
//! ```
//!
//! `rad check FILE` parses and validates without running — the cheap
//! CI gate for every committed scenario. Socket scenarios take their
//! server address from the document or from `--tcp ADDR` / `--unix
//! PATH` overrides:
//!
//! ```text
//! radd serve --tcp 127.0.0.1:7171 &
//! rad run examples/scenarios/remote_tcp.json --tcp 127.0.0.1:7171
//! ```

use std::path::PathBuf;

use rad_workloads::cli::opt;
use rad_workloads::scenario::{run_scenario, RunOptions, ScenarioSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("check") => check(&args[1..]),
        _ => {
            eprintln!("usage: rad <run|check> FILE [options]");
            eprintln!("  rad run   FILE [--out DIR] [--bench FILE] [--tcp ADDR | --unix PATH]");
            eprintln!("  rad check FILE");
            2
        }
    };
    std::process::exit(code);
}

fn load(args: &[String]) -> Result<ScenarioSpec, i32> {
    let Some(file) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("rad: a scenario FILE is required");
        return Err(2);
    };
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("rad: cannot read {file}: {e}");
            return Err(1);
        }
    };
    match ScenarioSpec::from_json_str(&text) {
        Ok(spec) => Ok(spec),
        Err(e) => {
            eprintln!("rad: {file}: {e}");
            Err(1)
        }
    }
}

fn check(args: &[String]) -> i32 {
    match load(args) {
        Ok(spec) => {
            println!("rad: {} ok (seed {})", spec.name, spec.seed);
            0
        }
        Err(code) => code,
    }
}

fn run(args: &[String]) -> i32 {
    let spec = match load(args) {
        Ok(spec) => spec,
        Err(code) => return code,
    };
    let addr_override = opt(args, "--tcp").or_else(|| opt(args, "--unix"));
    let options = RunOptions {
        out_dir: opt(args, "--out").map(PathBuf::from),
        addr_override,
    };
    println!("rad: running scenario {} (seed {})", spec.name, spec.seed);
    let report = match run_scenario(&spec, &options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rad: scenario {} failed: {e}", spec.name);
            return 1;
        }
    };
    if let Some(bench) = opt(args, "--bench") {
        let json = serde_json::to_string_pretty(&report.to_json()).unwrap_or_default();
        if let Err(e) = std::fs::write(&bench, json + "\n") {
            eprintln!("rad: cannot write {bench}: {e}");
            return 1;
        }
    }
    if report.tenants.is_empty() {
        println!(
            "rad: {}: traces={} gaps={} supervised_runs={} alerts={}{}{}",
            report.name,
            report.traces,
            report.gaps,
            report.supervised_runs,
            report.alerts,
            if report.resumed_after_crash {
                " (resumed after crash)"
            } else {
                ""
            },
            match report.window_rows {
                Some(rows) => format!(" window_rows={rows}"),
                None => String::new(),
            },
        );
    } else {
        for t in &report.tenants {
            println!(
                "rad: {}: tenant {}: executed={} resumed_at={} gaps={} completed={}",
                report.name,
                t.tenant,
                t.report.executed,
                t.report.resumed_at,
                t.report.gaps.len(),
                t.report.completed
            );
        }
    }
    println!("rad: done in {} ms", report.elapsed_ms);
    0
}
