//! `radd` — the lab service daemon and its campaign client.
//!
//! Serve a multi-tenant middlebox over TCP or a Unix-domain socket:
//!
//! ```text
//! radd serve --tcp 127.0.0.1:7171 --data-dir /tmp/rad-lab --detect
//! ```
//!
//! Then drive a seeded campaign against it from another terminal:
//!
//! ```text
//! radd campaign --tcp 127.0.0.1:7171 --tenant alice --seed 42 --max-commands 200
//! ```
//!
//! The campaign's hot path defaults to lock-step JSON; `--codec
//! binary` switches the issue data plane to the columnar binary
//! frames and `--pipeline N` keeps up to N requests in flight.
//!
//! The server runs until stdin closes or a `quit` line arrives, then
//! drains gracefully: accepting stops, in-flight sessions finish,
//! every tenant's durable sink is flushed and checkpointed, and the
//! per-tenant accounting is printed. A campaign client killed mid-run
//! can simply be re-run: the server's resume cursor skips the
//! already-executed prefix.

use std::io::BufRead;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use rad_analysis::streaming::{AlertPolicy, StreamingPerplexity};
use rad_core::{SharedAlerts, Tee};
use rad_middlebox::rpc::RetryPolicy;
use rad_middlebox::server::{
    LabService, ServerConfig, ServerHandle, SinkFactory, SocketTransport, TenantSinkStack,
};
use rad_middlebox::{DurableSink, WireCodecKind};
use rad_store::{DurableOptions, DurableStore};
use rad_workloads::cli::{has, opt, parse};
use rad_workloads::{
    fit_detector, CampaignBuilder, CampaignScript, DisconnectPolicy, RemoteCampaign,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("campaign") => campaign(&args[1..]),
        _ => {
            eprintln!("usage: radd <serve|campaign> [options]");
            eprintln!("  radd serve    --tcp ADDR | --unix PATH [--data-dir DIR] [--seed S]");
            eprintln!("                [--max-sessions N] [--backlog N] [--idle-timeout-ms N]");
            eprintln!("                [--detect]");
            eprintln!("  radd campaign --tcp ADDR | --unix PATH --tenant NAME [--seed S]");
            eprintln!("                [--max-commands N] [--degrade]");
            eprintln!("                [--codec json|binary] [--pipeline N]");
            2
        }
    };
    std::process::exit(code);
}

fn serve(args: &[String]) -> i32 {
    let seed: u64 = parse("radd", args, "--seed", 0);
    let config = ServerConfig {
        max_sessions: parse("radd", args, "--max-sessions", 4),
        backlog: parse("radd", args, "--backlog", 4),
        idle_timeout: Duration::from_millis(parse("radd", args, "--idle-timeout-ms", 30_000)),
        seed,
        data_dir: opt(args, "--data-dir").map(PathBuf::from),
        ..ServerConfig::default()
    };
    let mut service = LabService::new(config.clone());
    let alerts = SharedAlerts::new();
    if has(args, "--detect") {
        // Fit the streaming detector once on the seeded supervised
        // campaign; each tenant gets its own stage teed behind the
        // durable sink.
        eprintln!("radd: fitting streaming detector (seed {seed})...");
        let training = CampaignBuilder::new(seed).supervised_only().build();
        let detector = match fit_detector(&training, 2) {
            Ok(d) => Arc::new(d),
            Err(e) => {
                eprintln!("radd: detector fit failed: {e}");
                return 1;
            }
        };
        let data_dir = config.data_dir.clone();
        let shared = alerts.clone();
        let factory: SinkFactory = Arc::new(move |tenant: &str| {
            let stage = StreamingPerplexity::new(&detector, AlertPolicy::RunEnd, shared.clone());
            let mut stack = TenantSinkStack {
                sink: Box::new(stage),
                durable: None,
            };
            if let Some(dir) = &data_dir {
                let (store, report) =
                    DurableStore::open(&dir.join(tenant), DurableOptions::default())?;
                let store = Arc::new(store);
                if report.records_recovered > 0 {
                    eprintln!(
                        "radd: tenant {tenant}: recovered {} durable records",
                        report.records_recovered
                    );
                }
                stack.sink = Box::new(Tee::new(DurableSink::new(Arc::clone(&store)), stack.sink));
                stack.durable = Some(store);
            }
            Ok(stack)
        });
        service = service.with_sink_factory(factory);
    }

    let handle: ServerHandle = if let Some(addr) = opt(args, "--tcp") {
        match service.serve_tcp(&addr) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("radd: {e}");
                return 1;
            }
        }
    } else if let Some(path) = opt(args, "--unix") {
        match service.serve_unix(std::path::Path::new(&path)) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("radd: {e}");
                return 1;
            }
        }
    } else {
        eprintln!("radd serve: one of --tcp ADDR or --unix PATH is required");
        return 2;
    };
    if let Some(addr) = handle.local_addr() {
        println!("radd: serving on {addr} (seed {seed}); quit or EOF to drain");
    } else {
        println!("radd: serving (seed {seed}); quit or EOF to drain");
    }

    // Block on stdin: EOF or a `quit` line triggers the graceful
    // drain, so `echo quit | radd serve ...` exits 0 with no loss.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "quit" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }

    println!("radd: draining...");
    match handle.drain() {
        Ok(report) => {
            for t in &report.tenants {
                println!(
                    "radd: tenant {}: issues={} rows_flushed={} gaps={} peak_queued_rows={}",
                    t.tenant, t.issues, t.rows_flushed, t.gaps_flushed, t.peak_queued_rows
                );
            }
            let alert_count = alerts.snapshot().len();
            if alert_count > 0 {
                println!("radd: streaming detector raised {alert_count} alerts");
            }
            println!(
                "radd: drained in {:.1} ms ({})",
                report.flush_time.as_secs_f64() * 1e3,
                report.stats
            );
            0
        }
        Err(e) => {
            eprintln!("radd: drain failed: {e}");
            1
        }
    }
}

fn campaign(args: &[String]) -> i32 {
    let Some(tenant) = opt(args, "--tenant") else {
        eprintln!("radd campaign: --tenant NAME is required");
        return 2;
    };
    let seed: u64 = parse("radd", args, "--seed", 42);
    let mut script = CampaignScript::supervised(seed);
    if let Some(n) = opt(args, "--max-commands") {
        let n: usize = n.parse().unwrap_or_else(|_| {
            eprintln!("radd: invalid --max-commands: {n}");
            std::process::exit(2);
        });
        script = script.truncated(n);
    }
    println!(
        "radd: campaign seed {seed}: {} commands as tenant {tenant}",
        script.command_count()
    );
    let transport = if let Some(addr) = opt(args, "--tcp") {
        SocketTransport::connect_tcp(&addr)
    } else if let Some(path) = opt(args, "--unix") {
        SocketTransport::connect_unix(std::path::Path::new(&path))
    } else {
        eprintln!("radd campaign: one of --tcp ADDR or --unix PATH is required");
        return 2;
    };
    let transport = match transport {
        Ok(t) => t,
        Err(e) => {
            eprintln!("radd: {e}");
            return 1;
        }
    };
    let policy = RetryPolicy::default().with_jitter(seed, 500);
    let disconnect = if has(args, "--degrade") {
        DisconnectPolicy::Degrade
    } else {
        DisconnectPolicy::Fail
    };
    let codec = match opt(args, "--codec").as_deref() {
        None => WireCodecKind::Json,
        Some(name) => match WireCodecKind::from_name(name) {
            Some(kind) => kind,
            None => {
                eprintln!("radd: unknown --codec {name} (accepted: json, binary)");
                return 2;
            }
        },
    };
    let depth: usize = parse("radd", args, "--pipeline", 1);
    let drive = RemoteCampaign::new(script, &tenant)
        .with_policy(policy)
        .on_disconnect(disconnect)
        .with_codec(codec)
        .with_pipeline_depth(depth)
        .resume_from(transport);
    match drive {
        Ok(report) => {
            println!(
                "radd: resumed at {}, executed {} remotely, {} degraded gaps",
                report.resumed_at,
                report.executed,
                report.gaps.len()
            );
            if let Some(e) = &report.error {
                eprintln!("radd: campaign stopped early: {e} (re-run to resume)");
                return 1;
            }
            println!("radd: campaign complete");
            0
        }
        Err(e) => {
            eprintln!("radd: {e}");
            1
        }
    }
}
