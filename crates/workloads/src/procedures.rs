//! The procedure scripts P1–P6 and the joystick driver.
//!
//! Each function reproduces one of the paper's workloads as a command
//! script against the simulated rig, including the run variants §V
//! narrates: run 12's joystick-heavy start, run 16's Quantos-door
//! crash after dosing began, run 17's early door-vs-UR3e crash, run
//! 18's wrong-gripper operator stop, and run 22's arm-vs-Tecan crash
//! at the very end.

use rad_core::{Command, CommandType, DeviceFault, RadError, SimDuration, Value};
use rad_devices::geometry::deck;
use rad_power::Ur3e;

use crate::session::{RunEnd, Session};

/// Solids used by the solubility screens (Fig. 7b's legend).
pub const SOLIDS: [&str; 3] = ["NABH4", "CSTI", "GENTISTIC"];

/// Behavioural variant of a P1 run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum P1Variant {
    /// Normal closed-loop solubility run.
    Normal,
    /// Run 12: the operator positioned the N9 with the joystick, then
    /// the run stopped midway (solid shortage) before any Quantos or
    /// Tecan command.
    JoystickStart,
    /// Run 16: the Quantos front door crashed into the N9 after
    /// `start_dosing` / `target_mass` had already executed.
    DoorCrash,
}

/// Behavioural variant of a P2 run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum P2Variant {
    /// Runs 19–20: complete, normal executions.
    Normal,
    /// Run 17: the Quantos front door crashed into the UR3e about
    /// one-tenth of the way in.
    DoorCrashEarly,
    /// Run 18: a wrong gripper configuration was noticed about
    /// one-tenth of the way in; the operator stopped the run (benign).
    WrongGripperStop,
}

/// Behavioural variant of a P3 run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum P3Variant {
    /// Runs 21, 23, 24: complete executions.
    Normal,
    /// Run 22: the robot arm crashed into the Tecan at the end.
    TecanCrash,
}

fn loc(l: rad_devices::Location) -> Value {
    Value::Location {
        x: l.x,
        y: l.y,
        z: l.z,
    }
}

fn arm_to(l: rad_devices::Location) -> Command {
    Command::new(CommandType::Arm, vec![loc(l)])
}

/// Initializes the N9 side of the rig (C9 controller, homing, speed).
///
/// # Errors
///
/// Propagates device faults.
pub fn init_n9(s: &mut Session) -> Result<(), RadError> {
    s.issue(Command::nullary(CommandType::InitC9))?;
    s.n9_move_and_poll(Command::nullary(CommandType::Home))?;
    let speed = 140.0 + s.jitter(0.0, 15.0);
    s.issue(Command::new(CommandType::Sped, vec![Value::Float(speed)]))?;
    s.issue(Command::new(CommandType::Bias, vec![Value::Int(0)]))?;
    Ok(())
}

/// Initializes the Quantos (connection, z stage, balance, dosing head).
///
/// # Errors
///
/// Propagates device faults.
pub fn init_quantos(s: &mut Session) -> Result<(), RadError> {
    s.issue(Command::nullary(CommandType::InitQuantos))?;
    s.issue(Command::new(
        CommandType::SetHomeDirection,
        vec![Value::Str("up".into())],
    ))?;
    s.issue_blocking(Command::nullary(CommandType::HomeZStage))?;
    s.issue_blocking(Command::nullary(CommandType::ZeroBalance))?;
    s.issue(Command::nullary(CommandType::LockDosingPin))?;
    Ok(())
}

/// Initializes the Tecan (connection, configuration, plunger homing
/// with status polls).
///
/// # Errors
///
/// Propagates device faults.
pub fn init_tecan(s: &mut Session) -> Result<(), RadError> {
    s.issue(Command::nullary(CommandType::InitTecan))?;
    s.issue(Command::new(
        CommandType::TecanSetSlopeCode,
        vec![Value::Int(14)],
    ))?;
    s.issue(Command::new(
        CommandType::TecanSetDeadVolume,
        vec![Value::Int(10)],
    ))?;
    s.tecan_and_poll(Command::nullary(CommandType::TecanSetHomePosition))?;
    let v = s.jitter_int(900, 1600);
    s.issue(Command::new(
        CommandType::TecanSetVelocity,
        vec![Value::Int(v)],
    ))?;
    Ok(())
}

/// Initializes the IKA stirrer/heater (connection + identity check).
///
/// # Errors
///
/// Propagates device faults.
pub fn init_ika(s: &mut Session) -> Result<(), RadError> {
    s.issue(Command::nullary(CommandType::InitIka))?;
    s.issue(Command::nullary(CommandType::IkaReadDeviceName))?;
    Ok(())
}

/// One Tecan aspirate/dispense cycle with status polling.
///
/// # Errors
///
/// Propagates device faults.
pub fn tecan_dispense_cycle(s: &mut Session, volume_steps: i64) -> Result<(), RadError> {
    s.issue(Command::new(
        CommandType::TecanSetValvePosition,
        vec![Value::Int(1)],
    ))?;
    s.tecan_and_poll(Command::new(
        CommandType::TecanSetPosition,
        vec![Value::Int(volume_steps)],
    ))?;
    s.issue(Command::new(
        CommandType::TecanSetValvePosition,
        vec![Value::Int(2)],
    ))?;
    s.tecan_and_poll(Command::new(
        CommandType::TecanSetPosition,
        vec![Value::Int(0)],
    ))?;
    Ok(())
}

/// A joystick session: `bursts` button presses, each translated into a
/// continuous stream of N9 commands (P4, and the workload behind the
/// Fig. 4 response-time study).
///
/// # Errors
///
/// Propagates device faults.
pub fn joystick_session(s: &mut Session, bursts: usize) -> Result<(), RadError> {
    s.issue(Command::nullary(CommandType::InitC9))?;
    s.n9_move_and_poll(Command::nullary(CommandType::Home))?;
    let mut x = 0.0f64;
    let mut y = 0.0f64;
    for burst in 0..bursts {
        // Occasionally the operator reconfigures the gripper length.
        if burst % 11 == 3 {
            let len = 120.0 + s.jitter(0.0, 80.0);
            s.issue(Command::new(CommandType::Jlen, vec![Value::Float(len)]))?;
        }
        // Holding a direction button streams ARM commands; the joystick
        // API repeats the command until release.
        let hold = s.jitter_int(2, 6);
        let dx = s.jitter(-40.0, 40.0);
        let dy = s.jitter(-40.0, 40.0);
        for _ in 0..hold {
            x = (x + dx).clamp(-150.0, 420.0);
            y = (y + dy).clamp(-100.0, 300.0);
            s.issue(Command::new(
                CommandType::Arm,
                vec![Value::Location { x, y, z: 200.0 }],
            ))?;
            s.wait(SimDuration::from_millis(60));
        }
        // Release: poll until the arm settles, reading current along
        // the way (the joystick HUD shows axis currents).
        loop {
            let moving = s.issue(Command::nullary(CommandType::Mvng))?;
            if s.jitter(0.0, 1.0) < 0.3 {
                s.issue(Command::nullary(CommandType::Curr))?;
            }
            if moving == Value::Bool(false) {
                break;
            }
            s.wait(SimDuration::from_millis(120));
        }
        // A fine jog on one axis between bursts.
        if burst % 5 == 4 {
            let axis = s.jitter_int(0, 3);
            let target = s.jitter(-20.0, 20.0);
            s.issue(Command::new(
                CommandType::Move,
                vec![Value::Int(axis), Value::Float(target)],
            ))?;
            s.issue(Command::nullary(CommandType::Mvng))?;
        }
    }
    Ok(())
}

/// P1: Automated Solubility with N9.
///
/// # Errors
///
/// Propagates unexpected device faults. Expected crash variants are
/// absorbed into the returned [`RunEnd`].
pub fn p1_automated_solubility(
    s: &mut Session,
    variant: P1Variant,
    solid: &str,
) -> Result<RunEnd, RadError> {
    if variant == P1Variant::JoystickStart {
        // Run 12: substantial joystick use to position the N9, then a
        // solid shortage stops the run before any Quantos/Tecan
        // command executes.
        joystick_session(s, 14)?;
        s.n9_move_and_poll(arm_to(deck::VIAL_RACK))?;
        s.issue(Command::nullary(CommandType::Grip))?;
        s.n9_move_and_poll(arm_to(deck::IKA_PLATE))?;
        return Ok(RunEnd::OperatorStop);
    }

    init_n9(s)?;
    init_quantos(s)?;
    init_tecan(s)?;
    init_ika(s)?;

    // Fetch an empty vial from the rack.
    s.n9_move_and_poll(arm_to(deck::VIAL_RACK))?;
    s.issue(Command::new(CommandType::Grip, vec![Value::Bool(true)]))?;

    // Load it into the Quantos through the doorway.
    s.issue_blocking(Command::new(
        CommandType::FrontDoorPosition,
        vec![Value::Str("open".into())],
    ))?;
    s.n9_move_and_poll(arm_to(deck::QUANTOS_PAN))?;
    s.issue(Command::new(CommandType::Grip, vec![Value::Bool(false)]))?;
    s.n9_move_and_poll(arm_to(deck::VIAL_RACK))?;
    s.issue_blocking(Command::new(
        CommandType::FrontDoorPosition,
        vec![Value::Str("close".into())],
    ))?;

    // Dose the solid.
    let mass = 40.0 + s.jitter(0.0, 120.0);
    s.issue(Command::new(
        CommandType::TargetMass,
        vec![Value::Float(mass)],
    ))?;
    s.issue(Command::new(
        CommandType::MoveZStage,
        vec![Value::Int(1800)],
    ))?;
    s.issue_blocking(Command::nullary(CommandType::StartDosing))?;
    s.issue(Command::new(CommandType::MoveZStage, vec![Value::Int(0)]))?;
    s.annotate(&format!("solid={solid}"));

    // Retrieve the dosed vial and park it on the stirrer.
    s.issue_blocking(Command::new(
        CommandType::FrontDoorPosition,
        vec![Value::Str("open".into())],
    ))?;
    s.n9_move_and_poll(arm_to(deck::QUANTOS_PAN))?;
    s.issue(Command::new(CommandType::Grip, vec![Value::Bool(true)]))?;
    s.n9_move_and_poll(arm_to(deck::IKA_PLATE))?;
    s.issue(Command::new(CommandType::Grip, vec![Value::Bool(false)]))?;
    s.issue_blocking(Command::new(
        CommandType::FrontDoorPosition,
        vec![Value::Str("close".into())],
    ))?;

    // Closed-loop dissolution: add solvent, stir, check by "vision".
    s.issue(Command::new(
        CommandType::IkaSetSpeed,
        vec![Value::Float(500.0)],
    ))?;
    s.issue(Command::nullary(CommandType::IkaStartMotor))?;
    let iterations = s.jitter_int(4, 5);
    for _ in 0..iterations {
        let shot = s.jitter_int(400, 900);
        tecan_dispense_cycle(s, shot)?;
        for _ in 0..3 {
            s.issue(Command::nullary(CommandType::IkaReadStirringSpeed))?;
            s.wait(SimDuration::from_secs(5));
        }
    }
    s.issue(Command::nullary(CommandType::IkaStopMotor))?;

    if variant == P1Variant::DoorCrash {
        // Run 16: the screen needs a second dose, so the arm carries
        // the vial back toward the Quantos — and is still parked in
        // the doorway corridor when the front door re-opens.
        s.n9_move_and_poll(arm_to(rad_devices::Location::new(600.0, 200.0, 100.0)))?;
        let crash = s.issue(Command::new(
            CommandType::FrontDoorPosition,
            vec![Value::Str("open".into())],
        ));
        match crash {
            Err(RadError::Device(DeviceFault::Collision { .. })) => {
                // Operator recovery: the controller is interrogated
                // (current/temperature reads alternate while the
                // operator inspects the jam), the dosing head is
                // released, the door is forced shut, and the arm
                // re-homes — a burst of orderings no benign run
                // produces.
                s.middlebox_mut()
                    .rig_mut()
                    .lab_mut()
                    .collision_checks_disabled = true;
                for _ in 0..10 {
                    s.issue(Command::nullary(CommandType::Temp))?;
                    s.issue(Command::nullary(CommandType::Curr))?;
                }
                for _ in 0..3 {
                    s.issue(Command::nullary(CommandType::UnlockDosingPin))?;
                    s.issue(Command::nullary(CommandType::LockDosingPin))?;
                }
                s.issue(Command::nullary(CommandType::UnlockDosingPin))?;
                s.issue(Command::new(
                    CommandType::FrontDoorPosition,
                    vec![Value::Str("close".into())],
                ))?;
                s.issue_blocking(Command::nullary(CommandType::ZeroBalance))?;
                s.issue_blocking(Command::nullary(CommandType::HomeZStage))?;
                let _ = s.n9_move_and_poll(Command::nullary(CommandType::Home));
                s.middlebox_mut()
                    .rig_mut()
                    .lab_mut()
                    .collision_checks_disabled = false;
                return Ok(RunEnd::Crashed);
            }
            Err(e) => return Err(e),
            Ok(_) => {
                return Err(RadError::Analysis(
                    "staged door crash did not trigger".into(),
                ))
            }
        }
    }

    // Spin down and return the vial.
    s.n9_move_and_poll(arm_to(deck::IKA_PLATE))?;
    s.issue(Command::new(CommandType::Grip, vec![Value::Bool(true)]))?;
    s.n9_move_and_poll(arm_to(deck::CENTRIFUGE))?;
    s.issue(Command::new(CommandType::Grip, vec![Value::Bool(false)]))?;
    s.issue(Command::new(CommandType::Outp, vec![Value::Bool(true)]))?;
    s.wait(SimDuration::from_secs(30));
    s.issue(Command::new(CommandType::Outp, vec![Value::Bool(false)]))?;
    s.issue(Command::new(CommandType::Grip, vec![Value::Bool(true)]))?;
    s.n9_move_and_poll(arm_to(deck::VIAL_RACK))?;
    s.issue(Command::new(CommandType::Grip, vec![Value::Bool(false)]))?;
    s.n9_move_and_poll(Command::nullary(CommandType::Home))?;
    Ok(RunEnd::Completed)
}

/// P2: Automated Solubility with N9 and UR3e. The UR3e ferries the
/// vial along the L0–L5 tour of Fig. 7(a) while the power monitor
/// records every leg.
///
/// # Errors
///
/// Propagates unexpected device faults.
pub fn p2_solubility_with_ur3e(
    s: &mut Session,
    variant: P2Variant,
    solid: &str,
) -> Result<RunEnd, RadError> {
    s.issue(Command::nullary(CommandType::InitUr3Arm))?;
    init_n9(s)?;
    init_quantos(s)?;
    init_tecan(s)?;
    init_ika(s)?;

    match variant {
        P2Variant::DoorCrashEarly => {
            // Run 17: the UR3e parks at the Quantos hand-off point;
            // the door opens into it.
            s.issue_blocking(Command::new(
                CommandType::MoveToLocation,
                vec![Value::Location {
                    x: 750.0,
                    y: 230.0,
                    z: 150.0,
                }],
            ))?;
            let crash = s.issue(Command::new(
                CommandType::FrontDoorPosition,
                vec![Value::Str("open".into())],
            ));
            return match crash {
                Err(RadError::Device(DeviceFault::Collision { .. })) => {
                    // Operator recovery: a door-jam triage that ping-
                    // pongs between backing the arm out and checking
                    // the Quantos (balance re-zero, z-stage re-home)
                    // until the door closes — cross-device orderings
                    // that no benign run produces.
                    s.middlebox_mut()
                        .rig_mut()
                        .lab_mut()
                        .collision_checks_disabled = true;
                    for step in 0..2 {
                        let _ = s.issue_blocking(Command::new(
                            CommandType::MoveToLocation,
                            vec![Value::Location {
                                x: 800.0 + 30.0 * f64::from(step),
                                y: 150.0 - 40.0 * f64::from(step),
                                z: 200.0,
                            }],
                        ));
                        s.issue_blocking(Command::nullary(CommandType::ZeroBalance))?;
                        s.issue_blocking(Command::nullary(CommandType::HomeZStage))?;
                    }
                    s.issue(Command::new(
                        CommandType::FrontDoorPosition,
                        vec![Value::Str("close".into())],
                    ))?;
                    let _ = s.issue_blocking(Command::new(
                        CommandType::MoveToLocation,
                        vec![Value::Location {
                            x: 900.0,
                            y: 0.0,
                            z: 300.0,
                        }],
                    ));
                    s.middlebox_mut()
                        .rig_mut()
                        .lab_mut()
                        .collision_checks_disabled = false;
                    Ok(RunEnd::Crashed)
                }
                Err(e) => Err(e),
                Ok(_) => Err(RadError::Analysis(
                    "staged door crash did not trigger".into(),
                )),
            };
        }
        P2Variant::WrongGripperStop => {
            // Run 18: same early trajectory, but the researcher notices
            // the wrong gripper configuration and stops the process on
            // the lab computer.
            s.ur3e_move_to_location(
                rad_devices::Location::new(750.0, 230.0, 150.0),
                250.0,
                0.0,
                "approach-quantos",
            )?;
            // The researcher cycles the gripper and repositions a few
            // times trying to make the wrong fingers work, then gives
            // up and stops the process on the lab computer.
            for step in 0..2 {
                s.issue(Command::nullary(CommandType::CloseGripper))?;
                s.issue(Command::nullary(CommandType::OpenGripper))?;
                s.issue_blocking(Command::new(
                    CommandType::MoveToLocation,
                    vec![Value::Location {
                        x: 780.0 + 20.0 * f64::from(step),
                        y: 200.0 - 30.0 * f64::from(step),
                        z: 180.0,
                    }],
                ))?;
            }
            return Ok(RunEnd::OperatorStop);
        }
        P2Variant::Normal => {}
    }

    s.annotate(&format!("solid={solid}"));

    // The UR3e tour: pick the vial at the rack, visit the Quantos for
    // dosing, park at the stirrer — the five legs of Fig. 7(a).
    let vial_g = 0.025;
    s.issue(Command::nullary(CommandType::OpenGripper))?;
    s.ur3e_move_joints(Ur3e::named_pose(1), 1.0, 0.0, "L0-L1")?;
    s.issue(Command::nullary(CommandType::CloseGripper))?;
    s.middlebox_mut().rig_mut().ur3e_mut().set_payload_g(25.0);
    s.ur3e_move_joints(Ur3e::named_pose(2), 1.0, vial_g, "L1-L2")?;
    s.ur3e_move_joints(Ur3e::named_pose(3), 1.0, vial_g, "L2-L3")?;

    // Dose while the vial sits in the Quantos.
    let mass = 40.0 + s.jitter(0.0, 120.0);
    s.issue(Command::new(
        CommandType::TargetMass,
        vec![Value::Float(mass)],
    ))?;
    s.issue_blocking(Command::nullary(CommandType::StartDosing))?;

    s.ur3e_move_joints(Ur3e::named_pose(4), 1.0, vial_g, "L3-L4")?;
    s.ur3e_move_joints(Ur3e::named_pose(5), 1.0, vial_g, "L4-L5")?;
    s.issue(Command::nullary(CommandType::OpenGripper))?;
    s.middlebox_mut().rig_mut().ur3e_mut().set_payload_g(0.0);

    // Short dissolution loop (the N9 handles solvent vials).
    s.issue(Command::new(
        CommandType::IkaSetSpeed,
        vec![Value::Float(450.0)],
    ))?;
    s.issue(Command::nullary(CommandType::IkaStartMotor))?;
    for _ in 0..2 {
        let shot = s.jitter_int(400, 800);
        tecan_dispense_cycle(s, shot)?;
        s.issue(Command::nullary(CommandType::IkaReadStirringSpeed))?;
    }
    s.issue(Command::nullary(CommandType::IkaStopMotor))?;

    // Return tour.
    s.ur3e_move_joints(Ur3e::named_pose(0), 1.0, 0.0, "L5-L0")?;
    s.n9_move_and_poll(Command::nullary(CommandType::Home))?;
    Ok(RunEnd::Completed)
}

/// P3: Crystal Solubility — a temperature-profiled variant built on
/// heating/cooling cycles and periodic sampling.
///
/// # Errors
///
/// Propagates unexpected device faults.
pub fn p3_crystal_solubility(s: &mut Session, variant: P3Variant) -> Result<RunEnd, RadError> {
    init_n9(s)?;
    init_tecan(s)?;
    init_ika(s)?;

    // Stage the crystal vial on the stirrer.
    s.n9_move_and_poll(arm_to(deck::VIAL_RACK))?;
    s.issue(Command::new(CommandType::Grip, vec![Value::Bool(true)]))?;
    s.n9_move_and_poll(arm_to(deck::IKA_PLATE))?;
    s.issue(Command::new(CommandType::Grip, vec![Value::Bool(false)]))?;

    // Heating profile with periodic sensor reads and solvent sampling.
    s.issue(Command::new(
        CommandType::IkaSetSpeed,
        vec![Value::Float(400.0)],
    ))?;
    s.issue(Command::nullary(CommandType::IkaStartMotor))?;
    for ramp in 0..3 {
        let setpoint = 35.0 + 10.0 * ramp as f64;
        s.issue(Command::new(
            CommandType::IkaSetTemperature,
            vec![Value::Float(setpoint)],
        ))?;
        s.issue(Command::nullary(CommandType::IkaStartHeater))?;
        for _ in 0..4 {
            s.issue(Command::nullary(CommandType::IkaReadHotplateSensor))?;
            s.issue(Command::nullary(CommandType::IkaReadExternalSensor))?;
            s.wait(SimDuration::from_secs(20));
        }
        s.issue(Command::nullary(CommandType::IkaStopHeater))?;
        // Draw a sample at this temperature.
        let sip = s.jitter_int(150, 300);
        tecan_dispense_cycle(s, sip)?;
    }
    s.issue(Command::nullary(CommandType::IkaStopMotor))?;

    // Return the vial; run 22 clips the Tecan on this final move.
    s.n9_move_and_poll(arm_to(deck::IKA_PLATE))?;
    s.issue(Command::new(CommandType::Grip, vec![Value::Bool(true)]))?;
    if variant == P3Variant::TecanCrash {
        let crash = s.n9_move_and_poll(Command::new(
            CommandType::Arm,
            vec![Value::Location {
                x: 150.0,
                y: 500.0,
                z: 120.0,
            }],
        ));
        return match crash {
            Err(RadError::Device(DeviceFault::Collision { .. })) => {
                // Operator recovery: a long manual inspect-and-jog
                // session — re-measuring the gripper reach, reading
                // the controller temperature, and inching single axes
                // until the arm is clear of the Tecan — before
                // everything re-homes. No benign run produces these
                // orderings.
                s.middlebox_mut()
                    .rig_mut()
                    .lab_mut()
                    .collision_checks_disabled = true;
                s.issue(Command::new(CommandType::Sped, vec![Value::Float(20.0)]))?;
                for cycle in 0..10 {
                    let reach = 140.0 + 2.0 * f64::from(cycle);
                    s.issue(Command::new(CommandType::Jlen, vec![Value::Float(reach)]))?;
                    s.issue(Command::nullary(CommandType::Temp))?;
                    s.issue(Command::new(
                        CommandType::Move,
                        vec![Value::Int(i64::from(cycle % 4)), Value::Float(0.0)],
                    ))?;
                }
                s.issue(Command::new(CommandType::Bias, vec![Value::Int(0)]))?;
                s.issue(Command::new(CommandType::Sped, vec![Value::Float(140.0)]))?;
                let _ = s.n9_move_and_poll(Command::nullary(CommandType::Home));
                s.middlebox_mut()
                    .rig_mut()
                    .lab_mut()
                    .collision_checks_disabled = false;
                Ok(RunEnd::Crashed)
            }
            Err(e) => Err(e),
            Ok(_) => Err(RadError::Analysis(
                "staged tecan crash did not trigger".into(),
            )),
        };
    }
    s.n9_move_and_poll(arm_to(deck::VIAL_RACK))?;
    s.issue(Command::new(CommandType::Grip, vec![Value::Bool(false)]))?;
    s.n9_move_and_poll(Command::nullary(CommandType::Home))?;
    Ok(RunEnd::Completed)
}

/// P5: UR3e moves between two fixed poses at a configurable cruise
/// velocity (the Fig. 7c sweep). `velocity_mm_s` is the paper's linear
/// tool speed; the joint-space cruise velocity scales with it.
///
/// # Errors
///
/// Propagates device faults.
pub fn p5_velocity_run(s: &mut Session, velocity_mm_s: f64) -> Result<(), RadError> {
    s.issue(Command::nullary(CommandType::InitUr3Arm))?;
    // 240 mm effective lever: 250 mm/s ≈ 1.04 rad/s.
    let speed_rad_s = velocity_mm_s / 240.0;
    let description = format!("velocity={velocity_mm_s}mm/s");
    s.ur3e_move_joints(Ur3e::named_pose(2), speed_rad_s, 0.0, &description)?;
    s.ur3e_move_joints(Ur3e::named_pose(0), speed_rad_s, 0.0, &description)?;
    Ok(())
}

/// P6: UR3e carries a calibration weight between two poses (the
/// Fig. 7d sweep). `payload_g` is the carried mass in grams.
///
/// # Errors
///
/// Propagates device faults.
pub fn p6_payload_run(s: &mut Session, payload_g: f64) -> Result<(), RadError> {
    s.issue(Command::nullary(CommandType::InitUr3Arm))?;
    s.issue(Command::nullary(CommandType::OpenGripper))?;
    s.ur3e_move_joints(Ur3e::named_pose(1), 0.8, 0.0, "approach-weight")?;
    s.issue(Command::nullary(CommandType::CloseGripper))?;
    s.middlebox_mut()
        .rig_mut()
        .ur3e_mut()
        .set_payload_g(payload_g);
    let description = format!("payload={payload_g}g");
    let kg = payload_g / 1000.0;
    s.ur3e_move_joints(Ur3e::named_pose(2), 0.8, kg, &description)?;
    s.ur3e_move_joints(Ur3e::named_pose(1), 0.8, kg, &description)?;
    s.issue(Command::nullary(CommandType::OpenGripper))?;
    s.middlebox_mut().rig_mut().ur3e_mut().set_payload_g(0.0);
    s.ur3e_move_joints(Ur3e::named_pose(0), 0.8, 0.0, "retreat")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rad_core::{Label, ProcedureKind, RunId};

    fn run_p1(variant: P1Variant, seed: u64) -> (RunEnd, rad_store::CommandDataset) {
        let mut s = Session::new(seed);
        s.begin_run(
            RunId(0),
            ProcedureKind::AutomatedSolubilityN9,
            Label::Benign,
        );
        let end = p1_automated_solubility(&mut s, variant, "NABH4").unwrap();
        s.end_run();
        let (ds, _) = s.finish();
        (end, ds)
    }

    #[test]
    fn p1_normal_completes_with_quantos_and_tecan_commands() {
        let (end, ds) = run_p1(P1Variant::Normal, 11);
        assert_eq!(end, RunEnd::Completed);
        let hist = ds.command_histogram();
        assert!(hist.contains_key(&CommandType::StartDosing));
        assert!(hist.contains_key(&CommandType::TargetMass));
        assert!(hist.contains_key(&CommandType::TecanGetStatus));
        assert!(
            hist[&CommandType::Mvng] > hist[&CommandType::Arm],
            "polling dominates"
        );
    }

    #[test]
    fn p1_joystick_start_has_no_quantos_or_tecan_commands() {
        let (end, ds) = run_p1(P1Variant::JoystickStart, 12);
        assert_eq!(end, RunEnd::OperatorStop);
        let hist = ds.command_histogram();
        assert!(!hist
            .keys()
            .any(|c| c.device() == rad_core::DeviceKind::Quantos));
        assert!(!hist
            .keys()
            .any(|c| c.device() == rad_core::DeviceKind::Tecan));
        assert!(hist[&CommandType::Arm] > 20, "joystick use is substantial");
    }

    #[test]
    fn p1_door_crash_happens_after_dosing_began() {
        let (end, ds) = run_p1(P1Variant::DoorCrash, 13);
        assert_eq!(end, RunEnd::Crashed);
        let seq: Vec<CommandType> = ds.corpus();
        let dosing = seq
            .iter()
            .position(|c| *c == CommandType::StartDosing)
            .unwrap();
        let traces = ds.traces();
        let crash_trace = traces
            .iter()
            .find(|t| t.exception().is_some_and(|e| e.contains("collision")))
            .expect("a collision is traced");
        assert_eq!(crash_trace.command_type(), CommandType::FrontDoorPosition);
        let crash_index = traces
            .iter()
            .position(|t| t.id() == crash_trace.id())
            .unwrap();
        assert!(crash_index > dosing, "crash comes after start_dosing");
    }

    #[test]
    fn p2_early_variants_share_a_short_prefix() {
        let run_p2 = |variant, seed| {
            let mut s = Session::new(seed);
            s.begin_run(
                RunId(0),
                ProcedureKind::AutomatedSolubilityN9Ur3e,
                Label::Benign,
            );
            let end = p2_solubility_with_ur3e(&mut s, variant, "CSTI").unwrap();
            s.end_run();
            let (ds, _) = s.finish();
            (end, ds)
        };
        let (end17, ds17) = run_p2(P2Variant::DoorCrashEarly, 17);
        let (end18, ds18) = run_p2(P2Variant::WrongGripperStop, 18);
        let (end19, ds19) = run_p2(P2Variant::Normal, 19);
        assert_eq!(end17, RunEnd::Crashed);
        assert_eq!(end18, RunEnd::OperatorStop);
        assert_eq!(end19, RunEnd::Completed);
        // The truncated runs stop early (the paper says about
        // one-tenth of the experiment; our traces include the shared
        // init preamble and the post-incident activity, which bounds
        // how short a truncated trace can get). Structurally, neither
        // truncated run ever reaches the UR3e transport tour.
        assert!(ds17.len() < ds19.len(), "{} vs {}", ds17.len(), ds19.len());
        assert!(ds18.len() < ds19.len());
        for ds in [&ds17, &ds18] {
            assert!(!ds
                .command_histogram()
                .contains_key(&CommandType::MoveJoints));
        }
        assert!(ds19
            .command_histogram()
            .contains_key(&CommandType::MoveJoints));
    }

    #[test]
    fn p2_normal_records_the_five_power_legs() {
        let mut s = Session::new(21);
        s.begin_run(
            RunId(0),
            ProcedureKind::AutomatedSolubilityN9Ur3e,
            Label::Benign,
        );
        p2_solubility_with_ur3e(&mut s, P2Variant::Normal, "NABH4").unwrap();
        s.end_run();
        let (_, power) = s.finish();
        let legs: Vec<&str> = power
            .recordings()
            .iter()
            .map(|r| r.description.as_str())
            .filter(|d| d.starts_with('L'))
            .collect();
        assert_eq!(
            legs,
            vec!["L0-L1", "L1-L2", "L2-L3", "L3-L4", "L4-L5", "L5-L0"]
        );
    }

    #[test]
    fn p3_tecan_crash_is_at_the_very_end() {
        let mut s = Session::new(22);
        s.begin_run(
            RunId(0),
            ProcedureKind::CrystalSolubility,
            Label::Anomalous(rad_core::AnomalyCause::ArmVsTecan),
        );
        let end = p3_crystal_solubility(&mut s, P3Variant::TecanCrash).unwrap();
        s.end_run();
        assert_eq!(end, RunEnd::Crashed);
        let (ds, _) = s.finish();
        let crash_pos = ds
            .traces()
            .iter()
            .position(|t| t.exception().is_some_and(|e| e.contains("tecan")))
            .expect("tecan collision traced");
        // The collision is near the end of the scripted procedure; the
        // traces after it are the operator's recovery session.
        assert!(
            crash_pos as f64 > ds.len() as f64 * 0.6,
            "crash in the last part of the run ({crash_pos}/{})",
            ds.len()
        );
    }

    #[test]
    fn p3_normal_runs_are_nearly_identical() {
        let seq = |seed| {
            let mut s = Session::new(seed);
            s.begin_run(RunId(0), ProcedureKind::CrystalSolubility, Label::Benign);
            p3_crystal_solubility(&mut s, P3Variant::Normal).unwrap();
            s.end_run();
            let (ds, _) = s.finish();
            ds.run_sequence(RunId(0))
        };
        let a = seq(31);
        let b = seq(32);
        // Poll counts jitter, but the command vocabulary is identical.
        let set_a: std::collections::BTreeSet<_> = a.iter().collect();
        let set_b: std::collections::BTreeSet<_> = b.iter().collect();
        assert_eq!(set_a, set_b);
    }

    #[test]
    fn p5_and_p6_record_power_profiles() {
        let mut s = Session::new(50);
        s.begin_run(RunId(0), ProcedureKind::VelocitySweep, Label::Benign);
        p5_velocity_run(&mut s, 200.0).unwrap();
        s.end_run();
        s.begin_run(RunId(1), ProcedureKind::PayloadSweep, Label::Benign);
        p6_payload_run(&mut s, 500.0).unwrap();
        s.end_run();
        let (_, power) = s.finish();
        assert!(power
            .recordings()
            .iter()
            .any(|r| r.description.contains("velocity=200")));
        assert!(power
            .recordings()
            .iter()
            .any(|r| r.description.contains("payload=500")));
    }
}
