//! Synthetic attack traces — the paper's future-work item made
//! concrete.
//!
//! §VII: "while RAD is novel, we need to generate many more anomalous
//! traces for testing, or for benchmarking other IDS. However, doing
//! so in a manner that does not destroy equipment remains an open
//! question." A simulated lab has no equipment to destroy, so this
//! module generates labelled attack traces at will:
//!
//! - [`AttackKind::Replay`] — a captured benign session replayed
//!   against the rig (Pu et al.'s replay threat from §II); identical
//!   command *content*, wrong *context*.
//! - [`AttackKind::SpeedOverride`] — the Wu et al. speed attack: a
//!   benign workflow whose `SPED`/velocity parameters are silently
//!   inflated.
//! - [`AttackKind::CommandInjection`] — individually-legal probes
//!   (door toggles, dosing-pin fiddling, arm moves) interleaved into a
//!   benign stream in orders no procedure produces.
//! - [`AttackKind::Reorder`] — a benign session with windows of
//!   commands shuffled, modelling a man-in-the-middle permuting
//!   traffic.
//! - [`AttackKind::Sabotage`] — drive an arm toward another device
//!   (the crash geometry of the supervised anomalies, on demand).

use rad_core::{Command, CommandType, Label, ProcedureKind, RadError, RunId, Value};
use rand::seq::SliceRandom;

use crate::procedures;
use crate::session::Session;

/// The attack taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Replay a captured joystick session verbatim.
    Replay,
    /// Inflate motion speeds in an otherwise benign workflow.
    SpeedOverride,
    /// Interleave legal-but-out-of-grammar probe commands.
    CommandInjection,
    /// Shuffle windows of a benign stream.
    Reorder,
    /// Drive the N9 into the Tecan.
    Sabotage,
}

impl AttackKind {
    /// All attack kinds.
    pub const fn all() -> [AttackKind; 5] {
        [
            AttackKind::Replay,
            AttackKind::SpeedOverride,
            AttackKind::CommandInjection,
            AttackKind::Reorder,
            AttackKind::Sabotage,
        ]
    }

    /// Short name for reports.
    pub const fn name(self) -> &'static str {
        match self {
            AttackKind::Replay => "replay",
            AttackKind::SpeedOverride => "speed-override",
            AttackKind::CommandInjection => "command-injection",
            AttackKind::Reorder => "reorder",
            AttackKind::Sabotage => "sabotage",
        }
    }
}

/// A generated attack trace: the command sequence an IDS would observe.
#[derive(Debug, Clone)]
pub struct AttackTrace {
    /// Which attack produced it.
    pub kind: AttackKind,
    /// The observed command-type sequence.
    pub sequence: Vec<CommandType>,
}

/// Generates one attack trace of the given kind.
///
/// The trace is produced by actually driving a simulated rig (through
/// a [`Session`]), so timings, polls, and faults are as realistic as
/// the benign corpus — the generator does not fabricate token lists.
///
/// # Errors
///
/// Propagates unexpected device faults (staged collisions are expected
/// and absorbed).
pub fn generate(kind: AttackKind, seed: u64) -> Result<AttackTrace, RadError> {
    let mut session = Session::new(seed);
    session.begin_run(
        RunId(9000 + seed as u32),
        ProcedureKind::Unknown,
        Label::Unknown,
    );
    match kind {
        AttackKind::Replay => replay(&mut session)?,
        AttackKind::SpeedOverride => speed_override(&mut session)?,
        AttackKind::CommandInjection => command_injection(&mut session)?,
        AttackKind::Reorder => {
            // Reorder needs the raw benign stream; generate it, then
            // shuffle windows of the *observed* sequence.
            procedures::joystick_session(&mut session, 10)?;
            session.end_run();
            let (ds, _) = session.finish();
            let seq: Vec<CommandType> = ds.traces().iter().map(|t| t.command_type()).collect();
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            use rand::SeedableRng as _;
            // Permute the order of the windows themselves, then
            // shuffle within each. A purely window-local shuffle of an
            // Arm/Mvng-dominated stream can land on an in-grammar
            // permutation; moving whole windows relocates the rare
            // structural tokens (init/home prologue, teardown) so the
            // stream reliably leaves the benign grammar.
            let window = 4;
            let mut windows: Vec<Vec<CommandType>> =
                seq.chunks(window).map(<[CommandType]>::to_vec).collect();
            windows.shuffle(&mut rng);
            for chunk in &mut windows {
                let before = chunk.clone();
                chunk.shuffle(&mut rng);
                if *chunk == before && chunk.len() > 1 {
                    chunk.rotate_left(1);
                }
            }
            let seq: Vec<CommandType> = windows.concat();
            return Ok(AttackTrace {
                kind,
                sequence: seq,
            });
        }
        AttackKind::Sabotage => sabotage(&mut session)?,
    }
    session.end_run();
    let (ds, _) = session.finish();
    let sequence = ds.traces().iter().map(|t| t.command_type()).collect();
    Ok(AttackTrace { kind, sequence })
}

/// A batch of attack traces: `per_kind` of each kind.
///
/// # Errors
///
/// Propagates generation failures.
pub fn generate_batch(per_kind: usize, seed: u64) -> Result<Vec<AttackTrace>, RadError> {
    let mut out = Vec::with_capacity(per_kind * AttackKind::all().len());
    for kind in AttackKind::all() {
        for i in 0..per_kind {
            out.push(generate(kind, seed + i as u64)?);
        }
    }
    Ok(out)
}

fn replay(s: &mut Session) -> Result<(), RadError> {
    // The attacker captured a short joystick session and replays it
    // three times back-to-back with no operator think time — content
    // is benign, cadence and repetition are not.
    for _ in 0..3 {
        procedures::joystick_session(s, 4)?;
    }
    Ok(())
}

fn speed_override(s: &mut Session) -> Result<(), RadError> {
    procedures::init_n9(s)?;
    // The compromised script re-issues SPED with an inflated value
    // before every move — the Wu et al. speed attack.
    for i in 0..6 {
        let hot = 400.0 + s.jitter(0.0, 90.0);
        s.issue(Command::new(CommandType::Sped, vec![Value::Float(hot)]))?;
        let x = 50.0 + 40.0 * f64::from(i);
        s.n9_move_and_poll(Command::new(
            CommandType::Arm,
            vec![Value::Location {
                x,
                y: 100.0,
                z: 200.0,
            }],
        ))?;
    }
    Ok(())
}

fn command_injection(s: &mut Session) -> Result<(), RadError> {
    procedures::init_n9(s)?;
    s.issue(Command::nullary(CommandType::InitQuantos))?;
    // Probing: alternate door toggles, pin fiddling, and short arm
    // moves — all individually legal.
    for i in 0..5 {
        let open = i % 2 == 0;
        s.issue_blocking(Command::new(
            CommandType::FrontDoorPosition,
            vec![Value::Str(if open { "open" } else { "close" }.into())],
        ))?;
        s.issue(Command::nullary(CommandType::UnlockDosingPin))?;
        s.issue(Command::nullary(CommandType::LockDosingPin))?;
        let y = 50.0 + 30.0 * f64::from(i);
        s.n9_move_and_poll(Command::new(
            CommandType::Arm,
            vec![Value::Location {
                x: 300.0,
                y,
                z: 200.0,
            }],
        ))?;
    }
    // Leave the door closed so the trace ends cleanly.
    s.issue_blocking(Command::new(
        CommandType::FrontDoorPosition,
        vec![Value::Str("close".into())],
    ))?;
    Ok(())
}

fn sabotage(s: &mut Session) -> Result<(), RadError> {
    procedures::init_n9(s)?;
    // Creep toward the Tecan, then lunge through it.
    s.n9_move_and_poll(Command::new(
        CommandType::Arm,
        vec![Value::Location {
            x: 300.0,
            y: 300.0,
            z: 120.0,
        }],
    ))?;
    let lunge = s.n9_move_and_poll(Command::new(
        CommandType::Arm,
        vec![Value::Location {
            x: 120.0,
            y: 500.0,
            z: 120.0,
        }],
    ));
    match lunge {
        Err(RadError::Device(rad_core::DeviceFault::Collision { .. })) => Ok(()),
        Err(e) => Err(e),
        Ok(()) => Err(RadError::Analysis(
            "sabotage move should have collided".into(),
        )),
    }
}

/// Evaluates a fitted detector against a benign/attack test mix and
/// returns the confusion matrix (the IDS-benchmarking use case).
///
/// # Errors
///
/// Propagates scoring failures on degenerate sequences.
pub fn benchmark_detector(
    detector: &rad_analysis::detector::FittedDetector<CommandType>,
    benign: &[Vec<CommandType>],
    attacks: &[AttackTrace],
) -> Result<rad_analysis::ConfusionMatrix, RadError> {
    let mut cm = rad_analysis::ConfusionMatrix::new();
    for seq in benign {
        cm.record(false, detector.is_anomalous(seq)?);
    }
    for attack in attacks {
        cm.record(true, detector.is_anomalous(&attack.sequence)?);
    }
    Ok(cm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rad_analysis::PerplexityDetector;

    /// A small benign corpus from the supervised runs.
    fn benign_corpus() -> Vec<Vec<CommandType>> {
        crate::CampaignBuilder::new(5)
            .supervised_only()
            .build()
            .command()
            .supervised_sequences()
            .into_iter()
            .filter(|(meta, _)| !meta.label().is_anomalous())
            .map(|(_, seq)| seq)
            .collect()
    }

    #[test]
    fn every_attack_kind_generates_a_nonempty_trace() {
        for kind in AttackKind::all() {
            let trace = generate(kind, 1).unwrap();
            assert!(trace.sequence.len() >= 10, "{} too short", kind.name());
        }
    }

    #[test]
    fn sabotage_traces_contain_the_collision() {
        let mut session = Session::new(9);
        session.begin_run(RunId(0), ProcedureKind::Unknown, Label::Unknown);
        sabotage(&mut session).unwrap();
        session.end_run();
        let (ds, _) = session.finish();
        assert!(ds
            .traces()
            .iter()
            .any(|t| t.exception().is_some_and(|e| e.contains("tecan"))));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(AttackKind::CommandInjection, 3).unwrap();
        let b = generate(AttackKind::CommandInjection, 3).unwrap();
        assert_eq!(a.sequence, b.sequence);
        // The reorder attack is seed-sensitive in its very token order.
        let c = generate(AttackKind::Reorder, 3).unwrap();
        let d = generate(AttackKind::Reorder, 4).unwrap();
        assert_ne!(c.sequence, d.sequence);
    }

    #[test]
    fn detector_catches_grammar_attacks_but_replay_can_evade() {
        let benign = benign_corpus();
        // Interleave the split: a tail split leaves every run of the
        // late procedures out of training, so those benign calibration
        // runs score as out-of-model and inflate the Jenks threshold
        // past what grammar attacks on short sessions reach.
        let train: Vec<Vec<CommandType>> = benign.iter().step_by(2).cloned().collect();
        let calibrate: Vec<Vec<CommandType>> = benign.iter().skip(1).step_by(2).cloned().collect();
        let detector = PerplexityDetector::new(3).fit(&train, &calibrate).unwrap();
        // Grammar-breaking attacks must always trip the detector.
        for kind in [AttackKind::CommandInjection, AttackKind::Reorder] {
            for seed in 100..103 {
                let attack = generate(kind, seed).unwrap();
                assert!(
                    detector.is_anomalous(&attack.sequence).unwrap(),
                    "{} (seed {seed}) evaded the detector",
                    kind.name()
                );
            }
        }
        // Across the whole taxonomy, at least half are caught — pure
        // replays reuse benign grammar verbatim and can evade an
        // order-based IDS, which is exactly the paper's argument for
        // the power side channel (RQ3).
        let attacks = generate_batch(2, 100).unwrap();
        let cm = benchmark_detector(&detector, &calibrate, &attacks).unwrap();
        assert!(cm.recall() >= 0.5, "overall attack recall too low: {cm}");
    }

    #[test]
    fn batch_covers_all_kinds() {
        let batch = generate_batch(1, 50).unwrap();
        assert_eq!(batch.len(), AttackKind::all().len());
        let kinds: std::collections::BTreeSet<&str> = batch.iter().map(|t| t.kind.name()).collect();
        assert_eq!(kinds.len(), AttackKind::all().len());
    }
}
