//! Detection rates of the *streaming* perplexity stage over the
//! synthetic attack corpus — the IDS-benchmarking claim of the
//! streaming plane, with per-kind bounds. The measured rates are
//! tabulated in `EXPERIMENTS.md` ("Streaming detection plane").
//!
//! Two claims:
//!
//! 1. Per [`AttackKind`], the streaming stage detects at least as many
//!    attacks as the bound the batch experiments established —
//!    grammar-breaking attacks (command injection, reorder) always
//!    trip it; replay, which reuses legal grammar, is allowed to
//!    evade.
//! 2. The streaming confusion matrix over a benign/attack mix equals
//!    the batch detector's exactly: recasting the detector as a sink
//!    stage changes not one verdict.

use rad_analysis::detector::FittedDetector;
use rad_analysis::PerplexityDetector;
use rad_core::CommandType;
use rad_workloads::attacks::{benchmark_detector, generate_batch};
use rad_workloads::{benchmark_streaming_detector, AttackKind, CampaignBuilder};

/// The benign supervised runs of a small campaign, split interleaved
/// (a tail split would leave whole procedures out of training).
fn fitted() -> (FittedDetector<CommandType>, Vec<Vec<CommandType>>) {
    let benign: Vec<Vec<CommandType>> = CampaignBuilder::new(5)
        .supervised_only()
        .build()
        .command()
        .supervised_sequences()
        .into_iter()
        .filter(|(meta, _)| !meta.label().is_anomalous())
        .map(|(_, seq)| seq)
        .collect();
    let train: Vec<Vec<CommandType>> = benign.iter().step_by(2).cloned().collect();
    let calibrate: Vec<Vec<CommandType>> = benign.iter().skip(1).step_by(2).cloned().collect();
    let detector = PerplexityDetector::new(3).fit(&train, &calibrate).unwrap();
    (detector, calibrate)
}

#[test]
fn streaming_detection_rates_meet_per_kind_bounds() {
    let (detector, _) = fitted();
    const PER_KIND: usize = 6;
    let attacks = generate_batch(PER_KIND, 77).unwrap();

    for kind in AttackKind::all() {
        let of_kind: Vec<_> = attacks.iter().filter(|a| a.kind == kind).cloned().collect();
        assert_eq!(of_kind.len(), PER_KIND);
        let cm = benchmark_streaming_detector(&detector, &[], &of_kind, 7).unwrap();
        let detected = cm.true_positives() as usize;

        // Grammar-breaking attacks must never slip through; attacks
        // that stay inside legal grammar get slack — replay most of
        // all, since it replays genuinely benign transitions.
        let floor = match kind {
            AttackKind::CommandInjection | AttackKind::Reorder => PER_KIND,
            AttackKind::SpeedOverride | AttackKind::Sabotage => PER_KIND - 1,
            AttackKind::Replay => PER_KIND - 2,
        };
        assert!(
            detected >= floor,
            "{kind:?}: streaming stage detected {detected}/{PER_KIND}, bound {floor}"
        );
    }
}

#[test]
fn streaming_confusion_matrix_equals_batch_exactly() {
    let (detector, calibrate) = fitted();
    let attacks = generate_batch(4, 99).unwrap();
    let streaming = benchmark_streaming_detector(&detector, &calibrate, &attacks, 7).unwrap();
    let batch = benchmark_detector(&detector, &calibrate, &attacks).unwrap();
    assert_eq!(
        streaming, batch,
        "sink-stage verdicts diverged from the batch detector"
    );
    // The mix is non-trivial in both directions.
    assert!(streaming.true_positives() > 0);
    assert!(streaming.true_positives() + streaming.false_negatives() == attacks.len() as u64);
}
