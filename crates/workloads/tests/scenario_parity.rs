//! Golden parity: a campaign built from a committed scenario document
//! is **byte-identical** to its hand-wired equivalent.
//!
//! Each test loads one of the JSON files under `examples/scenarios/`,
//! runs it through the scenario plane ([`run_scenario`] or
//! [`CampaignBuilder::from_spec`]), wires the same campaign by hand
//! through the pre-spec builder API, exports both to RAD bundles, and
//! compares every exported file byte for byte. The suite covers the
//! plain supervised campaign, a fault-plan scenario, the kill/resume
//! scenario (whose scheduled crash fires and is recovered), and the
//! streaming-detection scenario — so any drift between the
//! declarative plane and the imperative API fails loudly at the
//! committed seeds.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use rad_middlebox::{FaultPlan, FaultProfile};
use rad_store::export::export_rad_alerted;
use rad_workloads::scenario::{run_scenario, RunOptions, ScenarioSpec};
use rad_workloads::{
    detect_campaign, fit_detector, CampaignBuilder, CampaignDataset, PowerAlertConfig,
};

fn scenario_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/scenarios")
}

fn load(name: &str) -> ScenarioSpec {
    let path = scenario_dir().join(name);
    let text =
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    ScenarioSpec::from_json_str(&text).unwrap_or_else(|e| panic!("parsing {name}: {e}"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rad-parity-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Every exported file under `dir` (skipping the runner's `store/` and
/// `segments/` working directories), keyed by bundle-relative path.
fn bundle_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    collect(dir, dir, &mut files);
    files
}

fn collect(root: &Path, dir: &Path, files: &mut BTreeMap<String, Vec<u8>>) {
    for entry in fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if path.is_dir() {
            if path.parent() == Some(root) && (name == "store" || name == "segments") {
                continue;
            }
            collect(root, &path, files);
        } else {
            let rel = path
                .strip_prefix(root)
                .unwrap()
                .to_string_lossy()
                .into_owned();
            files.insert(rel, fs::read(&path).unwrap());
        }
    }
}

fn assert_bundles_identical(spec_dir: &Path, hand_dir: &Path) {
    let spec_files = bundle_files(spec_dir);
    let hand_files = bundle_files(hand_dir);
    assert_eq!(
        spec_files.keys().collect::<Vec<_>>(),
        hand_files.keys().collect::<Vec<_>>(),
        "bundles list different files"
    );
    for (rel, bytes) in &spec_files {
        assert_eq!(
            bytes, &hand_files[rel],
            "bundle file {rel} differs between spec-built and hand-wired"
        );
    }
    assert!(
        spec_files.contains_key("MANIFEST.json"),
        "bundle has no manifest — nothing was exported"
    );
}

fn export_hand_wired(dataset: &CampaignDataset, alerts: &[rad_core::Alert], dir: &Path) {
    export_rad_alerted(dataset.command(), dataset.power(), alerts, dir, None).unwrap();
}

#[test]
fn supervised_scenario_matches_hand_wired_bundle() {
    let spec = load("supervised_small.json");
    let out = tmpdir("supervised-spec");
    let report = run_scenario(
        &spec,
        &RunOptions {
            out_dir: Some(out.clone()),
            addr_override: None,
        },
    )
    .unwrap();
    assert_eq!(report.supervised_runs, 25);

    let hand = tmpdir("supervised-hand");
    let dataset = CampaignBuilder::new(42).supervised_only().build();
    export_hand_wired(&dataset, &[], &hand);

    assert_bundles_identical(&out, &hand);
    let _ = fs::remove_dir_all(&out);
    let _ = fs::remove_dir_all(&hand);
}

#[test]
fn fault_plan_scenario_matches_hand_wired_bundle() {
    let spec = load("fault_drop.json");
    let out = tmpdir("fault-spec");
    run_scenario(
        &spec,
        &RunOptions {
            out_dir: Some(out.clone()),
            addr_override: None,
        },
    )
    .unwrap();

    let hand = tmpdir("fault-hand");
    let profile = FaultProfile {
        drop_prob: 0.05,
        delay_prob: 0.1,
        delay_chunks: 3,
        ..FaultProfile::none()
    };
    let dataset = CampaignBuilder::new(7)
        .supervised_only()
        .with_fault_plan(FaultPlan::new(7, profile))
        .build();
    export_hand_wired(&dataset, &[], &hand);

    assert_bundles_identical(&out, &hand);
    let _ = fs::remove_dir_all(&out);
    let _ = fs::remove_dir_all(&hand);
}

#[test]
fn kill_resume_scenario_recovers_byte_identical_bundle() {
    let spec = load("kill_resume.json");
    assert!(
        spec.injects_crash(),
        "committed scenario must schedule a crash"
    );
    let out = tmpdir("kill-spec");
    let report = run_scenario(
        &spec,
        &RunOptions {
            out_dir: Some(out.clone()),
            addr_override: None,
        },
    )
    .unwrap();
    assert!(
        report.resumed_after_crash,
        "the scheduled crash must fire and be recovered"
    );

    // The hand-wired equivalent is the *uninterrupted* build: resume
    // must hide the crash entirely.
    let hand = tmpdir("kill-hand");
    let dataset = CampaignBuilder::new(23).supervised_only().build();
    export_hand_wired(&dataset, &[], &hand);

    assert_bundles_identical(&out, &hand);
    let _ = fs::remove_dir_all(&out);
    let _ = fs::remove_dir_all(&hand);
}

#[test]
fn detect_scenario_matches_hand_wired_alerted_bundle() {
    let spec = load("detect_stream.json");
    let out = tmpdir("detect-spec");
    let report = run_scenario(
        &spec,
        &RunOptions {
            out_dir: Some(out.clone()),
            addr_override: None,
        },
    )
    .unwrap();
    assert!(report.alerts > 0, "committed seed must raise alerts");

    let hand = tmpdir("detect-hand");
    let dataset = CampaignBuilder::new(11).supervised_only().build();
    let detector = fit_detector(&dataset, 2).unwrap();
    let power = PowerAlertConfig {
        min_prominence: 0.05,
        ..PowerAlertConfig::default()
    };
    let outcome =
        detect_campaign(&dataset, &detector, power, rad_power::DEFAULT_CHUNK_TICKS).unwrap();
    assert_eq!(outcome.alerts.len() as u64, report.alerts);
    export_hand_wired(&dataset, &outcome.alerts, &hand);

    assert_bundles_identical(&out, &hand);
    let _ = fs::remove_dir_all(&out);
    let _ = fs::remove_dir_all(&hand);
}
