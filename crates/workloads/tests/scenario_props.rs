//! Property tests on the scenario plane's serde boundary.
//!
//! Three invariants, each under randomized documents:
//!
//! 1. parse → serialize → parse is the identity: any valid
//!    [`ScenarioSpec`] survives its canonical JSON round trip exactly,
//!    every section included;
//! 2. an unknown field anywhere in the document is rejected with a
//!    typed [`RadError::Spec`] naming the field's dotted path;
//! 3. a malformed seed (negative, fractional, or non-numeric) is
//!    rejected with a typed error naming `seed` — never a panic, never
//!    a silent default.
//!
//! Case counts honour `PROPTEST_CASES` (the CI scenario-matrix job
//! deepens them).

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rad_analysis::streaming::AlertPolicy;
use rad_analysis::{PerplexitySpec, PowerStatsSpec, ThresholdSpec};
use rad_core::RadError;
use rad_middlebox::rpc::RetrySpec;
use rad_middlebox::{FaultProfile, FaultSpec, WireCodecKind};
use rad_store::wal::{CrashPlan, CrashSite, CrashSpec};
use rad_store::DurableSpec;
use rad_workloads::remote::DisconnectPolicy;
use rad_workloads::scenario::{ScenarioSpec, TransportMode, TransportSpec};
use rad_workloads::TenantSpec;
use serde_json::Value as Json;

/// A probability that prints and parses exactly (thousandths).
fn prob() -> BoxedStrategy<f64> {
    (0u32..=1000).prop_map(|k| f64::from(k) / 1000.0).boxed()
}

/// A fault probability small enough that five of them still sum ≤ 1,
/// which [`FaultPlan::new`] insists on.
fn fault_prob() -> BoxedStrategy<f64> {
    (0u32..=200).prop_map(|k| f64::from(k) / 1000.0).boxed()
}

fn faults() -> BoxedStrategy<FaultSpec> {
    (
        (any::<u64>(), fault_prob(), fault_prob(), fault_prob()),
        (
            fault_prob(),
            fault_prob(),
            1u32..8,
            proptest::option::of(1u64..10_000),
        ),
        proptest::collection::vec((0u64..1_000_000, 1u64..1_000_000), 0..3),
    )
        .prop_map(
            |((seed, drop, dup, corrupt), (reorder, delay, chunks, disc), outages)| FaultSpec {
                seed,
                profile: FaultProfile {
                    drop_prob: drop,
                    duplicate_prob: dup,
                    corrupt_prob: corrupt,
                    reorder_prob: reorder,
                    delay_prob: delay,
                    delay_chunks: chunks,
                    disconnect_after: disc,
                },
                outages,
            },
        )
        .boxed()
}

fn crash() -> BoxedStrategy<CrashSpec> {
    let site = prop_oneof![
        Just(CrashSite::MidRecord),
        Just(CrashSite::PreFsync),
        Just(CrashSite::MidRotation),
        Just(CrashSite::MidCompaction),
        Just(CrashSite::MidRename),
    ];
    prop_oneof![
        (site, 1u64..100).prop_map(|(s, n)| CrashSpec::from_plan(&CrashPlan::at(s, n))),
        (any::<u64>(), prob()).prop_map(|(s, p)| CrashSpec::from_plan(&CrashPlan::seeded(s, p))),
    ]
    .boxed()
}

fn durable() -> BoxedStrategy<DurableSpec> {
    (
        1024u64..1_048_576,
        1u64..128,
        proptest::option::of(1u64..10_000),
        proptest::option::of(crash()),
    )
        .prop_map(
            |(segment_bytes, sync_every, checkpoint_every_ops, crash)| DurableSpec {
                segment_bytes,
                sync_every,
                checkpoint_every_ops,
                crash,
            },
        )
        .boxed()
}

fn detect() -> BoxedStrategy<rad_workloads::DetectSpec> {
    let policy = prop_oneof![
        Just(AlertPolicy::RunEnd),
        (0usize..64).prop_map(|w| AlertPolicy::Crossing { window: w }),
    ];
    let threshold = prop_oneof![
        Just(ThresholdSpec::Calibrated),
        prob().prop_map(|p| ThresholdSpec::Fixed(p * 10.0)),
        (1usize..256).prop_map(ThresholdSpec::Adaptive),
    ];
    let power = (0usize..122, prob(), proptest::option::of(prob())).prop_map(
        |(lane, min_prominence, rms)| PowerStatsSpec {
            lane,
            min_prominence,
            // Absent serializes as the infinite default.
            rms_threshold: rms.unwrap_or(f64::INFINITY),
        },
    );
    ((2usize..5, policy, threshold), power, 1usize..8192)
        .prop_map(
            |((order, policy, threshold), power, chunk)| rad_workloads::DetectSpec {
                perplexity: PerplexitySpec {
                    order,
                    policy,
                    threshold,
                },
                power,
                chunk,
            },
        )
        .boxed()
}

fn retry() -> BoxedStrategy<RetrySpec> {
    (
        (1u32..8, 1u64..5_000, 1u32..5),
        (1u64..10_000, 1u64..60_000, any::<u64>(), 0u32..=1000),
    )
        .prop_map(
            |((attempts, backoff, factor), (timeout, deadline, seed, jitter))| RetrySpec {
                max_attempts: attempts,
                initial_backoff_ms: backoff,
                backoff_factor: factor,
                attempt_timeout_ms: timeout,
                deadline_ms: deadline,
                jitter_seed: seed,
                jitter_per_mille: jitter,
            },
        )
        .boxed()
}

fn transport() -> BoxedStrategy<TransportSpec> {
    let tenant = (
        "[a-z]{1,8}",
        proptest::option::of(1usize..1_000),
        proptest::option::of(retry()),
        prop_oneof![
            Just(DisconnectPolicy::Fail),
            Just(DisconnectPolicy::Degrade)
        ],
    )
        .prop_map(|(tenant, max_commands, retry, on_disconnect)| TenantSpec {
            tenant,
            max_commands,
            retry,
            on_disconnect,
        });
    (
        prop_oneof![Just(TransportMode::Tcp), Just(TransportMode::Unix)],
        proptest::option::of("[a-z0-9:.]{1,16}"),
        proptest::collection::vec(tenant, 1..4),
        prop_oneof![Just(WireCodecKind::Json), Just(WireCodecKind::Binary)],
        proptest::option::of(1usize..256),
    )
        .prop_map(
            |(mode, addr, tenants, codec, pipeline_depth)| TransportSpec {
                mode,
                addr,
                tenants,
                codec,
                pipeline_depth,
            },
        )
        .boxed()
}

/// Name, seed, scale, and the two campaign toggles.
fn base() -> BoxedStrategy<(String, u64, f64, bool, bool)> {
    (
        "[a-z][a-z0-9_]{0,15}",
        any::<u64>(),
        (1u32..400).prop_map(|k| f64::from(k) / 100.0),
        any::<bool>(),
        any::<bool>(),
    )
        .boxed()
}

/// A full random scenario. Socket transports exclude the local-only
/// sections (the parser enforces exactly that), so the strategy
/// branches on transport mode first.
fn scenario() -> BoxedStrategy<ScenarioSpec> {
    let in_process = (
        base(),
        proptest::option::of(faults()),
        proptest::option::of(durable()),
        proptest::option::of(detect()),
        proptest::option::of((0u64..1_000_000).prop_map(|s| (s, s + 500_000))),
    )
        .prop_map(
            |((name, seed, scale, fillers, power), faults, durable, detect, window)| ScenarioSpec {
                name,
                seed,
                scale,
                fillers,
                power_experiments: power,
                faults,
                durable,
                detect,
                transport: TransportSpec {
                    mode: TransportMode::InProcess,
                    addr: None,
                    tenants: Vec::new(),
                    codec: WireCodecKind::Json,
                    pipeline_depth: None,
                },
                replay: window.map(|(start_us, end_us)| rad_workloads::scenario::ReplaySpec {
                    start_us,
                    end_us,
                }),
            },
        );
    let remote = (base(), proptest::option::of(faults()), transport()).prop_map(
        |((name, seed, scale, fillers, power), faults, transport)| ScenarioSpec {
            name,
            seed,
            scale,
            fillers,
            power_experiments: power,
            faults,
            durable: None,
            detect: None,
            transport,
            replay: None,
        },
    );
    prop_oneof![in_process, remote].boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse(serialize(spec)) == spec for every valid scenario — the
    /// canonical JSON form loses nothing, including nested fault
    /// profiles, crash schedules, detector stacks, and tenants.
    #[test]
    fn canonical_json_round_trip_is_identity(spec in scenario()) {
        let text = spec.to_json_string();
        let reparsed = ScenarioSpec::from_json_str(&text)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}\n{text}")))?;
        prop_assert_eq!(&spec, &reparsed);
        // And serialization itself is deterministic.
        prop_assert_eq!(text, reparsed.to_json_string());
    }

    /// An unknown field at any nesting level fails parsing with a
    /// typed error whose `field` is the dotted path of the intruder.
    #[test]
    fn unknown_fields_are_rejected_with_their_dotted_path(
        spec in scenario(),
        intruder in "[a-z]{3,10}",
        target in 0usize..3,
    ) {
        let mut value = spec.to_json();
        let root = value.as_object_mut().expect("canonical form is an object");
        // Never collide with a real key.
        let intruder = format!("zz_{intruder}");
        let path = match target {
            0 => {
                root.insert(intruder.clone(), Json::from(1u64));
                intruder
            }
            1 => {
                let campaign = root
                    .get_mut("campaign")
                    .and_then(Json::as_object_mut)
                    .expect("canonical form always has a campaign section");
                campaign.insert(intruder.clone(), Json::from(1u64));
                format!("campaign.{intruder}")
            }
            _ => {
                // Sections parse before the socket-mode cross-checks,
                // so the intruder inside `replay.window` is caught with
                // its exact path even in remote scenarios.
                let mut window = serde_json::Map::new();
                window.insert("start_us".into(), Json::from(0u64));
                window.insert("end_us".into(), Json::from(1u64));
                window.insert(intruder.clone(), Json::from(1u64));
                let mut replay = serde_json::Map::new();
                replay.insert("window".into(), Json::Object(window));
                root.insert("replay".into(), Json::Object(replay));
                format!("replay.window.{intruder}")
            }
        };
        match ScenarioSpec::from_json(&value) {
            Ok(_) => return Err(TestCaseError::fail(format!("intruder {path} accepted"))),
            Err(RadError::Spec { field, .. }) => prop_assert_eq!(field, path),
            Err(other) => return Err(TestCaseError::fail(format!("untyped error: {other}"))),
        }
    }

    /// The wire knobs parse strictly: a bad codec name, a zero or
    /// ill-typed pipeline depth, or either knob on an in-process
    /// scenario is rejected with the knob's dotted path.
    #[test]
    fn wire_knobs_are_rejected_with_their_dotted_path(
        choice in 0usize..5,
        depth in 1u64..1_000,
    ) {
        let mut transport = serde_json::Map::new();
        let path = if choice < 3 {
            let mut tenant = serde_json::Map::new();
            tenant.insert("tenant".into(), Json::from("t"));
            transport.insert("mode".into(), Json::from("tcp"));
            transport.insert("tenants".into(), Json::Array(vec![Json::Object(tenant)]));
            match choice {
                0 => {
                    transport.insert("codec".into(), Json::from("protobuf"));
                    "transport.codec"
                }
                1 => {
                    transport.insert("pipeline_depth".into(), Json::from(0u64));
                    "transport.pipeline_depth"
                }
                _ => {
                    transport.insert("pipeline_depth".into(), Json::from(depth as f64 + 0.5));
                    "transport.pipeline_depth"
                }
            }
        } else {
            // In-process scenarios have no wire to configure.
            transport.insert("mode".into(), Json::from("in_process"));
            if choice == 3 {
                transport.insert("codec".into(), Json::from("binary"));
                "transport.codec"
            } else {
                transport.insert("pipeline_depth".into(), Json::from(depth));
                "transport.pipeline_depth"
            }
        };
        let mut root = serde_json::Map::new();
        root.insert("name".into(), Json::from("wire_knobs"));
        root.insert("seed".into(), Json::from(7u64));
        root.insert("transport".into(), Json::Object(transport));
        match ScenarioSpec::from_json(&Json::Object(root)) {
            Ok(_) => return Err(TestCaseError::fail(format!("bad {path} accepted"))),
            Err(RadError::Spec { field, .. }) => prop_assert_eq!(field, path),
            Err(other) => return Err(TestCaseError::fail(format!("untyped error: {other}"))),
        }
    }

    /// Bad seeds — negative, fractional, or textual — are typed
    /// `RadError::Spec` rejections naming `seed`.
    #[test]
    fn malformed_seeds_are_rejected_with_typed_errors(
        choice in 0usize..3,
        magnitude in 1i64..1_000_000,
    ) {
        let seed = match choice {
            0 => Json::from(-magnitude),
            1 => Json::from(magnitude as f64 + 0.5),
            _ => Json::from(format!("{magnitude}")),
        };
        let mut root = serde_json::Map::new();
        root.insert("name".into(), Json::from("bad_seed"));
        root.insert("seed".into(), seed);
        match ScenarioSpec::from_json(&Json::Object(root)) {
            Ok(_) => return Err(TestCaseError::fail("malformed seed accepted")),
            Err(RadError::Spec { field, .. }) => prop_assert_eq!(field, "seed"),
            Err(other) => return Err(TestCaseError::fail(format!("untyped error: {other}"))),
        }
    }
}
