//! The RAD analyses: commands as a language.
//!
//! §V of the paper treats command sequences as sentences and applies
//! interpretable NLP machinery to them. This crate implements that
//! pipeline end to end, generic over the token type so both the
//! paper's command-only models and the parameter-aware ablation run on
//! the same code:
//!
//! - [`NgramCounter`] — n-gram frequency study (Fig. 5b).
//! - [`TfIdf`] — procedure fingerprinting via TF-IDF + cosine
//!   similarity (Fig. 6, RQ1).
//! - [`CommandLm`] — n-gram language model with configurable
//!   [`Smoothing`], and its perplexity score (RQ2).
//! - [`jenks_two_class`] — Jenks natural-breaks clustering of
//!   perplexity scores into benign/anomalous.
//! - [`CrossValidation`] — the 5-fold protocol of §V-B.
//! - [`ConfusionMatrix`] — accuracy, weighted accuracy, precision,
//!   recall, F1 (Table I).
//! - [`PerplexityDetector`] — the assembled anomaly detector, with a
//!   streaming mode for the real-time use case the paper motivates.
//!
//! The counting and scoring hot paths run over interned token ids
//! ([`intern::Vocab`] / [`intern::TokenId`]) with packed n-gram keys,
//! so fitting and scoring allocate nothing per window; the original
//! token-keyed algorithms survive in [`mod@reference`] as the semantic
//! oracle. Cross-validation folds evaluate in parallel over the
//! once-interned corpus.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod crossval;
pub mod detector;
pub mod hmm;
pub mod intern;
pub mod jenks;
pub mod lm;
pub mod metrics;
pub mod ngram;
pub mod reference;
pub mod specmine;
pub mod streaming;
pub mod tfidf;
pub mod token;

pub use baseline::{
    evaluate_classifier, RareCommandDetector, RunClassifier, RunLengthDetector, TransitionAllowlist,
};
pub use crossval::CrossValidation;
pub use detector::PerplexityDetector;
pub use hmm::{Hmm, HmmDetector};
pub use intern::{InternedNgramCounter, TokenId, Vocab};
pub use jenks::{jenks_breaks, jenks_two_class};
pub use lm::{CommandLm, InternedLm, Smoothing};
pub use metrics::ConfusionMatrix;
pub use ngram::NgramCounter;
pub use reference::{ReferenceLm, ReferenceNgramCounter};
pub use specmine::{synthesize, MinedSpec, SpecViolation};
pub use streaming::{
    AlertPolicy, PerplexitySpec, PowerStatsSpec, ProcedureFingerprints, RecordingStats, RunScore,
    StreamingFingerprint, StreamingPerplexity, StreamingPowerStats, Threshold, ThresholdSpec,
    WindowedJenks,
};
pub use tfidf::TfIdf;
pub use token::{corpus_from_segments, labelled_runs, CommandTokenizer, ParamTokenizer, Tokenizer};
