//! Token interning: the allocation-free backbone of the analysis
//! pipeline.
//!
//! Every analysis in this crate is generic over a token type `T`
//! (command mnemonics, parameter-bucketed strings, ...). Hashing and
//! cloning those tokens per n-gram window dominated the original
//! profiles: counting n-grams over a `HashMap<Vec<T>, u64>` allocates
//! a fresh `Vec<T>` for every window and re-hashes full token values
//! on every probe.
//!
//! [`Vocab`] maps each distinct token to a dense [`TokenId`] exactly
//! once per corpus. Downstream structures
//! ([`InternedNgramCounter`], [`crate::lm::InternedLm`]) then key
//! n-grams of order ≤ [`PACKED_ORDER`] as a packed fixed-size
//! `[u32; 4]` — built on the stack, no per-window allocation — and
//! hash it with a fast multiplicative hasher ([`FxHasher`]). Orders
//! above [`PACKED_ORDER`] spill to a boxed id slice and keep working,
//! just without the allocation-free guarantee.
//!
//! The public generic types ([`crate::NgramCounter`],
//! [`crate::CommandLm`]) are thin wrappers over these internals: they
//! own a `Vocab<T>` and translate at the API boundary, so callers see
//! the same token-typed interface as before.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Highest n-gram order stored as a packed stack key; higher orders
/// spill to a heap-allocated id slice.
pub const PACKED_ORDER: usize = 4;

/// Sentinel id used (a) to pad unused slots of a packed key and (b) as
/// the out-of-vocabulary id during read-only lookups. It is never
/// assigned to a real token, so any key containing it in a data slot
/// misses every stored entry — exactly the "count 0 for unseen"
/// semantics the generic API had.
const PAD: u32 = u32::MAX;

/// A dense identifier for an interned token.
///
/// Ids are assigned in first-seen order, starting at zero, and are
/// stable for the lifetime of the [`Vocab`] that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TokenId(u32);

impl TokenId {
    /// The id as a dense index (0-based, contiguous).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    fn raw(self) -> u32 {
        self.0
    }
}

/// An interner from tokens to dense [`TokenId`]s.
///
/// # Examples
///
/// ```
/// use rad_analysis::intern::Vocab;
///
/// let mut vocab = Vocab::new();
/// let arm = vocab.intern(&"ARM");
/// let mvng = vocab.intern(&"MVNG");
/// assert_ne!(arm, mvng);
/// assert_eq!(vocab.intern(&"ARM"), arm, "interning is idempotent");
/// assert_eq!(vocab.resolve(arm), &"ARM");
/// assert_eq!(vocab.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Vocab<T> {
    tokens: Vec<T>,
    index: HashMap<T, TokenId, FxBuildHasher>,
}

impl<T> Default for Vocab<T> {
    fn default() -> Self {
        Vocab::new()
    }
}

impl<T> Vocab<T> {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Vocab {
            tokens: Vec::new(),
            index: HashMap::default(),
        }
    }

    /// Number of distinct tokens interned so far.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether no token has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The token behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this vocabulary.
    pub fn resolve(&self, id: TokenId) -> &T {
        &self.tokens[id.index()]
    }

    /// All interned tokens, in id order.
    pub fn tokens(&self) -> &[T] {
        &self.tokens
    }
}

impl<T: Clone + Eq + Hash> Vocab<T> {
    /// The id for `token`, interning (and cloning) it on first sight.
    ///
    /// # Panics
    ///
    /// Panics if the vocabulary exceeds `u32::MAX - 1` distinct tokens.
    pub fn intern(&mut self, token: &T) -> TokenId {
        if let Some(&id) = self.index.get(token) {
            return id;
        }
        let raw = u32::try_from(self.tokens.len()).expect("vocabulary exceeds u32 ids");
        assert!(raw != PAD, "vocabulary exhausted the id space");
        let id = TokenId(raw);
        self.tokens.push(token.clone());
        self.index.insert(token.clone(), id);
        id
    }

    /// Interns every token of `sequence`, appending the ids to `out`
    /// (which is cleared first). Reusing `out` across calls makes the
    /// corpus pass allocation-free after warmup.
    ///
    /// Consecutive duplicates skip the index probe entirely — lab
    /// sessions are dominated by status-polling runs of one command,
    /// so roughly half the tokens resolve from the one-entry memo.
    pub fn intern_into(&mut self, sequence: &[T], out: &mut Vec<TokenId>) {
        out.clear();
        out.reserve(sequence.len());
        let mut memo: Option<(&T, TokenId)> = None;
        for token in sequence {
            let id = match memo {
                Some((last, id)) if last == token => id,
                _ => self.intern(token),
            };
            memo = Some((token, id));
            out.push(id);
        }
    }

    /// The id of an already-interned token, if any.
    pub fn get(&self, token: &T) -> Option<TokenId> {
        self.index.get(token).copied()
    }

    /// The id of `token`, or the reserved out-of-vocabulary sentinel.
    /// Keys built with the sentinel miss every stored entry, which
    /// yields the zero counts the scoring paths expect for unseen
    /// tokens.
    pub(crate) fn get_or_pad(&self, token: &T) -> TokenId {
        self.index.get(token).copied().unwrap_or(TokenId(PAD))
    }
}

/// A fast, non-cryptographic hasher for small fixed-size keys
/// (the FxHash construction used throughout rustc). N-gram keys are a
/// handful of machine words; SipHash's per-hash setup cost dominates
/// them, while a multiply-rotate mix does not.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub(crate) type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// An n-gram key over interned token ids: packed on the stack for
/// orders ≤ [`PACKED_ORDER`], spilled to the heap above that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Key {
    /// Up to four ids, trailing slots padded with the sentinel.
    Packed([u32; 4]),
    /// Five or more ids.
    Spill(Box<[u32]>),
}

impl Hash for Key {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Key::Packed(ids) => {
                state.write_u64(u64::from(ids[0]) << 32 | u64::from(ids[1]));
                state.write_u64(u64::from(ids[2]) << 32 | u64::from(ids[3]));
            }
            Key::Spill(ids) => {
                state.write_usize(ids.len());
                for &id in ids.iter() {
                    state.write_u32(id);
                }
            }
        }
    }
}

impl Key {
    /// Builds the key for an id window. Allocation-free for windows of
    /// length ≤ [`PACKED_ORDER`].
    #[inline]
    pub(crate) fn from_ids(ids: &[TokenId]) -> Key {
        if ids.len() <= PACKED_ORDER {
            let mut packed = [PAD; 4];
            for (slot, id) in packed.iter_mut().zip(ids) {
                *slot = id.raw();
            }
            Key::Packed(packed)
        } else {
            Key::Spill(ids.iter().map(|id| id.raw()).collect())
        }
    }

    /// Builds the key for `context ++ [next]` without materializing the
    /// concatenation. Allocation-free when the n-gram fits packed.
    #[inline]
    pub(crate) fn from_context_and_next(context: &[TokenId], next: TokenId) -> Key {
        if context.len() < PACKED_ORDER {
            let mut packed = [PAD; 4];
            for (slot, id) in packed.iter_mut().zip(context) {
                *slot = id.raw();
            }
            packed[context.len()] = next.raw();
            Key::Packed(packed)
        } else {
            Key::Spill(
                context
                    .iter()
                    .copied()
                    .chain(std::iter::once(next))
                    .map(TokenId::raw)
                    .collect(),
            )
        }
    }

    /// The key for this key's first `len` ids — equal to
    /// `Key::from_ids(&self.decode(...)[..len])` without the decode.
    pub(crate) fn prefix(&self, len: usize) -> Key {
        let ids: &[u32] = match self {
            Key::Packed(ids) => &ids[..],
            Key::Spill(ids) => ids,
        };
        if len <= PACKED_ORDER {
            let mut packed = [PAD; 4];
            packed[..len].copy_from_slice(&ids[..len]);
            Key::Packed(packed)
        } else {
            Key::Spill(ids[..len].into())
        }
    }

    /// Decodes the first `n` ids of the key.
    pub(crate) fn decode(&self, n: usize) -> Vec<TokenId> {
        match self {
            Key::Packed(ids) => ids[..n].iter().map(|&id| TokenId(id)).collect(),
            Key::Spill(ids) => ids[..n].iter().map(|&id| TokenId(id)).collect(),
        }
    }
}

/// Counts n-grams of a fixed order over interned id sequences.
///
/// This is the engine behind [`crate::NgramCounter`]; use it directly
/// when the corpus is already interned (e.g. inside cross-validation
/// loops, where interning once per corpus instead of once per fold is
/// the whole point).
#[derive(Debug, Clone)]
pub struct InternedNgramCounter {
    n: usize,
    counts: FxHashMap<Key, u64>,
    total: u64,
}

impl InternedNgramCounter {
    /// A counter for n-grams of order `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "n-gram order must be at least 1");
        InternedNgramCounter {
            n,
            counts: FxHashMap::default(),
            total: 0,
        }
    }

    /// The n-gram order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Adds every n-gram of `ids` to the counts. Sequences shorter
    /// than `n` contribute nothing; n-grams never straddle two
    /// `observe` calls.
    pub fn observe(&mut self, ids: &[TokenId]) {
        if ids.len() < self.n {
            return;
        }
        for window in ids.windows(self.n) {
            *self.counts.entry(Key::from_ids(window)).or_insert(0) += 1;
            self.total += 1;
        }
    }

    /// Count of one specific id n-gram (zero for wrong-length queries,
    /// matching the generic API's behaviour for absent keys).
    pub fn count(&self, ids: &[TokenId]) -> u64 {
        if ids.len() != self.n {
            return 0;
        }
        self.counts.get(&Key::from_ids(ids)).copied().unwrap_or(0)
    }

    /// Total number of n-gram occurrences observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct n-grams observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Iterates over all `(ids, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Vec<TokenId>, u64)> + '_ {
        self.counts.iter().map(|(key, &c)| (key.decode(self.n), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(vocab: &mut Vocab<&'static str>, tokens: &[&'static str]) -> Vec<TokenId> {
        let mut out = Vec::new();
        vocab.intern_into(tokens, &mut out);
        out
    }

    #[test]
    fn interning_assigns_dense_first_seen_ids() {
        let mut vocab = Vocab::new();
        let seq = ids(&mut vocab, &["c", "a", "c", "b"]);
        assert_eq!(seq[0].index(), 0);
        assert_eq!(seq[1].index(), 1);
        assert_eq!(seq[2].index(), 0, "repeat hits the same id");
        assert_eq!(seq[3].index(), 2);
        assert_eq!(vocab.tokens(), &["c", "a", "b"]);
        assert_eq!(vocab.get(&"a"), Some(seq[1]));
        assert_eq!(vocab.get(&"zzz"), None);
    }

    #[test]
    fn packed_keys_distinguish_orders_and_padding() {
        let a = TokenId(0);
        let b = TokenId(1);
        // A 2-gram key and a 3-gram key over the same prefix differ:
        // the pad sentinel fills the unused slot.
        let two = Key::from_ids(&[a, b]);
        let three = Key::from_ids(&[a, b, TokenId(2)]);
        assert_ne!(two, three);
        // from_context_and_next agrees with from_ids on the
        // concatenation.
        assert_eq!(Key::from_context_and_next(&[a], b), Key::from_ids(&[a, b]));
        let ctx = [a, b, TokenId(2), TokenId(3)];
        assert_eq!(
            Key::from_context_and_next(&ctx, TokenId(4)),
            Key::from_ids(&[a, b, TokenId(2), TokenId(3), TokenId(4)])
        );
    }

    #[test]
    fn spill_keys_cover_high_orders() {
        let window: Vec<TokenId> = (0..6).map(TokenId).collect();
        let key = Key::from_ids(&window);
        assert!(matches!(key, Key::Spill(_)));
        assert_eq!(key.decode(6), window);
    }

    #[test]
    fn interned_counter_counts_windows() {
        let mut vocab = Vocab::new();
        let seq = ids(&mut vocab, &["Q", "Q", "Q", "A"]);
        let mut counter = InternedNgramCounter::new(2);
        counter.observe(&seq);
        assert_eq!(counter.count(&[seq[0], seq[0]]), 2);
        assert_eq!(counter.count(&[seq[0], seq[3]]), 1);
        assert_eq!(counter.count(&[seq[3], seq[0]]), 0);
        assert_eq!(counter.total(), 3);
        assert_eq!(counter.distinct(), 2);
    }

    #[test]
    fn wrong_length_queries_count_zero() {
        let mut vocab = Vocab::new();
        let seq = ids(&mut vocab, &["a", "b", "c"]);
        let mut counter = InternedNgramCounter::new(3);
        counter.observe(&seq);
        assert_eq!(counter.count(&seq[..2]), 0);
        assert_eq!(counter.count(&seq), 1);
    }

    #[test]
    fn pad_lookups_always_miss() {
        let mut vocab = Vocab::new();
        let seq = ids(&mut vocab, &["a", "b", "a", "b"]);
        let mut counter = InternedNgramCounter::new(2);
        counter.observe(&seq);
        let oov = vocab.get_or_pad(&"never-seen");
        assert_eq!(counter.count(&[seq[0], oov]), 0);
        assert_eq!(counter.count(&[oov, oov]), 0);
    }

    #[test]
    fn fx_hasher_separates_nearby_keys() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..64u32 {
            for j in 0..64u32 {
                let mut hasher = FxHasher::default();
                Key::from_ids(&[TokenId(i), TokenId(j)]).hash(&mut hasher);
                seen.insert(hasher.finish());
            }
        }
        assert_eq!(seen.len(), 64 * 64, "no collisions on a dense grid");
    }
}
