//! Reference implementations of the n-gram counter and language model.
//!
//! These are the original, straightforward `HashMap<Vec<T>, u64>`
//! algorithms the interned pipeline (see [`crate::intern`]) replaced.
//! They are kept verbatim for two purposes:
//!
//! * **Oracle** — the property tests in `tests/model_props.rs` check
//!   the optimized [`crate::NgramCounter`] / [`crate::CommandLm`]
//!   against these on random corpora (identical counts and top-k,
//!   perplexities within 1e-9).
//! * **Baseline** — the `perf_report` bench bin measures the speedup
//!   of the interned pipeline against these on the synthetic campaign
//!   corpus.
//!
//! They are not deprecated stubs: they define the semantics. Do not
//! "optimize" them.

use std::collections::HashMap;
use std::hash::Hash;

use rad_core::RadError;

use crate::Smoothing;

/// The original clone-per-window n-gram counter.
#[derive(Debug, Clone)]
pub struct ReferenceNgramCounter<T> {
    n: usize,
    counts: HashMap<Vec<T>, u64>,
    total: u64,
}

impl<T: Clone + Eq + Hash + Ord> ReferenceNgramCounter<T> {
    /// A counter for n-grams of order `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "n-gram order must be at least 1");
        ReferenceNgramCounter {
            n,
            counts: HashMap::new(),
            total: 0,
        }
    }

    /// Adds every n-gram of `sequence` to the counts.
    pub fn observe(&mut self, sequence: &[T]) {
        if sequence.len() < self.n {
            return;
        }
        for window in sequence.windows(self.n) {
            *self.counts.entry(window.to_vec()).or_insert(0) += 1;
            self.total += 1;
        }
    }

    /// Count of one specific n-gram.
    pub fn count(&self, ngram: &[T]) -> u64 {
        self.counts.get(ngram).copied().unwrap_or(0)
    }

    /// Total number of n-gram occurrences observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct n-grams observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The `k` most frequent n-grams: clone everything, sort the whole
    /// table, truncate. Same deterministic order as the optimized
    /// partial-selection `top_k` (count descending, then
    /// lexicographic).
    pub fn top_k(&self, k: usize) -> Vec<(Vec<T>, u64)> {
        let mut entries: Vec<(Vec<T>, u64)> =
            self.counts.iter().map(|(g, c)| (g.clone(), *c)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries.truncate(k);
        entries
    }

    /// Iterates over all `(ngram, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<T>, u64)> {
        self.counts.iter().map(|(g, c)| (g, *c))
    }
}

/// The original token-keyed language model, one `Vec<T>` allocation
/// per scored transition.
#[derive(Debug, Clone)]
pub struct ReferenceLm<T> {
    n: usize,
    ngram_counts: HashMap<Vec<T>, u64>,
    context_counts: HashMap<Vec<T>, u64>,
    vocabulary_size: usize,
    smoothing: Smoothing,
}

impl<T: Clone + Eq + Hash + Ord> ReferenceLm<T> {
    /// Fits an order-`n` model on `training` sequences.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Analysis`] if `n < 2`, the training set is
    /// empty, or no training sequence is at least `n` tokens long.
    pub fn fit(n: usize, training: &[Vec<T>], smoothing: Smoothing) -> Result<Self, RadError> {
        if n < 2 {
            return Err(RadError::Analysis(
                "language model order must be >= 2".into(),
            ));
        }
        if training.is_empty() {
            return Err(RadError::Analysis("empty training set".into()));
        }
        let mut ngram_counts: HashMap<Vec<T>, u64> = HashMap::new();
        let mut context_counts: HashMap<Vec<T>, u64> = HashMap::new();
        let mut vocabulary = std::collections::BTreeSet::new();
        let mut usable = false;
        for seq in training {
            for t in seq {
                vocabulary.insert(t.clone());
            }
            if seq.len() < n {
                continue;
            }
            usable = true;
            for window in seq.windows(n) {
                *ngram_counts.entry(window.to_vec()).or_insert(0) += 1;
                *context_counts.entry(window[..n - 1].to_vec()).or_insert(0) += 1;
            }
        }
        if !usable {
            return Err(RadError::Analysis(format!(
                "no training sequence has at least {n} tokens"
            )));
        }
        Ok(ReferenceLm {
            n,
            ngram_counts,
            context_counts,
            vocabulary_size: vocabulary.len(),
            smoothing,
        })
    }

    /// `P(next | context)` under the fitted counts and smoothing.
    ///
    /// # Panics
    ///
    /// Panics if `context.len() != order - 1`.
    pub fn probability(&self, context: &[T], next: &T) -> f64 {
        assert_eq!(
            context.len(),
            self.n - 1,
            "context length must be order - 1"
        );
        let mut ngram: Vec<T> = context.to_vec();
        ngram.push(next.clone());
        let joint = self.ngram_counts.get(&ngram).copied().unwrap_or(0) as f64;
        let ctx = self.context_counts.get(context).copied().unwrap_or(0) as f64;
        match self.smoothing {
            Smoothing::EpsilonFloor(eps) => {
                if joint == 0.0 || ctx == 0.0 {
                    eps
                } else {
                    joint / ctx
                }
            }
            Smoothing::AddK(k) => {
                let v = self.vocabulary_size as f64;
                (joint + k) / (ctx + k * v)
            }
        }
    }

    /// Log-probability (natural log) of a sequence under the model.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Analysis`] if `sequence` is shorter than the
    /// model order.
    pub fn log_probability(&self, sequence: &[T]) -> Result<f64, RadError> {
        if sequence.len() < self.n {
            return Err(RadError::Analysis(format!(
                "sequence of {} tokens is shorter than model order {}",
                sequence.len(),
                self.n
            )));
        }
        Ok(sequence
            .windows(self.n)
            .map(|w| self.probability(&w[..self.n - 1], &w[self.n - 1]).ln())
            .sum())
    }

    /// Perplexity of a sequence: `exp(-logP / transitions)`.
    ///
    /// # Errors
    ///
    /// Propagates [`ReferenceLm::log_probability`]'s error on too-short
    /// sequences.
    pub fn perplexity(&self, sequence: &[T]) -> Result<f64, RadError> {
        // Score first: the length guard lives there, and the
        // subtraction below would underflow on a sequence shorter
        // than `order - 1` tokens.
        let logp = self.log_probability(sequence)?;
        let transitions = (sequence.len() + 1 - self.n) as f64;
        Ok((-logp / transitions).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_counter_matches_original_semantics() {
        let mut c = ReferenceNgramCounter::new(2);
        c.observe(&["Q", "Q", "Q", "A"]);
        assert_eq!(c.count(&["Q", "Q"]), 2);
        assert_eq!(c.count(&["Q", "A"]), 1);
        assert_eq!(c.total(), 3);
        assert_eq!(c.top_k(1)[0], (vec!["Q", "Q"], 2));
    }

    #[test]
    fn reference_lm_scores_like_the_optimized_model() {
        let training = vec![vec!["A", "B", "A", "B", "A", "B"], vec!["B", "A", "B", "A"]];
        let reference = ReferenceLm::fit(2, &training, Smoothing::default()).unwrap();
        let optimized = crate::CommandLm::fit(2, &training, Smoothing::default()).unwrap();
        for seq in [
            vec!["A", "B", "A", "B"],
            vec!["A", "A", "B", "B"],
            vec!["B", "Z", "A"],
        ] {
            let lhs = reference.perplexity(&seq).unwrap();
            let rhs = optimized.perplexity(&seq).unwrap();
            assert!((lhs - rhs).abs() < 1e-9, "{seq:?}: {lhs} vs {rhs}");
        }
    }
}
