//! Jenks natural-breaks optimization (Fisher's exact algorithm).
//!
//! §V-B clusters perplexity scores "into two classes, anomalous and
//! benign, using the Jenks natural breaks optimization technique".
//! [`jenks_breaks`] implements the exact dynamic program (minimum
//! within-class sum of squared deviations) for any class count;
//! [`jenks_two_class`] is the two-class convenience the detector uses.

use rad_core::RadError;

/// Computes the optimal `k`-class natural-breaks partition of `values`.
///
/// Returns the sorted values and the break indices: `breaks[j]` is the
/// index (into the sorted array) where class `j + 1` starts, so a
/// result of `[3]` for k = 2 means classes `sorted[0..3]` and
/// `sorted[3..]`.
///
/// # Errors
///
/// Returns [`RadError::Analysis`] if `k == 0`, `values.len() < k`, or
/// any value is not finite.
pub fn jenks_breaks(values: &[f64], k: usize) -> Result<(Vec<f64>, Vec<usize>), RadError> {
    if k == 0 {
        return Err(RadError::Analysis("class count must be positive".into()));
    }
    if values.len() < k {
        return Err(RadError::Analysis(format!(
            "cannot split {} values into {k} classes",
            values.len()
        )));
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(RadError::Analysis("values must be finite".into()));
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    let n = sorted.len();

    // Prefix sums for O(1) within-class SSD queries.
    let mut prefix = vec![0.0; n + 1];
    let mut prefix_sq = vec![0.0; n + 1];
    for (i, v) in sorted.iter().enumerate() {
        prefix[i + 1] = prefix[i] + v;
        prefix_sq[i + 1] = prefix_sq[i] + v * v;
    }
    // SSD of sorted[i..j] (half-open).
    let ssd = |i: usize, j: usize| -> f64 {
        let m = (j - i) as f64;
        let sum = prefix[j] - prefix[i];
        (prefix_sq[j] - prefix_sq[i]) - sum * sum / m
    };

    // dp[c][j] = minimal SSD splitting sorted[0..j] into c classes.
    let inf = f64::INFINITY;
    let mut dp = vec![vec![inf; n + 1]; k + 1];
    let mut cut = vec![vec![0usize; n + 1]; k + 1];
    dp[0][0] = 0.0;
    for c in 1..=k {
        for j in c..=n {
            for i in (c - 1)..j {
                if dp[c - 1][i] == inf {
                    continue;
                }
                let cost = dp[c - 1][i] + ssd(i, j);
                if cost < dp[c][j] {
                    dp[c][j] = cost;
                    cut[c][j] = i;
                }
            }
        }
    }

    // Recover break indices.
    let mut breaks = Vec::with_capacity(k - 1);
    let mut j = n;
    for c in (2..=k).rev() {
        let i = cut[c][j];
        breaks.push(i);
        j = i;
    }
    breaks.reverse();
    Ok((sorted, breaks))
}

/// Splits `values` into a low and a high class at the natural break,
/// returning the threshold: the midpoint between the largest low value
/// and the smallest high value. Values `> threshold` are the high
/// (anomalous) class.
///
/// # Errors
///
/// Propagates [`jenks_breaks`]'s errors (needs at least two values).
pub fn jenks_two_class(values: &[f64]) -> Result<f64, RadError> {
    let (sorted, breaks) = jenks_breaks(values, 2)?;
    let split = breaks[0];
    if split == 0 || split >= sorted.len() {
        // Degenerate (all values identical): threshold above everything.
        return Ok(sorted[sorted.len() - 1]);
    }
    Ok((sorted[split - 1] + sorted[split]) / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_two_cluster_data_splits_at_the_gap() {
        let values = [1.0, 1.2, 0.9, 1.1, 10.0, 10.5, 9.8];
        let t = jenks_two_class(&values).unwrap();
        assert!(t > 1.2 && t < 9.8, "threshold {t} falls in the gap");
        let high: Vec<f64> = values.iter().copied().filter(|v| *v > t).collect();
        assert_eq!(high.len(), 3);
    }

    #[test]
    fn three_class_breaks_recover_three_clusters() {
        let values = [0.0, 0.1, 0.2, 5.0, 5.1, 5.2, 10.0, 10.1, 10.2];
        let (sorted, breaks) = jenks_breaks(&values, 3).unwrap();
        assert_eq!(breaks, vec![3, 6]);
        assert_eq!(sorted[3], 5.0);
        assert_eq!(sorted[6], 10.0);
    }

    #[test]
    fn single_class_has_no_breaks() {
        let (_, breaks) = jenks_breaks(&[1.0, 2.0, 3.0], 1).unwrap();
        assert!(breaks.is_empty());
    }

    #[test]
    fn identical_values_do_not_flag_anything() {
        let values = [2.0, 2.0, 2.0, 2.0];
        let t = jenks_two_class(&values).unwrap();
        assert!(
            values.iter().all(|v| *v <= t),
            "no value exceeds the threshold"
        );
    }

    #[test]
    fn one_outlier_is_isolated() {
        let values = [1.0, 1.1, 0.95, 1.05, 42.0];
        let t = jenks_two_class(&values).unwrap();
        let high: Vec<f64> = values.iter().copied().filter(|v| *v > t).collect();
        assert_eq!(high, vec![42.0]);
    }

    #[test]
    fn input_validation() {
        assert!(jenks_breaks(&[1.0], 2).is_err());
        assert!(jenks_breaks(&[1.0, 2.0], 0).is_err());
        assert!(jenks_breaks(&[1.0, f64::NAN], 2).is_err());
        assert!(jenks_breaks(&[1.0, f64::INFINITY], 2).is_err());
    }

    #[test]
    fn dp_minimizes_within_class_variance() {
        // Compare against brute force on a small input.
        let values = [0.3, 1.0, 2.2, 2.4, 6.0, 6.1, 7.9];
        let (sorted, breaks) = jenks_breaks(&values, 2).unwrap();
        let split = breaks[0];
        let ssd = |s: &[f64]| -> f64 {
            let m = s.iter().sum::<f64>() / s.len() as f64;
            s.iter().map(|v| (v - m) * (v - m)).sum()
        };
        let best = ssd(&sorted[..split]) + ssd(&sorted[split..]);
        for other in 1..sorted.len() {
            let cost = ssd(&sorted[..other]) + ssd(&sorted[other..]);
            assert!(best <= cost + 1e-12, "split {other} beats dp split {split}");
        }
    }
}
