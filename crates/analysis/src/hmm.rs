//! A discrete hidden Markov model detector — the "wider array of
//! techniques" §VII calls for.
//!
//! The paper's future work asks for sequence models beyond plain
//! n-grams (it names LSTMs; an HMM is the classical step in that
//! direction and trains on 25 runs without overfitting). This module
//! implements the full machinery from scratch:
//!
//! - [`Hmm`] — a discrete-emission HMM with scaled forward/backward
//!   recursions (no underflow on thousand-token runs) and Baum-Welch
//!   (EM) training;
//! - [`HmmDetector`] — a [`crate::RunClassifier`] that trains on
//!   benign runs and alarms when a run's per-token cross-entropy
//!   exceeds the training distribution by `sigma` standard deviations,
//!   directly comparable with the perplexity detector under the same
//!   cross-validation harness.

use std::hash::Hash;

use rad_core::RadError;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::baseline::RunClassifier;
use crate::intern::Vocab;

/// Probability floor applied after every EM update so no transition or
/// emission collapses to exactly zero (which would make unseen test
/// symbols score `-inf`).
const FLOOR: f64 = 1e-6;

/// A discrete-emission hidden Markov model.
#[derive(Debug, Clone, PartialEq)]
pub struct Hmm {
    n_states: usize,
    n_symbols: usize,
    /// Initial state distribution, length `n_states`.
    pi: Vec<f64>,
    /// Transition matrix, `n_states x n_states`, rows sum to 1.
    trans: Vec<Vec<f64>>,
    /// Emission matrix, `n_states x n_symbols`, rows sum to 1.
    emit: Vec<Vec<f64>>,
}

// The forward/backward recursions index parallel state arrays; indexed
// loops mirror the textbook presentation and read best here.
#[allow(clippy::needless_range_loop)]
impl Hmm {
    /// A randomly-initialized model (near-uniform with seeded jitter,
    /// the standard EM starting point).
    ///
    /// # Panics
    ///
    /// Panics if `n_states` or `n_symbols` is zero.
    pub fn random(n_states: usize, n_symbols: usize, seed: u64) -> Self {
        assert!(
            n_states > 0 && n_symbols > 0,
            "model dimensions must be positive"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut row = |len: usize| -> Vec<f64> {
            let raw: Vec<f64> = (0..len).map(|_| 1.0 + rng.gen_range(0.0..0.1)).collect();
            normalize(raw)
        };
        Hmm {
            n_states,
            n_symbols,
            pi: row(n_states),
            trans: (0..n_states).map(|_| row(n_states)).collect(),
            emit: (0..n_states).map(|_| row(n_symbols)).collect(),
        }
    }

    /// Number of hidden states.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of emission symbols.
    pub fn n_symbols(&self) -> usize {
        self.n_symbols
    }

    /// Scaled forward pass. Returns the per-step scaling coefficients;
    /// the sequence log-likelihood is the sum of their logs, negated.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Analysis`] on empty sequences or
    /// out-of-range symbols.
    fn forward_scaled(&self, seq: &[usize]) -> Result<(Vec<Vec<f64>>, Vec<f64>), RadError> {
        if seq.is_empty() {
            return Err(RadError::Analysis("cannot score an empty sequence".into()));
        }
        if let Some(&bad) = seq.iter().find(|s| **s >= self.n_symbols) {
            return Err(RadError::Analysis(format!(
                "symbol {bad} outside emission alphabet of {}",
                self.n_symbols
            )));
        }
        let t_len = seq.len();
        let mut alpha = vec![vec![0.0; self.n_states]; t_len];
        let mut scale = vec![0.0; t_len];
        for i in 0..self.n_states {
            alpha[0][i] = self.pi[i] * self.emit[i][seq[0]];
        }
        scale[0] = rescale(&mut alpha[0]);
        for t in 1..t_len {
            for j in 0..self.n_states {
                let mut a = 0.0;
                for i in 0..self.n_states {
                    a += alpha[t - 1][i] * self.trans[i][j];
                }
                alpha[t][j] = a * self.emit[j][seq[t]];
            }
            scale[t] = rescale(&mut alpha[t]);
        }
        Ok((alpha, scale))
    }

    /// Scaled backward pass using the forward pass's coefficients.
    fn backward_scaled(&self, seq: &[usize], scale: &[f64]) -> Vec<Vec<f64>> {
        let t_len = seq.len();
        let mut beta = vec![vec![0.0; self.n_states]; t_len];
        for i in 0..self.n_states {
            beta[t_len - 1][i] = 1.0 / scale[t_len - 1];
        }
        for t in (0..t_len - 1).rev() {
            for i in 0..self.n_states {
                let mut b = 0.0;
                for j in 0..self.n_states {
                    b += self.trans[i][j] * self.emit[j][seq[t + 1]] * beta[t + 1][j];
                }
                beta[t][i] = b / scale[t];
            }
        }
        beta
    }

    /// Log-likelihood of a symbol sequence under the model.
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Analysis`] on empty sequences or symbols
    /// outside the emission alphabet.
    pub fn log_likelihood(&self, seq: &[usize]) -> Result<f64, RadError> {
        let (_, scale) = self.forward_scaled(seq)?;
        Ok(scale.iter().map(|c| c.ln()).sum())
    }

    /// Average negative log-likelihood per token — the length-
    /// normalized anomaly score (an HMM cross-entropy, the analogue of
    /// log-perplexity).
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Analysis`] on empty sequences or symbols
    /// outside the emission alphabet.
    pub fn cross_entropy(&self, seq: &[usize]) -> Result<f64, RadError> {
        Ok(-self.log_likelihood(seq)? / seq.len() as f64)
    }

    /// One Baum-Welch (EM) update over `sequences`. Returns the total
    /// log-likelihood *before* the update, so callers can watch it
    /// climb.
    ///
    /// # Errors
    ///
    /// Propagates scoring failures.
    pub fn baum_welch_step(&mut self, sequences: &[Vec<usize>]) -> Result<f64, RadError> {
        let mut total_ll = 0.0;
        let mut pi_acc = vec![0.0; self.n_states];
        let mut trans_num = vec![vec![0.0; self.n_states]; self.n_states];
        let mut trans_den = vec![0.0; self.n_states];
        let mut emit_num = vec![vec![0.0; self.n_symbols]; self.n_states];
        let mut emit_den = vec![0.0; self.n_states];

        for seq in sequences {
            let (alpha, scale) = self.forward_scaled(seq)?;
            total_ll += scale.iter().map(|c| c.ln()).sum::<f64>();
            let beta = self.backward_scaled(seq, &scale);
            let t_len = seq.len();
            // gamma[t][i] ∝ alpha[t][i] * beta[t][i]; with this scaling
            // convention the product already normalizes per t up to the
            // 1/scale[t] factor folded into beta.
            for t in 0..t_len {
                let mut gamma: Vec<f64> = (0..self.n_states)
                    .map(|i| alpha[t][i] * beta[t][i])
                    .collect();
                let norm: f64 = gamma.iter().sum();
                if norm > 0.0 {
                    for g in &mut gamma {
                        *g /= norm;
                    }
                }
                for i in 0..self.n_states {
                    if t == 0 {
                        pi_acc[i] += gamma[i];
                    }
                    emit_num[i][seq[t]] += gamma[i];
                    emit_den[i] += gamma[i];
                    if t + 1 < t_len {
                        trans_den[i] += gamma[i];
                    }
                }
            }
            for t in 0..t_len - 1 {
                // xi[t][i][j] ∝ alpha[t][i] A[i][j] B[j][o_{t+1}] beta[t+1][j]
                let mut norm = 0.0;
                let mut xi = vec![vec![0.0; self.n_states]; self.n_states];
                for i in 0..self.n_states {
                    for j in 0..self.n_states {
                        let v = alpha[t][i]
                            * self.trans[i][j]
                            * self.emit[j][seq[t + 1]]
                            * beta[t + 1][j];
                        xi[i][j] = v;
                        norm += v;
                    }
                }
                if norm > 0.0 {
                    for i in 0..self.n_states {
                        for j in 0..self.n_states {
                            trans_num[i][j] += xi[i][j] / norm;
                        }
                    }
                }
            }
        }

        // M step with flooring + renormalization.
        self.pi = normalize(pi_acc.iter().map(|v| v + FLOOR).collect());
        for i in 0..self.n_states {
            let den = trans_den[i];
            let row: Vec<f64> = (0..self.n_states)
                .map(|j| {
                    if den > 0.0 {
                        trans_num[i][j] / den
                    } else {
                        1.0 / self.n_states as f64
                    }
                })
                .map(|v| v + FLOOR)
                .collect();
            self.trans[i] = normalize(row);
            let den = emit_den[i];
            let row: Vec<f64> = (0..self.n_symbols)
                .map(|k| {
                    if den > 0.0 {
                        emit_num[i][k] / den
                    } else {
                        1.0 / self.n_symbols as f64
                    }
                })
                .map(|v| v + FLOOR)
                .collect();
            self.emit[i] = normalize(row);
        }
        Ok(total_ll)
    }

    /// Trains a model with `iterations` EM steps (or until the
    /// log-likelihood improvement drops below `1e-6` per token).
    ///
    /// # Errors
    ///
    /// Returns [`RadError::Analysis`] on an empty corpus or empty
    /// sequences.
    pub fn train(
        sequences: &[Vec<usize>],
        n_states: usize,
        n_symbols: usize,
        iterations: usize,
        seed: u64,
    ) -> Result<Hmm, RadError> {
        if sequences.is_empty() {
            return Err(RadError::Analysis("empty training corpus".into()));
        }
        let tokens: usize = sequences.iter().map(Vec::len).sum();
        if tokens == 0 {
            return Err(RadError::Analysis("training corpus has no tokens".into()));
        }
        let mut model = Hmm::random(n_states, n_symbols, seed);
        let mut previous = f64::NEG_INFINITY;
        for _ in 0..iterations {
            let ll = model.baum_welch_step(sequences)?;
            if (ll - previous).abs() / tokens as f64 <= 1e-6 {
                break;
            }
            previous = ll;
        }
        Ok(model)
    }
}

/// Normalizes a non-negative vector to sum to one (uniform if all
/// zero).
fn normalize(mut v: Vec<f64>) -> Vec<f64> {
    let total: f64 = v.iter().sum();
    if total > 0.0 {
        for x in &mut v {
            *x /= total;
        }
    } else {
        let u = 1.0 / v.len() as f64;
        v.fill(u);
    }
    v
}

/// Scales a row to sum to one and returns the scaling divisor.
fn rescale(row: &mut [f64]) -> f64 {
    let total: f64 = row.iter().sum();
    let c = if total > 0.0 {
        total
    } else {
        f64::MIN_POSITIVE
    };
    for x in row.iter_mut() {
        *x /= c;
    }
    c
}

/// An HMM-based run classifier, pluggable into the same
/// cross-validation harness as the baselines and the perplexity
/// detector.
#[derive(Debug, Clone)]
pub struct HmmDetector<T> {
    n_states: usize,
    iterations: usize,
    sigma: f64,
    seed: u64,
    vocabulary: Vocab<T>,
    model: Option<Hmm>,
    threshold: f64,
}

impl<T: Clone + Ord + Hash> HmmDetector<T> {
    /// A detector with `n_states` hidden states, `iterations` EM
    /// steps, and an alarm threshold of mean + `sigma` standard
    /// deviations of the training cross-entropies.
    ///
    /// # Panics
    ///
    /// Panics if `n_states` or `iterations` is zero, or `sigma` is not
    /// positive.
    pub fn new(n_states: usize, iterations: usize, sigma: f64) -> Self {
        assert!(
            n_states > 0 && iterations > 0,
            "model dimensions must be positive"
        );
        assert!(sigma > 0.0, "sigma must be positive");
        HmmDetector {
            n_states,
            iterations,
            sigma,
            seed: 0x4d4d,
            vocabulary: Vocab::new(),
            model: None,
            threshold: f64::INFINITY,
        }
    }

    /// The fitted alarm threshold (cross-entropy units).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    fn encode(&self, run: &[T]) -> Vec<usize> {
        // Unknown symbols map to a reserved out-of-vocabulary id, which
        // the floored emission matrix scores as very unlikely — the
        // desired behaviour for an anomaly detector.
        let oov = self.vocabulary.len();
        run.iter()
            .map(|t| self.vocabulary.get(t).map_or(oov, |id| id.index()))
            .collect()
    }
}

impl<T: Clone + Ord + Hash> RunClassifier<T> for HmmDetector<T> {
    fn fit(&mut self, training: &[Vec<T>]) {
        self.vocabulary = Vocab::new();
        for run in training {
            for t in run {
                self.vocabulary.intern(t);
            }
        }
        let n_symbols = self.vocabulary.len() + 1; // + out-of-vocabulary
        let encoded: Vec<Vec<usize>> = training
            .iter()
            .filter(|r| !r.is_empty())
            .map(|r| self.encode(r))
            .collect();
        let Ok(model) = Hmm::train(
            &encoded,
            self.n_states,
            n_symbols,
            self.iterations,
            self.seed,
        ) else {
            self.model = None;
            self.threshold = f64::INFINITY;
            return;
        };
        let scores: Vec<f64> = encoded
            .iter()
            .filter_map(|s| model.cross_entropy(s).ok())
            .collect();
        let n = scores.len().max(1) as f64;
        let mean = scores.iter().sum::<f64>() / n;
        let var = scores.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
        self.threshold = mean + self.sigma * var.sqrt().max(0.05);
        self.model = Some(model);
    }

    fn is_anomalous(&self, run: &[T]) -> bool {
        let Some(model) = &self.model else {
            return true; // unfitted: fail closed
        };
        if run.is_empty() {
            return true;
        }
        match model.cross_entropy(&self.encode(run)) {
            Ok(score) => score > self.threshold,
            Err(_) => true,
        }
    }

    fn name(&self) -> &'static str {
        "hmm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cyclic_corpus() -> Vec<Vec<usize>> {
        // Two alternating regimes: 0101... and 2323...
        let mut out = Vec::new();
        for start in 0..4 {
            let mut seq = Vec::new();
            for i in 0..30 {
                seq.push(if (start + i) % 2 == 0 { 0 } else { 1 });
            }
            out.push(seq);
        }
        out
    }

    #[test]
    fn rows_stay_stochastic_through_training() {
        let model = Hmm::train(&cyclic_corpus(), 3, 4, 20, 1).unwrap();
        let sum: f64 = model.pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for row in model.trans.iter().chain(model.emit.iter()) {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row sums to {sum}");
            assert!(row.iter().all(|p| *p > 0.0), "flooring keeps rows positive");
        }
    }

    #[test]
    fn em_monotonically_improves_likelihood() {
        let corpus = cyclic_corpus();
        let mut model = Hmm::random(3, 4, 7);
        let mut previous = f64::NEG_INFINITY;
        for step in 0..10 {
            let ll = model.baum_welch_step(&corpus).unwrap();
            assert!(
                ll >= previous - 1e-6,
                "likelihood regressed at step {step}: {previous} -> {ll}"
            );
            previous = ll;
        }
    }

    #[test]
    fn trained_model_prefers_in_grammar_sequences() {
        // Seed chosen so the random init escapes the uniform saddle point
        // under the vendored ChaCha8 stream (see vendor/README.md).
        let model = Hmm::train(&cyclic_corpus(), 2, 4, 30, 1).unwrap();
        let typical = model.cross_entropy(&[0, 1, 0, 1, 0, 1, 0, 1]).unwrap();
        let weird = model.cross_entropy(&[0, 0, 0, 1, 1, 1, 0, 0]).unwrap();
        assert!(weird > typical, "weird {weird} vs typical {typical}");
    }

    #[test]
    fn scaled_recursions_survive_long_sequences() {
        let model = Hmm::train(&cyclic_corpus(), 2, 4, 10, 5).unwrap();
        let long: Vec<usize> = (0..20_000).map(|i| i % 2).collect();
        let ll = model.log_likelihood(&long).unwrap();
        assert!(ll.is_finite(), "no underflow on a 20k-token sequence: {ll}");
    }

    #[test]
    fn scoring_validates_inputs() {
        let model = Hmm::train(&cyclic_corpus(), 2, 4, 5, 0).unwrap();
        assert!(model.log_likelihood(&[]).is_err());
        assert!(
            model.log_likelihood(&[9]).is_err(),
            "symbol outside the alphabet"
        );
    }

    #[test]
    fn detector_flags_off_grammar_runs() {
        let training: Vec<Vec<&str>> = (0..6)
            .map(|_| {
                let mut v = Vec::new();
                for _ in 0..15 {
                    v.push("A");
                    v.push("B");
                }
                v
            })
            .collect();
        let mut det = HmmDetector::new(2, 25, 3.0);
        det.fit(&training);
        assert!(!det.is_anomalous(&["A", "B", "A", "B", "A", "B", "A", "B"]));
        assert!(det.is_anomalous(&["A", "A", "A", "B", "B", "B", "X", "X"]));
        assert!(det.is_anomalous(&[]), "empty runs fail closed");
    }

    #[test]
    fn detector_handles_unknown_symbols_via_oov() {
        let training: Vec<Vec<&str>> = (0..4).map(|_| vec!["A", "B", "A", "B", "A", "B"]).collect();
        let mut det = HmmDetector::new(2, 15, 2.5);
        det.fit(&training);
        assert!(det.is_anomalous(&["Z", "Z", "Z", "Z", "Z", "Z"]));
    }

    #[test]
    fn training_rejects_degenerate_corpora() {
        assert!(Hmm::train(&[], 2, 3, 5, 0).is_err());
        assert!(Hmm::train(&[vec![]], 2, 3, 5, 0).is_err());
    }
}
