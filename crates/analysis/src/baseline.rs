//! Baseline detectors the perplexity IDS is compared against.
//!
//! The paper motivates anomaly detection over alternatives ("there do
//! not exist databases of known attacks... insufficient accumulated
//! experience to produce a collection of rules"). These baselines make
//! that comparison concrete: a rule-based allowlist, a rare-command
//! frequency detector, and a run-length heuristic — each evaluated
//! under the same cross-validation protocol as the perplexity models.

use std::collections::HashSet;
use std::hash::Hash;

use rad_core::RadError;

use crate::crossval::CrossValidation;
use crate::intern::{FxBuildHasher, TokenId, Vocab};
use crate::metrics::ConfusionMatrix;

/// A detector that trains on sequences and classifies whole runs.
pub trait RunClassifier<T> {
    /// Fits internal state on benign-majority training sequences.
    fn fit(&mut self, training: &[Vec<T>]);

    /// Whether a held-out run looks anomalous.
    fn is_anomalous(&self, run: &[T]) -> bool;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Rule-based IDS: alarm on any transition (bigram) never seen in
/// training. This is the "collection of rules" §I says is hard to
/// curate by hand — here the rules are mined from the training set.
///
/// Transitions are stored as interned id pairs: fitting clones each
/// distinct token once into the [`Vocab`] instead of cloning every
/// window, and lookups hash two `u32`s instead of two tokens. A token
/// the allowlist never saw has no id, so any transition touching it
/// misses the set and alarms — same semantics as the token-keyed
/// original.
#[derive(Debug, Clone, Default)]
pub struct TransitionAllowlist<T> {
    vocab: Vocab<T>,
    allowed: HashSet<(TokenId, TokenId), FxBuildHasher>,
}

impl<T: Clone + Ord> TransitionAllowlist<T> {
    /// An empty allowlist (alarms on everything until fitted).
    pub fn new() -> Self {
        TransitionAllowlist {
            vocab: Vocab::new(),
            allowed: HashSet::default(),
        }
    }

    /// Number of distinct allowed transitions.
    pub fn len(&self) -> usize {
        self.allowed.len()
    }

    /// Whether no transitions are allowed yet.
    pub fn is_empty(&self) -> bool {
        self.allowed.is_empty()
    }
}

impl<T: Clone + Ord + Hash> RunClassifier<T> for TransitionAllowlist<T> {
    fn fit(&mut self, training: &[Vec<T>]) {
        self.vocab = Vocab::new();
        self.allowed.clear();
        for seq in training {
            for w in seq.windows(2) {
                let pair = (self.vocab.intern(&w[0]), self.vocab.intern(&w[1]));
                self.allowed.insert(pair);
            }
        }
    }

    fn is_anomalous(&self, run: &[T]) -> bool {
        run.windows(2).any(|w| {
            let pair = (self.vocab.get_or_pad(&w[0]), self.vocab.get_or_pad(&w[1]));
            !self.allowed.contains(&pair)
        })
    }

    fn name(&self) -> &'static str {
        "transition-allowlist"
    }
}

/// Frequency baseline: alarm when a run's rarest command is rarer than
/// `min_frequency` in the training corpus (unknown commands count as
/// frequency zero).
///
/// Frequencies live in a dense `Vec<f64>` indexed by interned
/// [`TokenId`], so scoring a run is an id lookup plus an array read
/// per token.
#[derive(Debug, Clone)]
pub struct RareCommandDetector<T> {
    min_frequency: f64,
    vocab: Vocab<T>,
    frequencies: Vec<f64>,
}

impl<T: Clone + Ord> RareCommandDetector<T> {
    /// A detector alarming below `min_frequency` (a fraction of the
    /// training corpus, e.g. `1e-4`).
    ///
    /// # Panics
    ///
    /// Panics if `min_frequency` is not in `(0, 1)`.
    pub fn new(min_frequency: f64) -> Self {
        assert!(
            min_frequency > 0.0 && min_frequency < 1.0,
            "min_frequency must be a fraction in (0, 1)"
        );
        RareCommandDetector {
            min_frequency,
            vocab: Vocab::new(),
            frequencies: Vec::new(),
        }
    }
}

impl<T: Clone + Ord + Hash> RunClassifier<T> for RareCommandDetector<T> {
    fn fit(&mut self, training: &[Vec<T>]) {
        self.vocab = Vocab::new();
        self.frequencies.clear();
        let mut counts: Vec<u64> = Vec::new();
        let mut total = 0u64;
        for seq in training {
            for t in seq {
                let idx = self.vocab.intern(t).index();
                if idx >= counts.len() {
                    counts.resize(idx + 1, 0);
                }
                counts[idx] += 1;
                total += 1;
            }
        }
        if total == 0 {
            return;
        }
        self.frequencies = counts
            .into_iter()
            .map(|c| c as f64 / total as f64)
            .collect();
    }

    fn is_anomalous(&self, run: &[T]) -> bool {
        run.iter().any(|t| {
            let freq = self
                .vocab
                .get(t)
                .map(|id| self.frequencies[id.index()])
                .unwrap_or(0.0);
            freq < self.min_frequency
        })
    }

    fn name(&self) -> &'static str {
        "rare-command"
    }
}

/// Length heuristic: alarm when a run's length deviates from the
/// training mean by more than `z_threshold` standard deviations.
/// Included as the strawman — truncated-but-benign runs (like run 18)
/// wreck it.
#[derive(Debug, Clone)]
pub struct RunLengthDetector {
    z_threshold: f64,
    mean: f64,
    std_dev: f64,
}

impl RunLengthDetector {
    /// A detector alarming beyond `z_threshold` standard deviations.
    ///
    /// # Panics
    ///
    /// Panics if `z_threshold` is not positive.
    pub fn new(z_threshold: f64) -> Self {
        assert!(z_threshold > 0.0, "z threshold must be positive");
        RunLengthDetector {
            z_threshold,
            mean: 0.0,
            std_dev: 1.0,
        }
    }
}

impl<T> RunClassifier<T> for RunLengthDetector {
    fn fit(&mut self, training: &[Vec<T>]) {
        let n = training.len() as f64;
        if n == 0.0 {
            return;
        }
        self.mean = training.iter().map(|s| s.len() as f64).sum::<f64>() / n;
        let var = training
            .iter()
            .map(|s| {
                let d = s.len() as f64 - self.mean;
                d * d
            })
            .sum::<f64>()
            / n;
        self.std_dev = var.sqrt().max(1.0);
    }

    fn is_anomalous(&self, run: &[T]) -> bool {
        ((run.len() as f64 - self.mean) / self.std_dev).abs() > self.z_threshold
    }

    fn name(&self) -> &'static str {
        "run-length"
    }
}

/// Evaluates any [`RunClassifier`] under the paper's k-fold protocol,
/// returning its confusion matrix — directly comparable with
/// [`crate::PerplexityDetector::evaluate`]'s.
///
/// # Errors
///
/// Propagates fold-arithmetic failures.
pub fn evaluate_classifier<T: Clone + Ord + Hash, C: RunClassifier<T>>(
    classifier: &mut C,
    labelled: &[(Vec<T>, bool)],
    k: usize,
    seed: u64,
) -> Result<ConfusionMatrix, RadError> {
    let cv = CrossValidation::new(labelled.len(), k, seed)?;
    let mut cm = ConfusionMatrix::new();
    for fold in cv.folds() {
        let training: Vec<Vec<T>> = fold.train.iter().map(|&i| labelled[i].0.clone()).collect();
        classifier.fit(&training);
        for &i in &fold.test {
            cm.record(labelled[i].1, classifier.is_anomalous(&labelled[i].0));
        }
    }
    Ok(cm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labelled() -> Vec<(Vec<&'static str>, bool)> {
        let mut out = Vec::new();
        for i in 0..9 {
            let mut seq = Vec::new();
            for _ in 0..(10 + i % 3) {
                seq.push("A");
                seq.push("B");
            }
            out.push((seq, false));
        }
        // The anomaly has a *typical length* but an off-grammar token.
        let mut weird = Vec::new();
        for _ in 0..10 {
            weird.push("A");
            weird.push("B");
        }
        weird[7] = "X";
        out.push((weird, true));
        out
    }

    #[test]
    fn allowlist_flags_novel_transitions() {
        let mut det = TransitionAllowlist::new();
        det.fit(std::slice::from_ref(&vec!["A", "B", "A"]));
        assert_eq!(det.len(), 2);
        assert!(!det.is_anomalous(&["A", "B", "A", "B"]));
        assert!(det.is_anomalous(&["B", "B"]));
    }

    #[test]
    fn rare_command_flags_unknown_tokens() {
        let mut det = RareCommandDetector::new(0.01);
        det.fit(&[vec!["A"; 99].into_iter().chain(["B"]).collect()]);
        assert!(!det.is_anomalous(&["A", "A"]));
        assert!(!det.is_anomalous(&["B"]), "B is exactly at 1%");
        assert!(det.is_anomalous(&["C"]), "unknown command");
    }

    #[test]
    fn run_length_flags_outliers() {
        let mut det = RunLengthDetector::new(2.0);
        let training: Vec<Vec<u8>> = (0..10).map(|i| vec![0u8; 100 + i]).collect();
        RunClassifier::<u8>::fit(&mut det, &training);
        assert!(!RunClassifier::<u8>::is_anomalous(&det, &[0u8; 104]));
        assert!(RunClassifier::<u8>::is_anomalous(&det, &[0u8; 10]));
        assert!(RunClassifier::<u8>::is_anomalous(&det, &vec![0u8; 500]));
    }

    #[test]
    fn allowlist_catches_the_planted_anomaly_under_cv() {
        let mut det = TransitionAllowlist::new();
        let cm = evaluate_classifier(&mut det, &labelled(), 5, 0).unwrap();
        assert_eq!(cm.true_positives(), 1);
        assert_eq!(cm.false_negatives(), 0);
    }

    #[test]
    fn length_baseline_misses_content_anomalies() {
        // The planted anomaly has a typical length: the strawman fails.
        let mut det = RunLengthDetector::new(2.0);
        let cm = evaluate_classifier(&mut det, &labelled(), 5, 0).unwrap();
        assert_eq!(cm.true_positives(), 0, "length alone cannot see the X");
    }

    #[test]
    fn validation_panics() {
        assert!(std::panic::catch_unwind(|| RareCommandDetector::<u8>::new(0.0)).is_err());
        assert!(std::panic::catch_unwind(|| RunLengthDetector::new(-1.0)).is_err());
    }
}
